//! Call-graph construction and the interprocedural passes.
//!
//! [`Program`] indexes every [`FnSummary`] in the workspace (by free-fn
//! name and by `(impl owner, method name)`) and resolves the call sites
//! recorded by [`crate::dataflow`]. Resolution is deliberately
//! conservative: free calls resolve only when the name is unambiguous
//! (same-file definitions win ties), `self.m(..)` resolves within the
//! caller's impl type, `Type::m(..)` against `impl Type`, and a plain
//! `recv.m(..)` only when the method name is workspace-unique — anything
//! else is opaque and simply not traversed. A missed edge costs coverage,
//! never a false finding on the caller.
//!
//! Two interprocedural passes live here:
//!
//! * [`constant_flow_contexts`] — a monotone worklist that starts from
//!   every `// analyze: constant-flow` pragma root and joins, per
//!   function, the set of parameters that can carry operand-derived data
//!   in *some* calling context (translated through each call's argument
//!   origin masks). Pragma'd callees are their own roots and are not
//!   propagated into; everything else reachable from a root is checked
//!   transitively with zero opt-in.
//! * [`zero_alloc`] — BFS over the call graph from every
//!   `// analyze: zero-alloc` root, reporting allocation sites on any
//!   reachable path. An `allow(za-alloc)` gate on a *call* line exempts
//!   the whole callee subtree (the caller vouches for it); a gate on an
//!   allocation line exempts just that site via the normal allow
//!   resolution.

use crate::dataflow::{CallKind, CallSite, FnSummary, Site};
use crate::findings::Finding;
use crate::pragma::JournalMode;
use std::collections::{HashMap, HashSet, VecDeque};

/// Method names too generic to resolve by uniqueness: they almost always
/// target std types, so a workspace fn that happens to share the name
/// must not capture every call site.
const OPAQUE_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "cmp",
    "fmt",
    "from",
    "into",
    "default",
    "min",
    "max",
    "take",
    "read",
    "flush",
    "lock",
    "contains",
    "position",
    "find",
    "count",
    "last",
    "rev",
    "enumerate",
    "new",
    "join",
    "push",
    "insert",
    "append",
    "clear",
    "fill",
    "swap",
    "split_at",
    "split_at_mut",
    "write",
    "flush_buf",
];

/// One function plus the pragma facts the global passes need.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub file: String,
    pub s: FnSummary,
    /// `Some(public set)` iff the fn carries a constant-flow pragma.
    pub cf_public: Option<HashSet<String>>,
    /// Carries a zero-alloc pragma.
    pub za_root: bool,
    /// Carries a journal pragma.
    pub journal: Option<JournalMode>,
}

/// The whole workspace, indexed for call resolution.
pub struct Program {
    pub fns: Vec<FnInfo>,
    /// Free fns (no owner) by name.
    free: HashMap<String, Vec<usize>>,
    /// Methods by (owner, name).
    owned: HashMap<(String, String), Vec<usize>>,
    /// Every fn by bare name (free and methods), for unique-method and
    /// qualified-fallback resolution.
    by_name: HashMap<String, Vec<usize>>,
}

impl Program {
    pub fn build(fns: Vec<FnInfo>) -> Program {
        let mut free: HashMap<String, Vec<usize>> = HashMap::new();
        let mut owned: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.s.name.clone()).or_default().push(i);
            match &f.s.owner {
                Some(owner) => owned
                    .entry((owner.clone(), f.s.name.clone()))
                    .or_default()
                    .push(i),
                None => free.entry(f.s.name.clone()).or_default().push(i),
            }
        }
        Program {
            fns,
            free,
            owned,
            by_name,
        }
    }

    /// Resolve a call made from `caller` to a workspace fn index, or
    /// `None` when the target is external / ambiguous.
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Option<usize> {
        match call.kind {
            CallKind::Free => self.pick(self.free.get(&call.name)?, caller),
            CallKind::SelfMethod => {
                let owner = self.fns[caller].s.owner.clone()?;
                self.pick(self.owned.get(&(owner, call.name.clone()))?, caller)
            }
            CallKind::Qualified => {
                if let Some(c) = self
                    .owned
                    .get(&(call.qual.clone(), call.name.clone()))
                    .and_then(|c| self.pick(c, caller))
                {
                    return Some(c);
                }
                // `module::helper(..)` — fall back to a unique free fn.
                let cands = self.free.get(&call.name)?;
                if cands.len() == 1 {
                    Some(cands[0])
                } else {
                    None
                }
            }
            CallKind::Method => {
                if OPAQUE_METHODS.contains(&call.name.as_str()) {
                    return None;
                }
                let cands = self.by_name.get(&call.name)?;
                // A free fn sharing the name makes the receiver-less
                // heuristic unsafe; otherwise a unique method (or a unique
                // same-file one, e.g. `journal.replay(..)` next to the one
                // `replay` impl in that file) wins.
                if cands.iter().any(|&i| self.fns[i].s.owner.is_none()) {
                    return None;
                }
                self.pick(cands, caller)
            }
        }
    }

    /// Among candidates, a unique one wins; ties break to the caller's
    /// own file (the overwhelmingly common case for helper fns).
    fn pick(&self, cands: &[usize], caller: usize) -> Option<usize> {
        if cands.len() == 1 {
            return Some(cands[0]);
        }
        let file = &self.fns[caller].file;
        let mut local = cands.iter().filter(|&&i| &self.fns[i].file == file);
        match (local.next(), local.next()) {
            (Some(&i), None) => Some(i),
            _ => None,
        }
    }
}

/// The taint context a function is checked under: the join over every
/// calling context of "which of my parameters carry operand-derived
/// data", plus the pragma root it was first reached from (for messages).
#[derive(Debug, Clone)]
pub struct CfContext {
    pub mask: u64,
    pub root: String,
}

/// Worklist pass: compute the constant-flow taint context of every fn
/// transitively reachable from a pragma root. Roots map to their own
/// non-public parameter mask; a call propagates a bit into the callee for
/// every argument (or receiver, onto the callee's `self` position) whose
/// origin mask intersects the caller's context. Pragma'd callees are not
/// entered — they are their own roots with their own public lists.
///
/// `pruned(file, line)` consults `allow(cf-reach)` gates: a call made on a
/// pruned line is a **documented divergence boundary** (the serialized
/// scalar-fixup and queue-service dispatches) and propagation stops there;
/// pruned call lines are recorded in `consumed` so the gates count as used.
pub fn constant_flow_contexts(
    prog: &Program,
    pruned: &dyn Fn(&str, u32) -> bool,
    consumed: &mut Vec<(String, u32)>,
) -> HashMap<usize, CfContext> {
    let mut ctx: HashMap<usize, CfContext> = HashMap::new();
    let mut work: VecDeque<usize> = VecDeque::new();
    for (i, f) in prog.fns.iter().enumerate() {
        if let Some(public) = &f.cf_public {
            ctx.insert(
                i,
                CfContext {
                    mask: f.s.root_taint(public),
                    root: f.s.name.clone(),
                },
            );
            work.push_back(i);
        }
    }
    while let Some(i) = work.pop_front() {
        let caller_mask = match ctx.get(&i) {
            Some(c) => c.mask,
            None => continue,
        };
        let root = ctx[&i].root.clone();
        let calls: Vec<CallSite> = prog.fns[i]
            .s
            .sites
            .iter()
            .filter_map(|s| match s {
                Site::Call(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        for call in calls {
            if pruned(&prog.fns[i].file, call.line) {
                consumed.push((prog.fns[i].file.clone(), call.line));
                continue;
            }
            let Some(j) = prog.resolve(i, &call) else {
                continue;
            };
            if prog.fns[j].cf_public.is_some() || prog.fns[j].s.in_test || j == i {
                continue;
            }
            let mask = translate_mask(caller_mask, &call, &prog.fns[j].s);
            let entry = ctx.entry(j).or_insert_with(|| CfContext {
                mask: 0,
                root: root.clone(),
            });
            let joined = entry.mask | mask;
            if joined != entry.mask {
                entry.mask = joined;
                work.push_back(j);
            }
        }
    }
    ctx
}

/// Translate a caller-side call into the callee's parameter mask: the
/// receiver feeds the callee's `self` position, the k-th argument feeds
/// the k-th non-`self` parameter.
fn translate_mask(caller_mask: u64, call: &CallSite, callee: &FnSummary) -> u64 {
    let mut mask = 0u64;
    if call.recv & caller_mask != 0 {
        if let Some(p) = callee.self_pos() {
            mask |= FnSummary::param_bit(p);
        }
    }
    let mut arg = 0usize;
    for (p, name) in callee.params.iter().enumerate() {
        if name == "self" {
            continue;
        }
        if let Some(&m) = call.args.get(arg) {
            if m & caller_mask != 0 {
                mask |= FnSummary::param_bit(p);
            }
        }
        arg += 1;
    }
    mask
}

/// BFS from every zero-alloc root, reporting each allocation site on a
/// reachable path. `allowed(file, line)` answers whether an
/// `allow(za-alloc)` gate covers that line; when it exempts a *call*
/// site, the callee subtree is skipped and the gate is recorded in
/// `consumed` so the unused-allow meta-lint stays accurate.
pub fn zero_alloc(
    prog: &Program,
    allowed: &dyn Fn(&str, u32) -> bool,
    consumed: &mut Vec<(String, u32)>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut reported: HashSet<(String, u32)> = HashSet::new();
    for (r, f) in prog.fns.iter().enumerate() {
        if !f.za_root {
            continue;
        }
        let root_name = f.s.name.clone();
        let mut seen: HashSet<usize> = HashSet::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        seen.insert(r);
        queue.push_back(r);
        while let Some(i) = queue.pop_front() {
            let info = &prog.fns[i];
            for site in &info.s.sites {
                match site {
                    Site::Alloc { line, what } => {
                        if !reported.insert((info.file.clone(), *line)) {
                            continue;
                        }
                        let wherein = if i == r {
                            format!("zero-alloc fn `{root_name}`")
                        } else {
                            format!(
                                "fn `{}` reached from zero-alloc root `{root_name}`",
                                info.s.name
                            )
                        };
                        findings.push(Finding {
                            file: info.file.clone(),
                            line: *line,
                            lint: "za-alloc",
                            message: format!("allocating call `{what}` in {wherein}"),
                            suggestion: "add `// analyze: allow(za-alloc, reason = \"...\")` \
                                         if this allocation is by design"
                                .to_string(),
                        });
                    }
                    Site::Call(c) => {
                        let Some(j) = prog.resolve(i, c) else {
                            continue;
                        };
                        if prog.fns[j].s.in_test {
                            continue;
                        }
                        if allowed(&info.file, c.line) {
                            consumed.push((info.file.clone(), c.line));
                            continue;
                        }
                        if seen.insert(j) {
                            queue.push_back(j);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::find_fns;
    use crate::lexer::lex;

    fn program(src: &str, cf: &[&str], za: &[&str]) -> Program {
        let lexed = lex(src);
        let fns = find_fns(&lexed.toks)
            .iter()
            .map(|d| {
                let public = HashSet::new();
                let s = crate::dataflow::summarize(&lexed.toks, d, &public);
                FnInfo {
                    file: "test.rs".to_string(),
                    cf_public: cf.contains(&s.name.as_str()).then(HashSet::new),
                    za_root: za.contains(&s.name.as_str()),
                    journal: None,
                    s,
                }
            })
            .collect();
        Program::build(fns)
    }

    #[test]
    fn taint_propagates_through_calls() {
        let src = "fn root(x: u64, n: usize) { helper(x); other(n); }\n\
                   fn helper(v: u64) { if v > 0 { leaf(v); } }\n\
                   fn other(len: usize) {}\n\
                   fn leaf(w: u64) {}\n";
        let prog = program(src, &["root"], &[]);
        let ctx = constant_flow_contexts(&prog, &|_, _| false, &mut Vec::new());
        let by_name = |n: &str| {
            prog.fns
                .iter()
                .position(|f| f.s.name == n)
                .and_then(|i| ctx.get(&i))
        };
        assert_eq!(by_name("root").map(|c| c.mask), Some(3));
        // helper's v is tainted (fed from x).
        assert_eq!(by_name("helper").map(|c| c.mask), Some(1));
        assert_eq!(by_name("helper").map(|c| c.root.as_str()), Some("root"));
        // other's len is fed from n which is also non-public on root.
        assert_eq!(by_name("other").map(|c| c.mask), Some(1));
        // leaf reached through helper.
        assert_eq!(by_name("leaf").map(|c| c.mask), Some(1));
    }

    #[test]
    fn pragma_callee_is_its_own_root() {
        let src = "fn root(x: u64) { sub(x); }\n\
                   fn sub(y: u64) { if y > 0 { g(); } }\n";
        let prog = program(src, &["root", "sub"], &[]);
        let ctx = constant_flow_contexts(&prog, &|_, _| false, &mut Vec::new());
        let sub = prog.fns.iter().position(|f| f.s.name == "sub");
        let c = sub.and_then(|i| ctx.get(&i));
        assert_eq!(c.map(|c| c.root.as_str()), Some("sub"));
    }

    #[test]
    fn zero_alloc_walks_the_graph() {
        let src = "fn hot(n: usize) { step(n); }\n\
                   fn step(n: usize) { let v = Vec::new(); grow(v); }\n\
                   fn grow(mut v: Vec<u64>) { v.push(1); }\n";
        let prog = program(src, &[], &["hot"]);
        let mut consumed = Vec::new();
        let f = zero_alloc(&prog, &|_, _| false, &mut consumed);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.message.contains("Vec::new")));
        assert!(f.iter().any(|f| f.message.contains(".push()")));
        assert!(consumed.is_empty());
    }

    #[test]
    fn allowed_call_line_exempts_subtree() {
        let src = "fn hot(n: usize) { step(n); }\n\
                   fn step(n: usize) { let v = Vec::new(); }\n";
        let prog = program(src, &[], &["hot"]);
        let mut consumed = Vec::new();
        // Every call line is allowed → the subtree is never entered.
        let f = zero_alloc(&prog, &|_, _| true, &mut consumed);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(consumed.len(), 1);
    }

    #[test]
    fn method_resolution_is_conservative() {
        let src = "struct W;\n\
                   impl W { fn run(&self) { self.inner(); } fn inner(&self) {} }\n\
                   fn free_caller(w: &W) { w.run(); }\n";
        let prog = program(src, &[], &[]);
        let run = prog.fns.iter().position(|f| f.s.name == "run").unwrap();
        let caller = prog
            .fns
            .iter()
            .position(|f| f.s.name == "free_caller")
            .unwrap();
        let call = prog.fns[caller]
            .s
            .sites
            .iter()
            .find_map(|s| match s {
                Site::Call(c) => Some(c.clone()),
                _ => None,
            })
            .unwrap();
        // `w.run()` resolves: `run` is workspace-unique.
        assert_eq!(prog.resolve(caller, &call), Some(run));
    }
}
