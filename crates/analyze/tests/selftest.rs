//! Seeded-violation self-test: every lint must fire on its fixture and
//! stay silent on the clean fixture. This is what makes the analyzer
//! trustworthy — a lint that can't be shown to fire proves nothing by
//! passing.

use analyze::{run_file, FileClass, FileCtx, FileOutcome};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn run_fixture(name: &str, bigint_limb: bool) -> FileOutcome {
    let src = fixture(name);
    run_file(
        &src,
        &FileCtx {
            path: format!("fixtures/{name}"),
            class: FileClass::Library,
            bigint_limb,
        },
    )
}

fn lint_counts(out: &FileOutcome) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for f in &out.findings {
        *counts.entry(f.lint).or_insert(0) += 1;
    }
    counts
}

#[test]
fn constant_flow_lints_fire() {
    let out = run_fixture("cf_violations.rs", false);
    let counts = lint_counts(&out);
    // branchy's if, loopy's while, matchy's match.
    assert_eq!(counts.get("cf-branch"), Some(&3), "{:?}", out.findings);
    // branchy's return and tryish's `?`.
    assert_eq!(
        counts.get("cf-early-return"),
        Some(&2),
        "{:?}",
        out.findings
    );
    assert_eq!(
        counts.get("cf-short-circuit"),
        Some(&1),
        "{:?}",
        out.findings
    );
    assert_eq!(counts.get("cf-index"), Some(&1), "{:?}", out.findings);
    assert_eq!(
        counts.len(),
        4,
        "unexpected extra lints: {:?}",
        out.findings
    );
    assert_eq!(out.constant_flow_fns, 6);
}

#[test]
fn panic_and_print_lints_fire() {
    let out = run_fixture("panics.rs", false);
    let counts = lint_counts(&out);
    // unwrap, expect, panic!, todo! — assert!/unreachable! and the
    // #[cfg(test)] module must not be flagged.
    assert_eq!(counts.get("no-panic"), Some(&4), "{:?}", out.findings);
    // println!, eprintln!, dbg!.
    assert_eq!(counts.get("no-debug-print"), Some(&3), "{:?}", out.findings);
    assert_eq!(
        counts.len(),
        2,
        "unexpected extra lints: {:?}",
        out.findings
    );
}

#[test]
fn safety_comment_lint_fires() {
    let out = run_fixture("unsafe_blocks.rs", false);
    assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
    assert_eq!(out.findings[0].lint, "safety-comment");
    // Only the undocumented block; the SAFETY-commented one is clean.
    assert!(out.findings[0].line > 20, "{:?}", out.findings);
}

#[test]
fn truncating_cast_lint_fires_and_allow_consumes() {
    let out = run_fixture("casts.rs", true);
    assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
    assert_eq!(out.findings[0].lint, "truncating-cast");
    assert_eq!(out.allows_consumed, 1);
}

#[test]
fn truncating_cast_needs_bigint_flag() {
    // Without the bigint-limb flag the cast lint is off; the only
    // residue is the now-stale allow pragma, which unused-allow reports.
    let out = run_fixture("casts.rs", false);
    let counts = lint_counts(&out);
    assert_eq!(counts.get("truncating-cast"), None, "{:?}", out.findings);
    assert_eq!(counts.get("unused-allow"), Some(&1), "{:?}", out.findings);
}

#[test]
fn deprecated_shim_lint_fires_on_calls_only() {
    let out = run_fixture("shims.rs", false);
    assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
    assert_eq!(out.findings[0].lint, "deprecated-shim");
    assert!(out.findings[0].message.contains("scan_cpu"));
}

#[test]
fn meta_lints_fire() {
    let out = run_fixture("meta.rs", false);
    let counts = lint_counts(&out);
    assert_eq!(counts.get("unused-allow"), Some(&1), "{:?}", out.findings);
    // Missing reason + unknown directive.
    assert_eq!(counts.get("bad-pragma"), Some(&2), "{:?}", out.findings);
    assert_eq!(
        counts.len(),
        2,
        "unexpected extra lints: {:?}",
        out.findings
    );
}

#[test]
fn clean_fixture_is_clean() {
    let out = run_fixture("clean.rs", false);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.constant_flow_fns, 3);
    assert_eq!(out.allows_consumed, 1);
}

#[test]
fn test_class_skips_panic_lints() {
    let src = fixture("panics.rs");
    let out = run_file(
        &src,
        &FileCtx {
            path: "tests/panics.rs".into(),
            class: FileClass::Test,
            bigint_limb: false,
        },
    );
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn journal_lints_fire() {
    let out = run_fixture("journal_violations.rs", false);
    let counts = lint_counts(&out);
    // Three distinct unsynced shapes: direct, skippable sync, and a
    // helper that forgets the fsync (interprocedural effect).
    assert_eq!(
        counts.get("journal-unsynced"),
        Some(&3),
        "{:?}",
        out.findings
    );
    assert_eq!(
        counts.get("journal-split-commit"),
        Some(&1),
        "{:?}",
        out.findings
    );
    assert_eq!(
        counts.get("journal-torn-tail"),
        Some(&1),
        "{:?}",
        out.findings
    );
    assert_eq!(
        counts.len(),
        3,
        "unexpected extra lints: {:?}",
        out.findings
    );
    // The dirty helper's effect is attributed to its journal caller.
    assert!(out
        .findings
        .iter()
        .any(|f| f.lint == "journal-unsynced" && f.message.contains("record_via_helper")));
}

#[test]
fn zero_alloc_lints_fire() {
    let out = run_fixture("za_violations.rs", false);
    let counts = lint_counts(&out);
    // vec! macro, .push(), and a .to_string() one call deep.
    assert_eq!(counts.get("za-alloc"), Some(&3), "{:?}", out.findings);
    assert_eq!(
        counts.len(),
        1,
        "unexpected extra lints: {:?}",
        out.findings
    );
    assert!(
        out.findings.iter().any(|f| f.message.contains("widen")),
        "transitive allocation should name the helper: {:?}",
        out.findings
    );
    // The warmup resize in `steady` is excused, and the allow is consumed.
    assert_eq!(out.allows_consumed, 1);
}

#[test]
fn interprocedural_constant_flow_fires_and_prunes() {
    let out = run_fixture("cf_interproc.rs", false);
    let counts = lint_counts(&out);
    // `accumulate` has no pragma of its own; both findings come from the
    // taint context `kernel` hands it through the call.
    assert_eq!(counts.get("cf-branch"), Some(&1), "{:?}", out.findings);
    assert_eq!(
        counts.get("cf-early-return"),
        Some(&1),
        "{:?}",
        out.findings
    );
    assert_eq!(
        counts.len(),
        2,
        "unexpected extra lints: {:?}",
        out.findings
    );
    assert!(
        out.findings.iter().all(|f| f
            .message
            .contains("reached from constant-flow root `kernel`")),
        "interprocedural findings must name their root: {:?}",
        out.findings
    );
    // Two roots: `kernel` and the laundering-clean `drive`.
    assert_eq!(out.constant_flow_fns, 2);
    // The cf-reach gate on `tail` pruned the edge and was consumed.
    assert_eq!(out.allows_consumed, 1);
}
