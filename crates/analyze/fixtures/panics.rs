//! Seeded no-panic and no-debug-print violations for the self-test.
//! Never compiled — consumed as text by the analyze self-test.

pub fn panics(v: Option<u32>, w: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = w.expect("fixture");
    if a > b {
        panic!("boom");
    }
    todo!()
}

pub fn prints(x: u32) {
    println!("x = {x}");
    eprintln!("still {x}");
    dbg!(x);
}

pub fn fine(x: u32) -> u32 {
    // assert! and unreachable! express invariants, not error handling:
    // neither may be flagged.
    assert!(x < 100);
    match x % 2 {
        0 | 1 => x + 1,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these may be flagged.
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        println!("test output is fine");
    }
}
