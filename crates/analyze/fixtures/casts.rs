//! Seeded truncating-cast violation (scanned with the bigint-limb flag).
//! Never compiled — consumed as text by the analyze self-test.

type Limb = u32;
type Wide = u64;

pub fn bare_cast(w: Wide) -> Limb {
    w as Limb
}

pub fn excused_cast(w: Wide) -> Limb {
    // analyze: allow(truncating-cast, reason = "fixture: intended truncation, documented")
    w as Limb
}
