//! Seeded safety-comment violation: one documented unsafe block (clean),
//! one undocumented (must be flagged). The two blocks are spaced further
//! apart than the lint's look-back window so the first SAFETY comment
//! cannot accidentally cover the second block.
//! Never compiled — consumed as text by the analyze self-test.

pub fn documented(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid and aligned for reads.
    unsafe { *p }
}

pub fn padding_a() -> u32 {
    1
}

pub fn padding_b() -> u32 {
    2
}

pub fn padding_c() -> u32 {
    3
}

pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}
