//! Seeded crash-consistency violations for the journal lints.
//!
//! Each `journal` pragma below opts a function into the durability pass;
//! the self-test pins the exact finding set so a regression in the
//! dataflow (a lost Dirty state, a miscounted append, a vanished
//! tail-guard mention) fails loudly.

use std::io;

pub struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Violation: the append reaches the success exit without an fsync —
    /// a crash after `Ok(())` loses a record the caller believes durable.
    // analyze: journal(append)
    pub fn append_unsynced(&mut self, line: &[u8]) -> io::Result<()> {
        self.file.write_all(line)?;
        Ok(())
    }

    /// Violation: the sync is skippable, so one path exits dirty.
    // analyze: journal
    pub fn append_skippable_sync(&mut self, line: &[u8], durable: bool) -> io::Result<()> {
        self.file.write_all(line)?;
        if durable {
            self.file.sync_data()?;
        }
        Ok(())
    }

    fn raw_write(&mut self, line: &[u8]) -> io::Result<()> {
        self.file.write_all(line)?;
        Ok(())
    }

    /// Violation (interprocedural): the helper forgets the fsync and the
    /// caller trusts it — the dirty effect must propagate up the call.
    // analyze: journal
    pub fn record_via_helper(&mut self, line: &[u8]) -> io::Result<()> {
        self.raw_write(line)?;
        Ok(())
    }

    /// Violation: magic and header land in two separate appends, so a
    /// crash between them leaves a half-committed journal head.
    // analyze: journal(create)
    pub fn create_split(&mut self, header: &[u8]) -> io::Result<()> {
        self.file.write_all(b"MAGIC\n")?;
        self.file.write_all(header)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Clean: one append, one fsync, then the success exit.
    // analyze: journal(append)
    pub fn append_clean(&mut self, line: &[u8]) -> io::Result<()> {
        self.file.write_all(line)?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// Violation: replay parses the raw byte stream with no torn-tail
/// handling anywhere on the reachable path — a crash mid-append makes
/// every later open fail on the half-written line.
// analyze: journal(replay)
pub fn replay_no_guard(bytes: &[u8]) -> Vec<u64> {
    parse_records(bytes)
}

fn parse_records(bytes: &[u8]) -> Vec<u64> {
    let mut out = Vec::new();
    for chunk in bytes.split(|&b| b == b'\n') {
        out.push(chunk.len() as u64);
    }
    out
}

/// Clean: trims to the committed prefix before parsing.
// analyze: journal(replay)
pub fn replay_guarded(bytes: &[u8]) -> Vec<u64> {
    let committed = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    parse_records(&bytes[..committed])
}
