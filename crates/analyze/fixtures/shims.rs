//! Seeded deprecated-shim violation: calls a legacy scan_* entry point.
//! Never compiled — consumed as text by the analyze self-test.

pub fn calls_shim(moduli: &[Nat]) -> ScanReport {
    scan_cpu(moduli, Algorithm::Aea, true)
}

pub fn mentions_without_calling() {
    // A bare mention (no call parens) must not be flagged: scan_lockstep
    let _name = "scan_gpu_sim";
}
