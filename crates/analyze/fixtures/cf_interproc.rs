//! Interprocedural constant-flow fixture.
//!
//! `kernel` is the only pragma'd root; `accumulate` has no annotation at
//! all and must still be checked under the taint context the call hands
//! it — that is the whole point of the summary pass. `tail` sits behind a
//! documented `cf-reach` boundary and must stay unreported, and `drive`
//! shows the public-accessor laundering rule: `fused_rows` is named in
//! the public list, so its result is iteration structure, not taint.

// analyze: constant-flow(public = "w, rows")
pub fn kernel(x: &[u64], w: usize, rows: usize) -> u64 {
    let mut acc = 0u64;
    for k in 0..rows {
        acc ^= accumulate(x, k * w);
    }
    // analyze: allow(cf-reach, reason = "the serialized tail is the documented divergence boundary")
    acc ^ tail(x)
}

/// No pragma: checked transitively under `kernel`'s context, where `x`
/// carries operand taint and `off` is public structure.
fn accumulate(x: &[u64], off: usize) -> u64 {
    if x[off] == 0 {
        return 1;
    }
    x[off]
}

/// Pruned at the call site: never reported despite the operand branch.
fn tail(x: &[u64]) -> u64 {
    if x[0] & 1 == 1 {
        3
    } else {
        4
    }
}

pub struct Lane {
    data: Vec<u64>,
    n: usize,
}

impl Lane {
    /// Clean: `fused_rows` is a public accessor, so the row count it
    /// returns launders into plain iteration structure.
    // analyze: constant-flow(public = "fused_rows, n")
    pub fn drive(&mut self) -> u64 {
        let rows = self.fused_rows();
        let mut acc = 0u64;
        for r in 0..rows {
            acc = acc.wrapping_add(self.data[r]);
        }
        acc
    }

    fn fused_rows(&self) -> usize {
        self.n
    }
}
