//! Seeded constant-flow violations: every cf-* lint must fire on this file.
//! Never compiled — consumed as text by the analyze self-test.

// analyze: constant-flow
pub fn branchy(x: u32) -> u32 {
    if x > 3 {
        return 1;
    }
    0
}

// analyze: constant-flow
pub fn shorty(x: u32, y: u32) -> bool {
    x > 0 && y > 0
}

// analyze: constant-flow
pub fn indexy(x: usize, table: &[u32]) -> u32 {
    table[x]
}

// analyze: constant-flow
pub fn loopy(x: u32) -> u32 {
    let mut v = x;
    while v > 1 {
        v /= 2;
    }
    v
}

// analyze: constant-flow
pub fn matchy(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => 2,
    }
}

// analyze: constant-flow
pub fn tryish(x: Option<u32>) -> Option<u32> {
    let v = x?;
    Some(v + 1)
}
