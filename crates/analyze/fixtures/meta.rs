//! Seeded meta-lint violations: an allow that excuses nothing
//! (unused-allow) and malformed pragmas (bad-pragma).
//! Never compiled — consumed as text by the analyze self-test.

// analyze: allow(no-panic, reason = "fixture: nothing here panics, so this allow is dead")
pub fn nothing_to_excuse() -> u32 {
    7
}

// analyze: allow(no-panic)
pub fn missing_reason() -> u32 {
    11
}

// analyze: frobnicate the bits
pub fn unknown_directive() -> u32 {
    13
}
