//! Seeded zero-alloc violations.
//!
//! `hot_loop` allocates three distinct ways — an allocating macro, a
//! growth method, and a `.to_string()` buried in a transitively reached
//! helper. `steady` is the shape the real scan uses: scratch that grows
//! once under a documented allow, then pure arithmetic.

pub struct Scratch {
    buf: Vec<u64>,
    out: Vec<u64>,
}

impl Scratch {
    /// Violations: the hot loop allocates per element.
    // analyze: zero-alloc
    pub fn hot_loop(&mut self, inputs: &[u64]) -> u64 {
        let mut acc = 0u64;
        for &x in inputs {
            let staged = vec![x; 4];
            self.out.push(x);
            acc = acc.wrapping_add(digest(&staged)).wrapping_add(widen(x));
        }
        acc
    }

    /// Clean: the one warmup allocation is documented; after it the loop
    /// is arithmetic over reused scratch.
    // analyze: zero-alloc
    pub fn steady(&mut self, inputs: &[u64]) -> u64 {
        if self.buf.len() < inputs.len() {
            // analyze: allow(za-alloc, reason = "scratch grows once to the input width; after warmup the resize is a no-op")
            self.buf.resize(inputs.len(), 0);
        }
        let mut acc = 0u64;
        for (slot, &x) in self.buf.iter_mut().zip(inputs) {
            *slot = x;
            acc = acc.wrapping_add(digest_word(x));
        }
        acc
    }
}

fn digest(words: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &w in words {
        acc ^= w;
    }
    acc
}

/// Reached from `hot_loop`: the allocation hides one call deep.
fn widen(x: u64) -> u64 {
    let copy = x.to_string();
    copy.len() as u64
}

fn digest_word(x: u64) -> u64 {
    x.rotate_left(7)
}
