//! A clean library file: the self-test asserts zero findings here, so
//! every pattern below must stay inside the lint rules.
//! Never compiled — consumed as text by the analyze self-test.

// analyze: constant-flow(public = "w")
pub fn sum_rows(w: usize, rows: &[u32]) -> u32 {
    let mut acc: u32 = 0;
    for r in 0..w {
        acc = acc.wrapping_add(rows[r]);
    }
    acc
}

// analyze: constant-flow
pub fn size_laundering(rows: &[u32]) -> usize {
    // .len() launders taint: sizes are public in the semi-oblivious
    // model, so branching on one is constant-flow.
    let n = rows.len();
    if n > 8 {
        n
    } else {
        8
    }
}

// analyze: constant-flow
// analyze: allow(cf-branch, reason = "fixture: demonstrates a consumed allow on a divergent fixup")
pub fn excused_branch(x: u32) -> u32 {
    if x > 3 {
        x
    } else {
        0
    }
}

pub fn checked(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}
