//! Cross-implementation property tests: the optimized multiword algorithms,
//! the generic small-word oracle at d = 32, and the substrate's reference
//! GCD must all agree — on arbitrary odd numbers and on RSA-shaped moduli.

use bulkgcd_bigint::prime::random_prime;
use bulkgcd_bigint::random::random_odd_bits;
use bulkgcd_bigint::Nat;
use bulkgcd_core::probe::{StatsProbe, TraceProbe};
use bulkgcd_core::smallword;
use bulkgcd_core::{gcd_nat, run, Algorithm, GcdOutcome, GcdPair, NoProbe, Termination};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn all_variants_agree_with_reference_u128(
        a in any::<u128>().prop_map(|v| v | 1),
        b in any::<u128>().prop_map(|v| v | 1),
    ) {
        let an = Nat::from_u128(a);
        let bn = Nat::from_u128(b);
        let expect = an.gcd_reference(&bn);
        for algo in Algorithm::ALL {
            prop_assert_eq!(&gcd_nat(algo, &an, &bn), &expect, "{}", algo.name());
        }
    }

    #[test]
    fn multiword_matches_smallword_oracle_at_d32(
        a in any::<u128>().prop_map(|v| v | 1),
        b in any::<u128>().prop_map(|v| v | 1),
    ) {
        // Identical iteration traces, not just identical results: the
        // multiword Approximate Euclid must take exactly the same (α, β)
        // decisions as the u128 oracle with d = 32.
        let an = Nat::from_u128(a);
        let bn = Nat::from_u128(b);
        let sw = smallword::trace(Algorithm::Approximate, a, b, 32);
        let mut pair = GcdPair::new(&an, &bn);
        let mut tp = TraceProbe::default();
        let out = run(Algorithm::Approximate, &mut pair, Termination::Full, &mut tp);
        prop_assert_eq!(out, GcdOutcome::Gcd(Nat::from_u128(sw.gcd)));
        prop_assert_eq!(tp.rows.len(), sw.rows.len());
        for (mw, swr) in tp.rows.iter().zip(sw.rows.iter()) {
            prop_assert_eq!(mw.x_after.to_u128(), Some(swr.x_after));
            prop_assert_eq!(mw.y_after.to_u128(), Some(swr.y_after));
            prop_assert_eq!(mw.step.alpha as u128, swr.alpha.unwrap());
            prop_assert_eq!(mw.step.beta as u32, swr.beta.unwrap());
            prop_assert_eq!(mw.step.case.unwrap(), swr.case.unwrap());
        }
    }

    #[test]
    fn binary_variants_match_smallword_traces(
        a in any::<u128>().prop_map(|v| v | 1),
        b in any::<u128>().prop_map(|v| v | 1),
    ) {
        for algo in [Algorithm::Binary, Algorithm::FastBinary, Algorithm::Original, Algorithm::Fast] {
            let sw = smallword::trace(algo, a, b, 32);
            let mut pair = GcdPair::new(&Nat::from_u128(a), &Nat::from_u128(b));
            let mut sp = StatsProbe::default();
            let out = run(algo, &mut pair, Termination::Full, &mut sp);
            prop_assert_eq!(out, GcdOutcome::Gcd(Nat::from_u128(sw.gcd)), "{}", algo.name());
            prop_assert_eq!(sp.stats.iterations, sw.iterations() as u64, "{}", algo.name());
        }
    }

    #[test]
    fn early_termination_consistent_with_full(
        a in any::<u64>().prop_map(|v| (v | 1) as u128),
        b in any::<u64>().prop_map(|v| (v | 1) as u128),
    ) {
        // With threshold 32 on 64-bit inputs: Early reports Coprime iff the
        // true GCD has fewer than 32 bits... more precisely iff the GCD has
        // < 32 bits (a shared >= 32-bit factor is always found).
        let an = Nat::from_u128(a);
        let bn = Nat::from_u128(b);
        let g = an.gcd_reference(&bn);
        for algo in Algorithm::ALL {
            let mut pair = GcdPair::new(&an, &bn);
            let out = run(algo, &mut pair, Termination::Early { threshold_bits: 32 }, &mut NoProbe);
            match out {
                GcdOutcome::Gcd(found) => prop_assert_eq!(&found, &g, "{}", algo.name()),
                GcdOutcome::Coprime => prop_assert!(
                    g.bit_len() < 32,
                    "{}: claimed coprime but gcd has {} bits",
                    algo.name(),
                    g.bit_len()
                ),
            }
        }
    }
}

/// RSA-shaped inputs: products of two primes, with and without a shared one.
#[test]
fn rsa_moduli_shared_prime_detected_by_all_variants() {
    let mut rng = StdRng::seed_from_u64(7);
    for s in [128u64, 256] {
        let half = s / 2;
        let p = random_prime(&mut rng, half);
        let q1 = random_prime(&mut rng, half);
        let q2 = random_prime(&mut rng, half);
        assert_ne!(q1, q2);
        let n1 = p.mul(&q1);
        let n2 = p.mul(&q2);
        for algo in Algorithm::ALL {
            let mut pair = GcdPair::new(&n1, &n2);
            let out = run(
                algo,
                &mut pair,
                Termination::Early {
                    threshold_bits: half,
                },
                &mut NoProbe,
            );
            assert_eq!(out, GcdOutcome::Gcd(p.clone()), "{} s={s}", algo.name());
        }
    }
}

#[test]
fn rsa_moduli_distinct_primes_coprime_under_early_termination() {
    let mut rng = StdRng::seed_from_u64(8);
    let half = 128u64;
    let n1 = random_prime(&mut rng, half).mul(&random_prime(&mut rng, half));
    let n2 = random_prime(&mut rng, half).mul(&random_prime(&mut rng, half));
    for algo in Algorithm::ALL {
        let mut pair = GcdPair::new(&n1, &n2);
        let out = run(
            algo,
            &mut pair,
            Termination::Early {
                threshold_bits: half,
            },
            &mut NoProbe,
        );
        assert_eq!(out, GcdOutcome::Coprime, "{}", algo.name());
    }
}

/// The §V claim that (B) and (E) have nearly identical iteration counts:
/// on 512-bit RSA moduli the difference must be tiny.
#[test]
fn approximate_iteration_count_close_to_fast() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut total_b = 0u64;
    let mut total_e = 0u64;
    let pairs = 12;
    for _ in 0..pairs {
        let n1 = random_prime(&mut rng, 256).mul(&random_prime(&mut rng, 256));
        let n2 = random_prime(&mut rng, 256).mul(&random_prime(&mut rng, 256));
        for (algo, total) in [
            (Algorithm::Fast, &mut total_b),
            (Algorithm::Approximate, &mut total_e),
        ] {
            let mut pair = GcdPair::new(&n1, &n2);
            let mut sp = StatsProbe::default();
            run(algo, &mut pair, Termination::Full, &mut sp);
            *total += sp.stats.iterations;
        }
    }
    let diff = total_e.abs_diff(total_b) as f64 / total_b as f64;
    assert!(
        diff < 0.01,
        "E-B iteration gap {diff} too large: E={total_e} B={total_b}"
    );
}

/// The §V claim that β > 0 is vanishingly rare for d = 32: across many
/// random odd pairs the β>0 rate must be far below 1%.
#[test]
fn beta_nonzero_extremely_rare() {
    let mut rng = StdRng::seed_from_u64(10);
    let mut iters = 0u64;
    let mut beta_nonzero = 0u64;
    for _ in 0..60 {
        let a = random_odd_bits(&mut rng, 512);
        let b = random_odd_bits(&mut rng, 512);
        let mut pair = GcdPair::new(&a, &b);
        let mut sp = StatsProbe::default();
        run(
            Algorithm::Approximate,
            &mut pair,
            Termination::Full,
            &mut sp,
        );
        iters += sp.stats.iterations;
        beta_nonzero += sp.stats.beta_nonzero;
    }
    assert!(iters > 5_000, "expected substantial iteration volume");
    assert!(
        (beta_nonzero as f64) < iters as f64 * 0.001,
        "beta>0 in {beta_nonzero}/{iters} iterations"
    );
}
