//! Branch-minimized per-lane step primitives for lockstep (SIMT-style)
//! execution of Approximate Euclid.
//!
//! A real GPU runs one warp instruction across all lanes per cycle; the
//! host-side lockstep engine (`bulkgcd-bulk`'s `lockstep` module) mirrors
//! that by splitting every AEA iteration into
//!
//! 1. a **per-lane planning step** ([`plan_lane`]) that reads only O(1)
//!    words per lane (the paper's §IV head accesses: top two words of `X`
//!    and `Y`, plus the low two difference words that fix the shift) and
//!    classifies the lane into the overwhelmingly common fused update or
//!    one of the rare scalar paths, and
//! 2. a **shared vector pass** ([`fused_submul_rshift_columns`]) that
//!    applies `X ← rshift(X − α·Y)` to every fused lane at once, driven
//!    limb-row-innermost over column-major operand planes so the compiler
//!    can autovectorize across lanes.
//!
//! The vector pass is numerically identical to the scalar
//! `ops::fused_submul_rshift` single-pass loop: same difference limb
//! stream, same shift-emission, same carry discipline. Lanes that are
//! masked off (terminated, or planned onto a scalar path) participate with
//! `α = 0, rs = 0`, which makes the pass an exact identity on their
//! columns — no masking logic in the inner loop at all.

use crate::approx::{approx_top_words, ApproxCase};
use bulkgcd_bigint::{Limb, LIMB_BITS};

/// What one lockstep iteration does to one lane, decided from O(1) words.
///
/// The variants are ordered from common to vanishingly rare; everything but
/// [`LanePlan::Fused`] is executed by a per-lane scalar fixup outside the
/// vector pass (the lockstep analogue of warp divergence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePlan {
    /// The fused β = 0 update `X ← rshift(X − α·Y)` with an odd single-word
    /// `α` and an intra-word shift `1 ≤ rs < 32`: the vector-pass fast path.
    Fused {
        /// Odd single-word quotient digit.
        alpha: Limb,
        /// Trailing-zero count of the difference (bits stripped).
        rs: u32,
    },
    /// β = 0 but the difference has ≥ 32 trailing zero bits (or is zero):
    /// the scalar two-pass fallback, exactly like `fused_submul_rshift`'s.
    DeepShift {
        /// Odd single-word quotient digit.
        alpha: Limb,
    },
    /// Case 1 produced an exact quotient wider than one word; `X` and `Y`
    /// fit in 64 bits, so the lane finishes with plain 64-bit arithmetic.
    WideAlpha {
        /// The exact (odd-forced) quotient, up to 64 bits.
        alpha: u64,
    },
    /// The rare β > 0 divergent path: `X ← rshift(X − (α·D^β − 1)·Y)`.
    BetaPositive {
        /// Single-word quotient digit (β > 0 guarantees it fits).
        alpha: Limb,
        /// Word-shift exponent.
        beta: usize,
    },
}

impl LanePlan {
    /// True for the β > 0 divergent branch (the `ApproxBetaPositive` step
    /// kind); everything else is a β = 0 step.
    #[inline]
    pub fn is_beta_positive(&self) -> bool {
        matches!(self, LanePlan::BetaPositive { .. })
    }
}

/// Force a β = 0 quotient odd so the difference `X − α·Y` is even,
/// branchlessly: `α − 1` when even, unchanged when odd.
#[inline(always)]
pub fn force_odd(alpha: u64) -> u64 {
    alpha - (1 - (alpha & 1))
}

/// Low 64 bits of `X − α·Y` computed exactly as the scalar
/// `fused_submul_rshift` low-2 probe: `x_lo`/`y_lo` pack limbs 0 and 1
/// (little-endian; the high half must be 0 when the operand has fewer than
/// two limbs), and a single-limb `X` contributes only its limb 0 — the
/// same `0..2.min(lx)` loop bound as the scalar code.
#[inline(always)]
pub fn low_diff64(x_lo: u64, y_lo: u64, lx: usize, alpha: Limb) -> u64 {
    let x0 = x_lo as Limb;
    let p0 = alpha as u64 * (y_lo as Limb) as u64;
    let d0 = x0.wrapping_sub(p0 as Limb);
    let carry = (p0 >> LIMB_BITS) + (x0 < p0 as Limb) as u64;
    let mut d1: Limb = 0;
    if lx >= 2 {
        let x1 = (x_lo >> LIMB_BITS) as Limb;
        let p1 = alpha as u64 * (y_lo >> LIMB_BITS) + carry;
        d1 = x1.wrapping_sub(p1 as Limb);
    }
    (d1 as u64) << LIMB_BITS | d0 as u64
}

/// Plan one AEA iteration for one lane from its O(1) head words.
///
/// `x_top`/`y_top` are the operands' top-two-word values (whole value when
/// the operand spans ≤ 2 limbs — see
/// [`approx_top_words`](crate::approx::approx_top_words)); `x_lo`/`y_lo`
/// pack limbs 0 and 1 (high half 0 when shorter). Requires `X ≥ Y > 0`.
///
/// Returns the plan plus the `(α, β, case)` the iteration would report to a
/// probe — with α already forced odd on the β = 0 paths, matching
/// `approximate_euclid_loop` exactly.
pub fn plan_lane(
    x_top: u64,
    x_lo: u64,
    lx: usize,
    y_top: u64,
    y_lo: u64,
    ly: usize,
) -> (LanePlan, u64, usize, ApproxCase) {
    let a = approx_top_words(x_top, lx, y_top, ly);
    // analyze: allow(cf-branch, reason = "beta > 0 is the paper's rare divergent case; the lane leaves the vector pass by design")
    if a.beta > 0 {
        // β > 0 guarantees α fits one word (§III).
        // analyze: allow(cf-early-return, reason = "divergent-lane exit paired with the beta > 0 branch above")
        return (
            LanePlan::BetaPositive {
                alpha: a.alpha as Limb,
                beta: a.beta,
            },
            a.alpha,
            a.beta,
            a.case,
        );
    }
    let alpha = force_odd(a.alpha);
    // analyze: allow(cf-branch, reason = "WideAlpha: a two-word quotient needs the 64-bit scalar finish; divergent by design")
    if alpha > Limb::MAX as u64 {
        // Case 1 can produce a two-word exact quotient; X fits in 64 bits.
        // analyze: allow(cf-early-return, reason = "divergent-lane exit paired with the WideAlpha branch above")
        return (LanePlan::WideAlpha { alpha }, alpha, 0, a.case);
    }
    let alpha = alpha as Limb;
    let low = low_diff64(x_lo, y_lo, lx, alpha);
    // analyze: allow(cf-branch, reason = "DeepShift classification: a zero low difference forces the scalar two-pass path")
    let plan = if low == 0 {
        LanePlan::DeepShift { alpha }
    } else {
        let rs = low.trailing_zeros();
        // analyze: allow(cf-branch, reason = "DeepShift classification: a full-word shift leaves the fused path")
        if rs >= LIMB_BITS {
            LanePlan::DeepShift { alpha }
        } else {
            LanePlan::Fused { alpha, rs }
        }
    };
    (plan, alpha as u64, 0, a.case)
}

/// One lockstep fused update `X ← rshift(X − α·Y)` over a warp's
/// column-major operand planes.
///
/// Layout: planes `u` and `v` each hold `rows_cap × w` limbs with limb `k`
/// of lane `t` at index `k·w + t` — limb `k` of all `w` lanes is
/// contiguous, the paper's Fig. 3 column-wise arrangement. Which plane
/// holds a lane's `X` is selected by `sel[t]`: 0 when `X` lives in plane
/// `u` ("buffer A"), all-ones when in plane `v` — the branchless analogue
/// of [`GcdPair`](crate::GcdPair)'s pointer swap.
///
/// Per lane, `alpha[t]` is the odd multiplier and `rs[t] ∈ 0..32` the
/// shift. A lane with `alpha = 0, rs = 0` is an exact identity (its
/// difference stream is its own `X` stream and the shift is 0), which is
/// how terminated and divergent lanes are masked without any conditional
/// in the inner loops.
///
/// `rows` is the limb-row count to process: the maximum `lX` over the
/// active fused lanes. Shorter lanes are handled by their high-zero
/// padding (difference limbs beyond `lX` are zero, so the emitted limbs
/// are too); each lane's result therefore lands exactly where the scalar
/// `fused_submul_rshift` would put it, with the padding invariant
/// preserved.
///
/// `carry`, `prev` and `dcur` are caller-provided scratch rows of `w`
/// elements each (reused across iterations; the engine allocates nothing
/// in its steady state).
///
/// Requirements per active lane (the planner guarantees them): `α` odd,
/// `α·Y ≤ X`, `1 ≤ rs < 32`, and `rs` is the trailing-zero count of
/// `X − α·Y`.
#[allow(clippy::too_many_arguments)]
pub fn fused_submul_rshift_columns(
    u: &mut [Limb],
    v: &mut [Limb],
    w: usize,
    rows: usize,
    sel: &[Limb],
    alpha: &[Limb],
    rs: &[u32],
    carry: &mut [u64],
    prev: &mut [Limb],
    dcur: &mut [Limb],
) {
    fused_submul_rshift_columns_prefix(u, v, w, w, rows, sel, alpha, rs, carry, prev, dcur);
}

/// [`fused_submul_rshift_columns`] over a **dense column prefix**: process
/// only columns `0..lanes` of planes whose row stride stays `w`.
///
/// This is the warp-compaction entry point: after survivors of a ragged
/// warp are repacked into a dense prefix (or the resident width shrinks as
/// lanes terminate without replacement), the vector pass only touches the
/// live columns instead of dragging `w − lanes` identity lanes through
/// every row. With `lanes == w` it is exactly the full-width pass.
#[allow(clippy::too_many_arguments)]
pub fn fused_submul_rshift_columns_prefix(
    u: &mut [Limb],
    v: &mut [Limb],
    w: usize,
    lanes: usize,
    rows: usize,
    sel: &[Limb],
    alpha: &[Limb],
    rs: &[u32],
    carry: &mut [u64],
    prev: &mut [Limb],
    dcur: &mut [Limb],
) {
    assert!(
        lanes <= w,
        "column prefix wider than the plane: {lanes} > {w}"
    );
    assert!(rows == 0 || (u.len() >= rows * w && v.len() >= rows * w));
    assert!(sel.len() >= lanes && alpha.len() >= lanes && rs.len() >= lanes);
    assert!(carry.len() >= lanes && prev.len() >= lanes && dcur.len() >= lanes);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime AVX2 check; the kernel body
            // contains no intrinsics, the attribute only licenses the
            // compiler to autovectorize with AVX2 instructions.
            unsafe {
                columns_avx2(u, v, w, lanes, rows, sel, alpha, rs, carry, prev, dcur);
            }
            // analyze: allow(cf-early-return, reason = "ISA dispatch: uniform across all lanes, decided before any operand word is read")
            return;
        }
    }
    columns_kernel(u, v, w, lanes, rows, sel, alpha, rs, carry, prev, dcur);
}

/// Copy lane column `src` onto lane column `dst` across **both** operand
/// planes (`rows` limb rows, row stride `w`) — the plane half of a warp
/// compaction: together with the per-lane registers (`sel`, `lX`, `lY`,
/// state) it relocates a surviving lane into the dense prefix. The copy is
/// a fixed strided sweep: which lanes move is decided by the public
/// termination structure, never by operand values.
pub fn copy_lane_columns(
    u: &mut [Limb],
    v: &mut [Limb],
    w: usize,
    rows: usize,
    src: usize,
    dst: usize,
) {
    assert!(src < w && dst < w, "lane out of range: {src}/{dst} vs {w}");
    assert!(rows == 0 || (u.len() >= rows * w && v.len() >= rows * w));
    for k in 0..rows {
        let base = k * w;
        u[base + dst] = u[base + src];
        v[base + dst] = v[base + src];
    }
}

/// Zero lane column `t` across both operand planes (`rows` limb rows, row
/// stride `w`): clears a dead column before a fresh pair is refilled into
/// it, restoring the high-zero padding invariant the vector pass relies on.
pub fn zero_lane_columns(u: &mut [Limb], v: &mut [Limb], w: usize, rows: usize, t: usize) {
    assert!(t < w, "lane out of range: {t} vs {w}");
    for k in 0..rows {
        let base = k * w;
        u[base + t] = 0;
        v[base + t] = 0;
    }
}

// SAFETY: callers must only invoke this when the CPU supports AVX2 (the
// dispatcher's `is_x86_feature_detected!` guard); beyond that the function
// is as safe as `columns_kernel` — the body holds no intrinsics and no raw
// pointers, the target-feature attribute merely licenses the compiler to
// autovectorize the inlined kernel with AVX2 instructions.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn columns_avx2(
    u: &mut [Limb],
    v: &mut [Limb],
    w: usize,
    lanes: usize,
    rows: usize,
    sel: &[Limb],
    alpha: &[Limb],
    rs: &[u32],
    carry: &mut [u64],
    prev: &mut [Limb],
    dcur: &mut [Limb],
) {
    columns_kernel(u, v, w, lanes, rows, sel, alpha, rs, carry, prev, dcur);
}

/// The portable kernel body; `inline(always)` so the AVX2 wrapper's
/// target-feature scope covers the loops it is asked to vectorize.
///
/// `w` is the plane row stride; `lanes ≤ w` the dense column prefix to
/// process (the warp's resident width after compaction).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn columns_kernel(
    u: &mut [Limb],
    v: &mut [Limb],
    w: usize,
    lanes: usize,
    rows: usize,
    sel: &[Limb],
    alpha: &[Limb],
    rs: &[u32],
    carry: &mut [u64],
    prev: &mut [Limb],
    dcur: &mut [Limb],
) {
    let sel = &sel[..lanes];
    let alpha = &alpha[..lanes];
    let rs = &rs[..lanes];
    let carry = &mut carry[..lanes];
    let mut prev = &mut prev[..lanes];
    let mut dcur = &mut dcur[..lanes];
    for c in carry.iter_mut() {
        *c = 0;
    }
    prev.fill(0);
    for k in 0..rows {
        let base = k * w;
        // Difference row k: d = x_k − (α·y_k + carry) with the combined
        // mul-high + borrow carry chain of the scalar fused pass. Lanes
        // are independent — one row, `lanes` lanes, vectorizable.
        {
            let urow = &u[base..base + lanes];
            let vrow = &v[base..base + lanes];
            for t in 0..lanes {
                let m = sel[t];
                let uw = urow[t];
                let vw = vrow[t];
                let xk = (uw & !m) | (vw & m);
                let yk = (uw & m) | (vw & !m);
                let p = alpha[t] as u64 * yk as u64 + carry[t];
                let pl = p as Limb;
                dcur[t] = xk.wrapping_sub(pl);
                carry[t] = (p >> LIMB_BITS) + (xk < pl) as u64;
            }
        }
        // Emit output row k−1 now that its high bits (row k's difference)
        // are known: out = (prev | d·2³²) >> rs, the branchless form of the
        // scalar `(prev >> rs) | (d << (32 − rs))` that is also exact at
        // rs = 0 (identity lanes).
        if k > 0 {
            emit_row(u, v, w, lanes, k - 1, sel, rs, prev, dcur);
        }
        core::mem::swap(&mut prev, &mut dcur);
    }
    // Top row: no difference limb above it, so d = 0 and out = prev >> rs —
    // the scalar loop's final `x[xl−1] = prev >> rs` write.
    if rows > 0 {
        dcur.fill(0);
        emit_row(u, v, w, lanes, rows - 1, sel, rs, prev, dcur);
    }
}

/// Emit one shifted output row into the selected `X` plane of each lane,
/// leaving the `Y` plane untouched, with branchless blend stores.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn emit_row(
    u: &mut [Limb],
    v: &mut [Limb],
    w: usize,
    lanes: usize,
    row: usize,
    sel: &[Limb],
    rs: &[u32],
    prev: &[Limb],
    d: &[Limb],
) {
    let base = row * w;
    let urow = &mut u[base..base + lanes];
    let vrow = &mut v[base..base + lanes];
    for t in 0..lanes {
        let m = sel[t];
        let out = (((prev[t] as u64) | ((d[t] as u64) << LIMB_BITS)) >> rs[t]) as Limb;
        let uw = urow[t];
        let vw = vrow[t];
        urow[t] = (out & !m) | (uw & m);
        vrow[t] = (out & m) | (vw & !m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::ops;

    fn pack_lo(x: &[Limb]) -> u64 {
        let lo = *x.first().unwrap_or(&0) as u64;
        let hi = *x.get(1).unwrap_or(&0) as u64;
        hi << 32 | lo
    }

    fn top2(x: &[Limb], l: usize) -> u64 {
        match l {
            0 => 0,
            1 => x[0] as u64,
            _ => ((x[l - 1] as u64) << 32) | x[l - 2] as u64,
        }
    }

    #[test]
    fn force_odd_matches_branchy_form() {
        for a in [1u64, 2, 3, 4, u32::MAX as u64 + 1, u64::MAX - 1, u64::MAX] {
            let expect = if a & 1 == 0 { a - 1 } else { a };
            assert_eq!(force_odd(a), expect, "alpha={a}");
        }
    }

    #[test]
    fn low_diff_matches_scalar_probe() {
        // Mirror the scalar low-2 loop on explicit limb vectors.
        let cases: &[(&[Limb], &[Limb], Limb)] = &[
            (&[7, 9, 3], &[5, 1], 3),
            (&[0, 0, 1], &[1], 1),
            (&[10], &[3], 3),
            (&[0x8000_0000, 1], &[1, 1], 1),
        ];
        for &(x, y, alpha) in cases {
            let lx = x.len();
            let mut carry = 0u64;
            let mut d0 = 0;
            let mut d1 = 0;
            for (i, &xi) in x.iter().enumerate().take(2.min(lx)) {
                let yi = *y.get(i).unwrap_or(&0);
                let p = alpha as u64 * yi as u64 + carry;
                let (d, bo) = bulkgcd_bigint::limb::sbb(xi, p as Limb, 0);
                if i == 0 {
                    d0 = d;
                } else {
                    d1 = d;
                }
                carry = (p >> 32) + bo as u64;
            }
            let expect = (d1 as u64) << 32 | d0 as u64;
            assert_eq!(low_diff64(pack_lo(x), pack_lo(y), lx, alpha), expect);
        }
    }

    #[test]
    fn plan_classifies_and_matches_approx() {
        // X = 3 limbs, Y = 1 limb: Case 2, fused path expected.
        let x: &[Limb] = &[1, 2, 9];
        let y: &[Limb] = &[4];
        let (plan, alpha, beta, _) =
            plan_lane(top2(x, 3), pack_lo(x), 3, top2(y, 1), pack_lo(y), 1);
        assert_eq!(beta, 2, "Case 2-A has beta = lx - 1");
        assert!(plan.is_beta_positive());
        assert_eq!(alpha, 9 / 4);

        // Equal operands: Case 4-C, difference zero => DeepShift.
        let n: &[Limb] = &[5, 6, 7];
        let (plan, alpha, beta, _) =
            plan_lane(top2(n, 3), pack_lo(n), 3, top2(n, 3), pack_lo(n), 3);
        assert_eq!((alpha, beta), (1, 0));
        assert_eq!(plan, LanePlan::DeepShift { alpha: 1 });
    }

    /// The column kernel against the scalar fused pass, lane by lane,
    /// including identity (masked) lanes and ragged lengths.
    #[test]
    fn column_kernel_matches_scalar_fused_pass() {
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let w = 8usize;
        let stride = 6usize;
        for round in 0..200 {
            // Build w lanes: random X >= alpha*Y with normalized lengths.
            let mut xs: Vec<Vec<Limb>> = Vec::new();
            let mut ys: Vec<Vec<Limb>> = Vec::new();
            let mut alphas = vec![0 as Limb; w];
            let mut rss = vec![0u32; w];
            let mut sels = vec![0 as Limb; w];
            let mut u = vec![0 as Limb; stride * w];
            let mut v = vec![0 as Limb; stride * w];
            let mut rows = 0usize;
            for t in 0..w {
                let lx = 1 + (next() as usize % stride);
                let ly = 1 + (next() as usize % lx);
                let mut x: Vec<Limb> = (0..lx).map(|_| next() as Limb).collect();
                let mut y: Vec<Limb> = (0..ly).map(|_| next() as Limb).collect();
                // Keep X comfortably above alpha*Y: small alpha, big X top,
                // small Y top (alpha*(y_top+1) < 8*2^24 << 2^31 <= x_top).
                x[lx - 1] |= 0x8000_0000;
                y[ly - 1] >>= 8;
                if y[ly - 1] == 0 {
                    y[ly - 1] = 1;
                }
                let alpha = ((next() as Limb) & 0x7) | 1;
                let masked = round % 3 == 0 && t % 2 == 0;
                let lo = low_diff64(pack_lo(&x), pack_lo(&y), lx, alpha);
                let rs = if lo == 0 { 32 } else { lo.trailing_zeros() };
                if !masked && (1..32).contains(&rs) {
                    alphas[t] = alpha;
                    rss[t] = rs;
                    rows = rows.max(lx);
                }
                let sel = if next() & 1 == 0 { 0 } else { Limb::MAX };
                sels[t] = sel;
                let (xp, yp) = if sel == 0 {
                    (&mut u, &mut v)
                } else {
                    (&mut v, &mut u)
                };
                for (k, &l) in x.iter().enumerate() {
                    xp[k * w + t] = l;
                }
                for (k, &l) in y.iter().enumerate() {
                    yp[k * w + t] = l;
                }
                xs.push(x);
                ys.push(y);
            }
            let (mut carry, mut prev, mut dcur) = (vec![0u64; w], vec![0; w], vec![0; w]);
            fused_submul_rshift_columns(
                &mut u, &mut v, w, rows, &sels, &alphas, &rss, &mut carry, &mut prev, &mut dcur,
            );
            for t in 0..w {
                let xp = if sels[t] == 0 { &u } else { &v };
                let yp = if sels[t] == 0 { &v } else { &u };
                let got_x: Vec<Limb> = (0..stride).map(|k| xp[k * w + t]).collect();
                let got_y: Vec<Limb> = (0..stride).map(|k| yp[k * w + t]).collect();
                let mut expect_x = xs[t].clone();
                if alphas[t] != 0 {
                    let yl = ys[t].len();
                    let (newl, r) =
                        ops::fused_submul_rshift(&mut expect_x, &ys[t][..yl], alphas[t]);
                    assert_eq!(r as u32, rss[t]);
                    expect_x.truncate(newl);
                }
                expect_x.resize(stride, 0);
                assert_eq!(got_x, expect_x, "round {round} lane {t} X");
                let mut expect_y = ys[t].clone();
                expect_y.resize(stride, 0);
                assert_eq!(got_y, expect_y, "round {round} lane {t} Y untouched");
            }
        }
    }
}
