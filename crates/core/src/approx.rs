//! The paper's `approx(X, Y)` function (§III).
//!
//! Computes a pair `(α, β)` such that `α·D^β ≤ Q = X div Y` is a good
//! approximation of the quotient, using at most one 64-bit division over the
//! most significant one or two words of each operand. `D = 2^32` here
//! (the paper sets d = 32 for real devices, §V).
//!
//! Case structure exactly as the paper's listing:
//!
//! * **Case 1** — `lX ≤ 2`: exact 64-bit quotient, `β = 0`.
//! * **Case 2** — `lY = 1`: 2-A if `x1 ≥ y1`, else 2-B.
//! * **Case 3** — `lY = 2`: 3-A if `x1x2 ≥ y1y2`, else 3-B.
//! * **Case 4** — both longer: 4-A if `x1x2 > y1y2`, 4-B if `lX > lY`,
//!   otherwise 4-C (`α·D^β = 1`).

use bulkgcd_bigint::{Limb, LIMB_BITS};

/// Which case of the paper's `approx` listing fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ApproxCase {
    Case1,
    Case2A,
    Case2B,
    Case3A,
    Case3B,
    Case4A,
    Case4B,
    Case4C,
}

impl ApproxCase {
    /// Number of distinct cases (size of the Table IV histogram).
    pub const COUNT: usize = 8;

    /// The paper's label for the case (e.g. `"4-A"`).
    pub fn label(&self) -> &'static str {
        match self {
            ApproxCase::Case1 => "1",
            ApproxCase::Case2A => "2-A",
            ApproxCase::Case2B => "2-B",
            ApproxCase::Case3A => "3-A",
            ApproxCase::Case3B => "3-B",
            ApproxCase::Case4A => "4-A",
            ApproxCase::Case4B => "4-B",
            ApproxCase::Case4C => "4-C",
        }
    }

    /// All cases in declaration order (histogram indexing).
    pub const ALL: [ApproxCase; Self::COUNT] = [
        ApproxCase::Case1,
        ApproxCase::Case2A,
        ApproxCase::Case2B,
        ApproxCase::Case3A,
        ApproxCase::Case3B,
        ApproxCase::Case4A,
        ApproxCase::Case4B,
        ApproxCase::Case4C,
    ];
}

/// Result of [`approx`]: `α·D^β` approximates `X div Y` from below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Approx {
    /// The quotient digit. Fits a single word except in Case 1, where it is
    /// the exact (up to 64-bit) quotient.
    pub alpha: u64,
    /// The word-shift exponent. Whenever `β > 0`, `α < D` is guaranteed.
    pub beta: usize,
    /// Which case produced the value.
    pub case: ApproxCase,
}

#[inline]
fn two_words(v: &[Limb], l: usize) -> u64 {
    // value of the top two words: v[l-1] * D + v[l-2]
    debug_assert!(l >= 2);
    ((v[l - 1] as u64) << LIMB_BITS) | v[l - 2] as u64
}

#[inline]
fn full_value_le2(v: &[Limb], l: usize) -> u64 {
    match l {
        0 => 0,
        1 => v[0] as u64,
        _ => two_words(v, l),
    }
}

/// The paper's `approx(X, Y)`.
///
/// `x`/`y` are little-endian word slices with normalized lengths `lx`/`ly`.
/// Requires `X ≥ Y > 0`. Only the top two words of each operand and the two
/// lengths are inspected (at most four memory words — §IV).
///
/// ```
/// use bulkgcd_bigint::Nat;
/// use bulkgcd_core::{approx, ApproxCase};
///
/// // The paper's §III example at d = 32: X spans 4 words, Y spans 3, so
/// // Case 4 applies and alpha * D^beta lower-bounds the true quotient.
/// let x = Nat::from_u128(0xdddd_0000_1111_2222_3333_4444_5555_6666);
/// let y = Nat::from_u128(0x7777_8888_9999_aaaa_bbbb);
/// let a = approx(x.limbs(), x.len(), y.limbs(), y.len());
/// assert_eq!(a.case, ApproxCase::Case4A);
/// let approx_q = Nat::from_u64(a.alpha).shl(32 * a.beta as u64);
/// assert!(approx_q <= x.div(&y));
/// ```
pub fn approx(x: &[Limb], lx: usize, y: &[Limb], ly: usize) -> Approx {
    debug_assert!(lx >= ly && ly > 0);
    let x_top = if lx >= 2 {
        two_words(x, lx)
    } else {
        full_value_le2(x, lx)
    };
    let y_top = if ly >= 2 {
        two_words(y, ly)
    } else {
        full_value_le2(y, ly)
    };
    approx_top_words(x_top, lx, y_top, ly)
}

/// [`approx`] operating on the already-gathered top words — the form the
/// lockstep engine uses, where operands live in column-major planes and the
/// top two words of each lane are fetched with strided reads.
///
/// `x_top` is the value of `X`'s top two words (`x1·D + x2`), or the whole
/// value when `lx ≤ 2`; `y_top` likewise. The case analysis and every
/// quotient are identical to the slice form — `approx` itself delegates
/// here, so the two can never drift apart.
pub fn approx_top_words(x_top: u64, lx: usize, y_top: u64, ly: usize) -> Approx {
    debug_assert!(lx >= ly && ly > 0);
    // Case 1: X fits in 64 bits — exact quotient.
    if lx <= 2 {
        return Approx {
            alpha: x_top / y_top,
            beta: 0,
            case: ApproxCase::Case1,
        };
    }
    let x12 = x_top;
    let x1 = x12 >> LIMB_BITS;
    if ly == 1 {
        let y1 = y_top;
        return if x1 >= y1 {
            Approx {
                alpha: x1 / y1,
                beta: lx - 1,
                case: ApproxCase::Case2A,
            }
        } else {
            Approx {
                alpha: x12 / y1,
                beta: lx - 2,
                case: ApproxCase::Case2B,
            }
        };
    }
    let y12 = y_top;
    let y1 = y12 >> LIMB_BITS;
    if ly == 2 {
        return if x12 >= y12 {
            Approx {
                alpha: x12 / y12,
                beta: lx - 2,
                case: ApproxCase::Case3A,
            }
        } else {
            Approx {
                alpha: x12 / (y1 + 1),
                beta: lx - 3,
                case: ApproxCase::Case3B,
            }
        };
    }
    // Case 4: both operands longer than two words.
    if x12 > y12 {
        Approx {
            alpha: x12 / (y12 + 1),
            beta: lx - ly,
            case: ApproxCase::Case4A,
        }
    } else if lx > ly {
        Approx {
            alpha: x12 / (y1 + 1),
            beta: lx - ly - 1,
            case: ApproxCase::Case4B,
        }
    } else {
        Approx {
            alpha: 1,
            beta: 0,
            case: ApproxCase::Case4C,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::Nat;

    fn ap(x: u128, y: u128) -> Approx {
        let xn = Nat::from_u128(x);
        let yn = Nat::from_u128(y);
        approx(xn.limbs(), xn.len(), yn.limbs(), yn.len())
    }

    /// Check the paper's invariant: 1 <= alpha * D^beta <= X div Y
    /// (alpha may be 0 only in Case 1 when X < Y never happens; X >= Y
    /// implies alpha >= 1 there too).
    fn check_bound(x: u128, y: u128) {
        let a = ap(x, y);
        let approx_q = (a.alpha as u128) << (32 * a.beta as u32);
        let q = x / y;
        assert!(approx_q >= 1, "x={x:#x} y={y:#x} case={:?}", a.case);
        assert!(
            approx_q <= q,
            "x={x:#x} y={y:#x} case={:?} approx={approx_q:#x} q={q:#x}",
            a.case
        );
    }

    #[test]
    fn case1_exact() {
        let a = ap(223, 45);
        assert_eq!(a.case, ApproxCase::Case1);
        assert_eq!((a.alpha, a.beta), (4, 0));
    }

    #[test]
    fn case2a() {
        // X: 3 words with top word >= one-word Y.
        let x = (9u128 << 64) | 1234;
        let y = 4u128;
        let a = ap(x, y);
        assert_eq!(a.case, ApproxCase::Case2A);
        assert_eq!(a.alpha, 9 / 4);
        assert_eq!(a.beta, 2);
        check_bound(x, y);
    }

    #[test]
    fn case2b() {
        // top word of X smaller than Y's single word.
        let x = (4u128 << 64) | (0xdu128 << 32) | 2;
        let y = 12u128;
        let a = ap(x, y);
        assert_eq!(a.case, ApproxCase::Case2B);
        assert_eq!(a.alpha, ((4u64 << 32) | 0xd) / 12);
        assert_eq!(a.beta, 1);
        check_bound(x, y);
    }

    #[test]
    fn case3a_and_3b() {
        // ly == 2.
        let y = (3u128 << 32) | 7;
        let x_big = (9u128 << 64) | (5u128 << 32) | 1; // x12 = 9D+5 >= y12
        let a = ap(x_big, y);
        assert_eq!(a.case, ApproxCase::Case3A);
        check_bound(x_big, y);

        let x_small = (2u128 << 64) | (5u128 << 32) | 1; // x12 = 2D+5 < y12
        let a = ap(x_small, y);
        assert_eq!(a.case, ApproxCase::Case3B);
        assert_eq!(a.beta, 0);
        check_bound(x_small, y);
    }

    #[test]
    fn case4a() {
        let x = (0xdu128 << 96) | (4u128 << 64) | 3;
        let y = (4u128 << 64) | (0xdu128 << 32) | 2;
        let a = ap(x, y);
        assert_eq!(a.case, ApproxCase::Case4A);
        assert_eq!(a.beta, 1);
        check_bound(x, y);
    }

    #[test]
    fn case4b() {
        // x12 <= y12 but lx > ly.
        let x = (4u128 << 96) | (0xdu128 << 64) | 3;
        let y = (0xfu128 << 64) | (0xau128 << 32);
        let a = ap(x, y);
        assert_eq!(a.case, ApproxCase::Case4B);
        assert_eq!(a.beta, 0);
        check_bound(x, y);
    }

    #[test]
    fn case4c_near_equal() {
        let x = (7u128 << 64) | (9u128 << 32) | 5;
        let y = (7u128 << 64) | (9u128 << 32) | 3;
        let a = ap(x, y);
        assert_eq!(a.case, ApproxCase::Case4C);
        assert_eq!((a.alpha, a.beta), (1, 0));
        check_bound(x, y);
    }

    #[test]
    fn bound_holds_exhaustively_on_pseudorandom_pairs() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5000 {
            let x = ((next() as u128) << 64 | next() as u128) >> (next() % 96);
            let y = ((next() as u128) << 64 | next() as u128) >> (next() % 96);
            if x == 0 || y == 0 {
                continue;
            }
            let (x, y) = if x >= y { (x, y) } else { (y, x) };
            check_bound(x, y);
        }
    }

    /// Constructed d = 32 operands hitting every case, with the bound
    /// checked by multiword arithmetic (not just u128).
    #[test]
    fn every_case_reachable_at_d32() {
        use bulkgcd_bigint::Nat;
        let limbs = |v: &[u32]| Nat::from_limbs(v); // little-endian
                                                    // (X limbs, Y limbs, expected case), most significant last.
        let cases: Vec<(Vec<u32>, Vec<u32>, ApproxCase)> = vec![
            // Case 1: lX <= 2.
            (vec![5, 9], vec![3], ApproxCase::Case1),
            // Case 2-A: lY = 1, x1 >= y1.
            (vec![1, 2, 9], vec![4], ApproxCase::Case2A),
            // Case 2-B: lY = 1, x1 < y1.
            (vec![1, 2, 3], vec![9], ApproxCase::Case2B),
            // Case 3-A: lY = 2, top-two(X) >= top-two(Y).
            (vec![1, 5, 9], vec![7, 3], ApproxCase::Case3A),
            // Case 3-B: lY = 2, top-two(X) < top-two(Y).
            (vec![1, 5, 2], vec![7, 9], ApproxCase::Case3B),
            // Case 4-A: both > 2 words, x1x2 > y1y2.
            (vec![1, 2, 9, 9], vec![3, 4, 5], ApproxCase::Case4A),
            // Case 4-B: x1x2 <= y1y2 but lX > lY.
            (vec![1, 2, 3, 4], vec![5, 6, 7], ApproxCase::Case4B),
            // Case 4-C: equal lengths, equal top-two words.
            (vec![9, 8, 7, 6], vec![1, 8, 7, 6], ApproxCase::Case4C),
        ];
        for (xl, yl, expect) in cases {
            let x = limbs(&xl);
            let y = limbs(&yl);
            assert!(x >= y, "construction must satisfy X >= Y: {expect:?}");
            let a = approx(x.limbs(), x.len(), y.limbs(), y.len());
            assert_eq!(a.case, expect, "x={xl:?} y={yl:?}");
            assert!(a.alpha >= 1);
            // alpha * D^beta <= X div Y, checked in multiword arithmetic.
            let approx_q = Nat::from_u64(a.alpha).shl(32 * a.beta as u64);
            let q = x.div(&y);
            assert!(approx_q <= q, "{expect:?}: approx {approx_q:?} > q {q:?}");
        }
    }

    #[test]
    fn labels_are_papers() {
        assert_eq!(ApproxCase::Case4A.label(), "4-A");
        assert_eq!(ApproxCase::Case1.label(), "1");
        assert_eq!(ApproxCase::ALL.len(), ApproxCase::COUNT);
    }
}
