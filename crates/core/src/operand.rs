//! The multiword operand pair of paper Fig. 1.
//!
//! Two s-bit numbers `X` and `Y` live in fixed pre-allocated arrays of
//! `s/d` words; registers hold the word lengths `lX`, `lY`. `swap(X, Y)` is
//! a pointer exchange, never a copy. All five Euclidean variants mutate a
//! [`GcdPair`] in place, which is also what makes the memory-access
//! accounting of §IV meaningful.

use bulkgcd_bigint::{ops, Limb, Nat, LIMB_BITS};

/// A pair of multiword operands in fixed buffers, with `X >= Y` maintained
/// by the algorithms between iterations.
///
/// ```
/// use bulkgcd_bigint::Nat;
/// use bulkgcd_core::GcdPair;
///
/// // The workspace is reusable across pairs (bulk execution reloads it).
/// let mut pair = GcdPair::for_bits(1024);
/// pair.load(&Nat::from_u64(768_955), &Nat::from_u64(1_043_915));
/// assert_eq!(pair.x_nat(), Nat::from_u64(1_043_915)); // larger value in X
/// assert_eq!(pair.lx(), 1);
/// pair.swap(); // pointer exchange, no copying
/// assert_eq!(pair.y_nat(), Nat::from_u64(1_043_915));
/// ```
#[derive(Clone, Debug)]
pub struct GcdPair {
    x: Vec<Limb>,
    y: Vec<Limb>,
    lx: usize,
    ly: usize,
    /// Which physical buffer currently backs `X`: toggled by [`Self::swap`].
    /// Buffer identity matters to the UMM address traces — a pointer swap
    /// changes which global array a thread scans, which is one source of
    /// the "semi"-obliviousness of §VI.
    x_is_buffer_a: bool,
    /// Reusable workspace for the rare β > 0 update, so the steady-state
    /// bulk hot loop performs no heap allocation per pair.
    scratch: Vec<Limb>,
}

impl GcdPair {
    /// Allocate a pair able to hold operands of `capacity_limbs` words.
    pub fn with_capacity(capacity_limbs: usize) -> Self {
        GcdPair {
            x: vec![0; capacity_limbs],
            y: vec![0; capacity_limbs],
            lx: 0,
            ly: 0,
            x_is_buffer_a: true,
            scratch: Vec::new(),
        }
    }

    /// Allocate a pair for `bits`-bit operands.
    pub fn for_bits(bits: u64) -> Self {
        Self::with_capacity(bits.div_ceil(LIMB_BITS as u64) as usize)
    }

    /// Load two values, growing the buffers if needed and placing the larger
    /// value in `X`. The buffers are fully reused across calls (bulk
    /// execution reuses one workspace per thread).
    pub fn load(&mut self, a: &Nat, b: &Nat) {
        self.load_from_limbs(a.as_limbs(), b.as_limbs());
    }

    /// Load two values from raw little-endian limb slices, e.g. fixed-stride
    /// rows of a moduli arena. The slices may carry high zero padding (they
    /// are normalized here); nothing is allocated unless the operands exceed
    /// the current buffer capacity.
    pub fn load_from_limbs(&mut self, a: &[Limb], b: &[Limb]) {
        let la = ops::normalized_len(a);
        let lb = ops::normalized_len(b);
        let (hi, lhi, lo, llo) = if ops::cmp(&a[..la], &b[..lb]) == core::cmp::Ordering::Less {
            (b, lb, a, la)
        } else {
            (a, la, b, lb)
        };
        let need = lhi.max(1);
        if self.x.len() < need {
            // analyze: allow(za-alloc, reason = "operand buffers grow to the corpus stride once and are reused across loads; after warmup the resize is a no-op")
            self.x.resize(need, 0);
            self.y.resize(need, 0);
        }
        self.x.fill(0);
        self.y.fill(0);
        self.x[..lhi].copy_from_slice(&hi[..lhi]);
        self.y[..llo].copy_from_slice(&lo[..llo]);
        self.lx = lhi;
        self.ly = llo;
        self.x_is_buffer_a = true;
    }

    /// Construct directly from two values.
    pub fn new(a: &Nat, b: &Nat) -> Self {
        let mut p = Self::with_capacity(a.len().max(b.len()).max(1));
        p.load(a, b);
        p
    }

    /// Word length of `X` (the paper's `lX`); 0 when `X == 0`.
    #[inline]
    pub fn lx(&self) -> usize {
        self.lx
    }

    /// Word length of `Y` (the paper's `lY`); 0 when `Y == 0`.
    #[inline]
    pub fn ly(&self) -> usize {
        self.ly
    }

    /// The active words of `X`, least significant first.
    #[inline]
    pub fn x(&self) -> &[Limb] {
        &self.x[..self.lx]
    }

    /// The active words of `Y`, least significant first.
    #[inline]
    pub fn y(&self) -> &[Limb] {
        &self.y[..self.ly]
    }

    /// `X` as an owned `Nat`.
    pub fn x_nat(&self) -> Nat {
        Nat::from_limbs(self.x())
    }

    /// Non-allocating outcome path: copy the GCD (held in `X` once a full
    /// run drove `Y` to zero) into `dest`, zeroing the remainder of `dest`.
    /// Returns the number of significant limbs written.
    ///
    /// Panics if `dest` is shorter than the GCD.
    pub fn write_gcd_into(&self, dest: &mut [Limb]) -> usize {
        assert!(
            dest.len() >= self.lx,
            "write_gcd_into: destination holds {} limbs, gcd needs {}",
            dest.len(),
            self.lx
        );
        dest[..self.lx].copy_from_slice(self.x());
        dest[self.lx..].fill(0);
        self.lx
    }

    /// True when `X == 1` — after a full run, "the pair is coprime" —
    /// answerable from the length register and one word (no allocation).
    #[inline]
    pub fn gcd_is_one(&self) -> bool {
        self.lx == 1 && self.x[0] == 1
    }

    /// `Y` as an owned `Nat`.
    pub fn y_nat(&self) -> Nat {
        Nat::from_limbs(self.y())
    }

    /// Bit length of `X`.
    pub fn x_bits(&self) -> u64 {
        ops::bit_len(self.x())
    }

    /// Bit length of `Y`.
    pub fn y_bits(&self) -> u64 {
        ops::bit_len(self.y())
    }

    /// True when `Y == 0` (the loop-exit condition; equivalent to `lY == 0`,
    /// so it needs no memory access — §IV).
    #[inline]
    pub fn y_is_zero(&self) -> bool {
        self.ly == 0
    }

    /// True when `X` is odd (reads only the least significant word — §IV).
    #[inline]
    pub fn x_is_odd(&self) -> bool {
        self.lx > 0 && self.x[0] & 1 == 1
    }

    /// True when `Y` is odd.
    #[inline]
    pub fn y_is_odd(&self) -> bool {
        self.ly > 0 && self.y[0] & 1 == 1
    }

    /// The paper's `swap(X, Y)`: exchange the two buffer pointers and the
    /// two length registers. No element is copied.
    #[inline]
    pub fn swap(&mut self) {
        core::mem::swap(&mut self.x, &mut self.y);
        core::mem::swap(&mut self.lx, &mut self.ly);
        self.x_is_buffer_a = !self.x_is_buffer_a;
    }

    /// True when `X` currently lives in physical buffer A (the buffer it
    /// started in after [`Self::load`]); flipped by every [`Self::swap`].
    #[inline]
    pub fn x_in_buffer_a(&self) -> bool {
        self.x_is_buffer_a
    }

    /// Compare `X` and `Y`, first by word length, then word-by-word from the
    /// most significant end (the §IV comparison that touches O(1) words with
    /// high probability).
    pub fn x_cmp_y(&self) -> core::cmp::Ordering {
        match self.lx.cmp(&self.ly) {
            core::cmp::Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..self.lx).rev() {
            match self.x[i].cmp(&self.y[i]) {
                core::cmp::Ordering::Equal => {}
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }

    /// Restore `X >= Y` after an update; returns true if a swap happened.
    #[inline]
    pub fn ensure_x_ge_y(&mut self) -> bool {
        if self.x_cmp_y() == core::cmp::Ordering::Less {
            self.swap();
            true
        } else {
            false
        }
    }

    /// `X ← X / 2` (X must be even).
    pub fn x_halve(&mut self) {
        debug_assert!(!self.x_is_odd());
        self.lx = ops::shr_in_place(&mut self.x[..self.lx], 1);
    }

    /// `Y ← Y / 2` (Y must be even).
    pub fn y_halve(&mut self) {
        debug_assert!(!self.y_is_odd());
        self.ly = ops::shr_in_place(&mut self.y[..self.ly], 1);
    }

    /// `X ← (X − Y) / 2` (both odd, X ≥ Y). The Binary Euclid update.
    pub fn x_sub_y_halve(&mut self) {
        debug_assert!(self.x_is_odd() && self.y_is_odd());
        let borrow = ops::sub_assign(&mut self.x[..self.lx], &self.y[..self.ly]);
        debug_assert_eq!(borrow, 0, "requires X >= Y");
        self.lx = ops::shr_in_place(&mut self.x[..self.lx], 1);
    }

    /// `X ← rshift(X − Y)` (both odd, X ≥ Y). The Fast Binary update.
    /// Returns the number of bits stripped.
    pub fn x_sub_y_rshift(&mut self) -> u64 {
        let (lx, r) = ops::fused_submul_rshift(&mut self.x[..self.lx], &self.y[..self.ly], 1);
        self.lx = lx;
        r
    }

    /// `X ← rshift(X − α·Y)` for a single-word odd `α` (the Approximate
    /// Euclid β = 0 update, fused single pass per §IV).
    /// Returns the number of bits stripped.
    pub fn x_submul_rshift(&mut self, alpha: Limb) -> u64 {
        debug_assert!(
            alpha & 1 == 1,
            "alpha must be odd so the difference is even"
        );
        let (lx, r) = ops::fused_submul_rshift(&mut self.x[..self.lx], &self.y[..self.ly], alpha);
        self.lx = lx;
        r
    }

    /// `X ← rshift(X − Y·α·D^β + Y)` — the rare β > 0 update of Approximate
    /// Euclid. Implemented as `X − (α·D^β − 1)·Y` via scratch arithmetic;
    /// the paper charges it 4·s/d memory operations (§IV) and we count it
    /// that way in the probes regardless of the internal pass structure.
    pub fn x_submul_shifted_rshift(&mut self, alpha: Limb, beta: usize) -> u64 {
        debug_assert!(beta > 0);
        // t = α·Y << (32β), built in the reusable scratch buffer (the bulk
        // hot loop must not allocate per pair).
        let tn = self.ly + beta + 1;
        if self.scratch.len() < tn {
            // analyze: allow(za-alloc, reason = "reusable scratch grows to the operand stride once; after warmup the resize is a no-op")
            self.scratch.resize(tn, 0);
        }
        let t = &mut self.scratch[..tn];
        t.fill(0);
        let carry =
            bulkgcd_bigint::mul::mul_limb(&mut t[beta..beta + self.ly], &self.y[..self.ly], alpha);
        t[beta + self.ly] = carry;
        // t -= Y  (α·D^β ≥ 2 so t > Y)
        let borrow = ops::sub_assign(t, &self.y[..self.ly]);
        debug_assert_eq!(borrow, 0);
        let tn = ops::normalized_len(t);
        // X -= t
        let borrow = ops::sub_assign(&mut self.x[..self.lx], &t[..tn]);
        debug_assert_eq!(borrow, 0, "approx guarantees alpha*D^beta <= X div Y");
        let (lx, r) = ops::rshift_in_place(&mut self.x[..self.lx]);
        self.lx = lx;
        r
    }

    /// Overwrite `X` in place with a value that fits in the current `lX`
    /// words (used by the 64-bit tail of Approximate Euclid's Case 1).
    /// Leaves `Y` and the buffer parity untouched.
    pub fn set_x_u64(&mut self, v: u64) {
        debug_assert!(
            self.lx as u64 * 32 >= 64 - v.leading_zeros() as u64,
            "value must fit in the current lX words"
        );
        for i in 0..self.lx {
            self.x[i] = (v >> (32 * i as u64)) as Limb;
        }
        self.lx = ops::normalized_len(&self.x[..self.lx]);
    }

    /// `X ← X mod Y` via full multiword division (Original Euclid update).
    pub fn x_mod_y(&mut self) {
        let (_, r) = bulkgcd_bigint::div::div_rem_slices(&self.x[..self.lx], &self.y[..self.ly]);
        self.x[..self.lx].fill(0);
        self.x[..r.len()].copy_from_slice(&r);
        self.lx = r.len();
    }

    /// Full quotient `X div Y` as a `Nat` (Fast Euclid needs the exact value).
    pub fn x_div_y(&self) -> Nat {
        let (q, _) = bulkgcd_bigint::div::div_rem_slices(&self.x[..self.lx], &self.y[..self.ly]);
        Nat::from_limbs(&q)
    }

    /// `X ← rshift(X − Q·Y)` for a multiword odd `Q` (Fast Euclid update).
    /// Returns the bits stripped.
    pub fn x_submul_nat_rshift(&mut self, q: &Nat) -> u64 {
        debug_assert!(q.is_odd());
        let qy = self.y_nat().mul(q);
        debug_assert!(qy.len() <= self.lx);
        let borrow = ops::sub_assign(&mut self.x[..self.lx], qy.limbs());
        debug_assert_eq!(borrow, 0, "requires Q*Y <= X");
        let (lx, r) = ops::rshift_in_place(&mut self.x[..self.lx]);
        self.lx = lx;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u128, b: u128) -> GcdPair {
        GcdPair::new(&Nat::from_u128(a), &Nat::from_u128(b))
    }

    #[test]
    fn load_orders_operands() {
        let p = pair(5, 100);
        assert_eq!(p.x_nat(), Nat::from_u128(100));
        assert_eq!(p.y_nat(), Nat::from_u128(5));
        assert!(p.x_cmp_y() == core::cmp::Ordering::Greater);
    }

    #[test]
    fn swap_is_pointer_exchange() {
        let mut p = pair(100, 5);
        p.swap();
        assert_eq!(p.x_nat(), Nat::from_u128(5));
        assert_eq!(p.y_nat(), Nat::from_u128(100));
        assert_eq!(p.lx(), 1);
    }

    #[test]
    fn lengths_track_values() {
        let p = pair(1u128 << 100, 3);
        assert_eq!(p.lx(), 4);
        assert_eq!(p.ly(), 1);
        assert_eq!(p.x_bits(), 101);
        assert_eq!(p.y_bits(), 2);
    }

    #[test]
    fn halve_updates() {
        let mut p = pair(8, 3);
        p.x_halve();
        assert_eq!(p.x_nat(), Nat::from_u128(4));
    }

    #[test]
    fn sub_halve_matches_reference() {
        let mut p = pair(0b1111, 0b0101);
        p.x_sub_y_halve();
        assert_eq!(p.x_nat(), Nat::from_u128(5));
    }

    #[test]
    fn sub_rshift_strips_all_zeros() {
        // 23 - 7 = 16 -> rshift -> 1
        let mut p = pair(23, 7);
        let r = p.x_sub_y_rshift();
        assert_eq!(r, 4);
        assert_eq!(p.x_nat(), Nat::one());
    }

    #[test]
    fn submul_rshift_wide() {
        let a = (1u128 << 90) + 12345;
        let b = (1u128 << 40) + 1;
        let alpha = 0x1234_5677u32; // odd
        let mut p = pair(a, b);
        let expect = a - b * alpha as u128;
        let tz = expect.trailing_zeros() as u64;
        let r = p.x_submul_rshift(alpha);
        assert_eq!(r, tz);
        assert_eq!(p.x_nat().to_u128(), Some(expect >> tz));
    }

    #[test]
    fn submul_shifted_matches_u128() {
        // X - Y*alpha*D^beta + Y with beta = 1 (D = 2^32)
        let a = (1u128 << 110) + 999;
        let b = (1u128 << 40) + 5;
        let alpha = 6u32; // approx may hand an even alpha to the beta>0 path
        let beta = 1usize;
        let mut p = pair(a, b);
        let expect = a - b * ((alpha as u128) << 32) + b;
        let tz = expect.trailing_zeros() as u64;
        let r = p.x_submul_shifted_rshift(alpha, beta);
        assert_eq!(r, tz);
        assert_eq!(p.x_nat().to_u128(), Some(expect >> tz));
    }

    #[test]
    fn mod_y_matches_nat() {
        let a = 0xdead_beef_cafe_babe_1234u128;
        let b = 0xffff_fffb_u128;
        let mut p = pair(a, b);
        p.x_mod_y();
        assert_eq!(p.x_nat().to_u128(), Some(a % b));
    }

    #[test]
    fn workspace_reuse_clears_old_state() {
        let mut p = pair(u128::MAX, u128::MAX - 1);
        p.load(&Nat::from_u128(7), &Nat::from_u128(3));
        assert_eq!(p.x_nat(), Nat::from_u128(7));
        assert_eq!(p.y_nat(), Nat::from_u128(3));
        assert_eq!(p.lx(), 1);
    }

    #[test]
    fn equal_operands_compare_equal() {
        let p = pair(42, 42);
        assert_eq!(p.x_cmp_y(), core::cmp::Ordering::Equal);
    }
}
