//! Lehmer's GCD algorithm (Knuth TAOCP vol. 2, Algorithm 4.5.2 L) — an
//! *extension* beyond the paper's five variants.
//!
//! Lehmer is the classical way to avoid multiword divisions: simulate
//! several Euclid steps on the top words of `X` and `Y` (tracking the
//! cosequence `a, b, c, d`), then apply them all at once as two linear
//! combinations `(X, Y) ← (aX + bY, cX + dY)`. The paper's Approximate
//! Euclid can be read as a radically simplified one-step Lehmer: one
//! approximate quotient per iteration, no cosequence, one fused update.
//! Having the real thing in-tree lets the benches quantify what the
//! simplification costs (iterations) and buys (per-iteration work,
//! obliviousness on SIMT hardware — Lehmer's inner loop is wildly
//! divergent).

use crate::algorithms::{GcdOutcome, Termination};
use crate::operand::GcdPair;
use crate::probe::{Probe, Step, StepKind};
use bulkgcd_bigint::Nat;

/// Largest coefficient magnitude allowed in the cosequence; staying below
/// 2^31 keeps the multiword update inside single-limb multiplications.
const COEFF_LIMIT: i64 = 1 << 31;

/// Top (up to) 62 bits of `X`, and the bits of `Y` at the *same* shift
/// (so both values are comparable; `Y`'s may be 0 when it is much shorter).
/// 62 bits — not 64 — so that `x̂ + coefficient` never overflows an `i64`
/// in the cosequence loop.
fn top_bits(pair: &GcdPair) -> (u64, u64) {
    let shift = pair.x_bits().saturating_sub(62);
    let x = pair.x_nat().shr(shift).low_u64();
    let y = pair.y_nat().shr(shift).low_u64();
    (x, y)
}

/// `|u|·A − |v|·B` for a signed pair with opposite signs (or zero), where
/// the true value `u·A + v·B` is known to be non-negative.
fn linear(a: &Nat, b: &Nat, u: i64, v: i64) -> Nat {
    debug_assert!(u >= 0 || v >= 0);
    debug_assert!(u.unsigned_abs() < u32::MAX as u64 && v.unsigned_abs() < u32::MAX as u64);
    if u >= 0 && v >= 0 {
        return a.mul_u32(u as u32).add(&b.mul_u32(v as u32));
    }
    if u >= 0 {
        a.mul_u32(u as u32).sub(&b.mul_u32(v.unsigned_abs() as u32))
    } else {
        b.mul_u32(v as u32).sub(&a.mul_u32(u.unsigned_abs() as u32))
    }
}

/// Lehmer's GCD on a loaded pair (inputs may be any positive values;
/// unlike the paper's five variants it does not require odd inputs).
pub fn lehmer_euclid<P: Probe>(pair: &mut GcdPair, term: Termination, probe: &mut P) -> GcdOutcome {
    loop {
        if pair.y_is_zero() {
            return GcdOutcome::Gcd(pair.x_nat());
        }
        if let Termination::Early { threshold_bits } = term {
            if pair.y_bits() < threshold_bits {
                return GcdOutcome::Coprime;
            }
        }
        let (lx, ly) = (pair.lx(), pair.ly());

        if lx <= 2 {
            // Both operands fit in 64 bits: finish directly.
            let mut x = pair.x_nat().low_u64();
            let mut y = pair.y_nat().low_u64();
            while y != 0 {
                if let Termination::Early { threshold_bits } = term {
                    if (64 - y.leading_zeros() as u64) < threshold_bits {
                        return GcdOutcome::Coprime;
                    }
                }
                let r = x % y;
                x = y;
                y = r;
            }
            let g = Nat::from_u64(x);
            probe.step(
                pair,
                &Step {
                    kind: StepKind::OriginalMod,
                    lx_before: lx,
                    ly_before: ly,
                    alpha: 0,
                    beta: 0,
                    case: None,
                    rshift_bits: 0,
                    swapped: false,
                },
            );
            return GcdOutcome::Gcd(g);
        }

        let (mut xh, mut yh) = top_bits(pair);
        // Cosequence simulation on the top words (Knuth Algorithm L).
        let (mut a, mut b, mut c, mut d) = (1i64, 0i64, 0i64, 1i64);
        let mut steps = 0u32;
        loop {
            // Quotient is certain only if it agrees under both boundary
            // corrections (c/d have opposite signs, so these bracket).
            let denom1 = yh as i64 + c;
            let denom2 = yh as i64 + d;
            if denom1 == 0 || denom2 == 0 {
                break;
            }
            let q1 = (xh as i64 + a) / denom1;
            let q2 = (xh as i64 + b) / denom2;
            if q1 != q2 || q1 < 0 {
                break;
            }
            let q = q1;
            // Advance the cosequence; stop before coefficients overflow
            // the single-limb update.
            let na = c;
            let nc = a - q * c;
            let nb = d;
            let nd = b - q * d;
            if nc.abs() >= COEFF_LIMIT || nd.abs() >= COEFF_LIMIT {
                break;
            }
            a = na;
            c = nc;
            b = nb;
            d = nd;
            let t = xh as i64 - q * yh as i64;
            xh = yh;
            yh = t as u64;
            steps += 1;
            if yh == 0 {
                break;
            }
        }

        if b == 0 {
            // No certain quotient: one exact multiword division step.
            pair.x_mod_y();
            pair.swap();
            probe.step(
                pair,
                &Step {
                    kind: StepKind::OriginalMod,
                    lx_before: lx,
                    ly_before: ly,
                    alpha: 0,
                    beta: 0,
                    case: None,
                    rshift_bits: 0,
                    swapped: true,
                },
            );
            continue;
        }

        // Apply the accumulated steps: (X, Y) <- (aX + bY, cX + dY).
        let xn = pair.x_nat();
        let yn = pair.y_nat();
        let new_x = linear(&xn, &yn, a, b);
        let new_y = linear(&xn, &yn, c, d);
        // With certain quotients these are consecutive remainders, so the
        // batch always makes progress on Y.
        debug_assert!(new_y < yn);
        pair.load(&new_x, &new_y);
        let swapped = pair.ensure_x_ge_y();
        probe.step(
            pair,
            &Step {
                kind: StepKind::LehmerBatch,
                lx_before: lx,
                ly_before: ly,
                alpha: steps as u64,
                beta: 0,
                case: None,
                rshift_bits: 0,
                swapped,
            },
        );
    }
}

/// General-input Lehmer GCD.
///
/// ```
/// use bulkgcd_bigint::Nat;
/// use bulkgcd_core::lehmer_gcd_nat;
///
/// // The paper's running example, solved by the classical batching
/// // algorithm instead of the paper's approximation.
/// let g = lehmer_gcd_nat(&Nat::from_u64(1_043_915), &Nat::from_u64(768_955));
/// assert_eq!(g, Nat::from_u64(5));
/// ```
pub fn lehmer_gcd_nat(a: &Nat, b: &Nat) -> Nat {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let mut pair = GcdPair::new(a, b);
    match lehmer_euclid(&mut pair, Termination::Full, &mut crate::probe::NoProbe) {
        GcdOutcome::Gcd(g) => g,
        GcdOutcome::Coprime => unreachable!("Full termination never reports Coprime"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::StatsProbe;

    fn nat(v: u128) -> Nat {
        Nat::from_u128(v)
    }

    #[test]
    fn matches_reference_on_small_values() {
        let pairs = [
            (12u128, 18u128),
            (1_043_915, 768_955),
            (1, 1),
            (7, 0),
            (0, 7),
            (u64::MAX as u128, 3),
            ((1 << 89) - 1, (1 << 61) - 1),
        ];
        for (a, b) in pairs {
            assert_eq!(
                lehmer_gcd_nat(&nat(a), &nat(b)),
                nat(a).gcd_reference(&nat(b)),
                "({a}, {b})"
            );
        }
    }

    #[test]
    fn matches_reference_on_wide_values() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let a = ((next() as u128) << 64) | next() as u128;
            let b = ((next() as u128) << 64) | next() as u128;
            assert_eq!(
                lehmer_gcd_nat(&nat(a), &nat(b)),
                nat(a).gcd_reference(&nat(b)),
                "a={a:#x} b={b:#x}"
            );
        }
    }

    #[test]
    fn handles_even_inputs_without_preprocessing() {
        assert_eq!(lehmer_gcd_nat(&nat(96), &nat(72)), nat(24));
        assert_eq!(lehmer_gcd_nat(&nat(1 << 100), &nat(1 << 37)), nat(1 << 37));
    }

    #[test]
    fn early_termination_works() {
        let p = 0xffff_fffbu128;
        let n1 = nat(p * 4_294_967_311);
        let n2 = nat(p * 4_294_967_357);
        let mut pair = GcdPair::new(&n1, &n2);
        let out = lehmer_euclid(
            &mut pair,
            Termination::Early { threshold_bits: 32 },
            &mut crate::probe::NoProbe,
        );
        assert_eq!(out, GcdOutcome::Gcd(nat(p)));

        let c1 = nat(0xffff_ffff_ffff_fff1u128);
        let c2 = nat(0xffff_ffff_ffff_fcebu128);
        let mut pair = GcdPair::new(&c1, &c2);
        let out = lehmer_euclid(
            &mut pair,
            Termination::Early { threshold_bits: 32 },
            &mut crate::probe::NoProbe,
        );
        assert_eq!(out, GcdOutcome::Coprime);
    }

    #[test]
    fn far_fewer_multiword_passes_than_fast_binary() {
        // Lehmer batches ~dozens of Euclid steps per multiword pass.
        use crate::algorithms::{run, Algorithm};
        let a = nat((1 << 127) - 1);
        let b = nat((1 << 126) - 3);
        let mut pair = GcdPair::new(&a, &b);
        let mut sp = StatsProbe::default();
        lehmer_euclid(&mut pair, Termination::Full, &mut sp);
        let lehmer_passes = sp.stats.iterations;

        let mut pair = GcdPair::new(&a, &b);
        let mut sp = StatsProbe::default();
        run(Algorithm::FastBinary, &mut pair, Termination::Full, &mut sp);
        assert!(
            lehmer_passes * 4 < sp.stats.iterations,
            "lehmer {lehmer_passes} vs fast-binary {}",
            sp.stats.iterations
        );
    }
}
