//! Succinct rank/select bit vector.
//!
//! The corpus layer needs a map from *compacted* arena rows (what the scan
//! sees after quarantine drops hostile moduli) back to *raw* corpus
//! positions (what the operator's key list is numbered by). Storing that
//! map as a `Vec<usize>` costs 8 bytes per accepted modulus; at the
//! millions-of-keys scale the paper's attack targets (§I collects keys
//! "from the Web") that is pure overhead on top of the acceptance bitmap
//! the sanitizer already produces.
//!
//! [`RankSelect`] stores the acceptance bitmap itself — one bit per raw
//! input — plus ~3% of rank/select directory on top, and answers both
//! directions in O(1):
//!
//! * [`rank1(i)`](RankSelect::rank1) — how many accepted moduli precede raw
//!   position `i`: raw → compacted row.
//! * [`select1(k)`](RankSelect::select1) — the raw position of the `k`-th
//!   accepted modulus: compacted row → raw position. This is the hot path
//!   of finding attribution.
//!
//! The layout is the classic two-level directory (the sux/succinct idiom):
//! 64-bit words grouped into 512-bit **blocks**, a cumulative ones count
//! per block, and a **select hint** per 256 set bits naming the block that
//! contains that bit. A `select1` is then: one hint load, a binary search
//! over the (at most a few) blocks between two hints, a popcount scan of
//! the ≤ 8 words of one block, and a broadword select inside one word —
//! bounded probes, no linear scan over the corpus.
//! [`select1_probed`](RankSelect::select1_probed) exposes the probe count
//! so tests can pin the O(1) claim.

/// Bits per directory word.
const WORD_BITS: usize = 64;
/// Words per rank block (512-bit basic blocks).
const WORDS_PER_BLOCK: usize = 8;
/// Bits per rank block.
const BLOCK_BITS: usize = WORD_BITS * WORDS_PER_BLOCK;
/// One select hint is stored per this many set bits.
const SELECT_SAMPLE: usize = 256;

/// A static bit vector with O(1) `rank1` and `select1`.
///
/// Build one with [`RankSelectBuilder`], [`from_bools`](Self::from_bools),
/// or [`from_words`](Self::from_words) (e.g. when deserializing an
/// acceptance bitmap from an on-disk arena header).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RankSelect {
    /// The bits, little-endian within each 64-bit word.
    words: Vec<u64>,
    /// Number of valid bits (trailing bits of the last word are zero).
    len: usize,
    /// `block_ranks[b]` = number of ones strictly before block `b`.
    /// Has `nblocks + 1` entries; the last is the total ones count.
    block_ranks: Vec<u64>,
    /// `select_hints[h]` = index of the block containing the
    /// `(h * SELECT_SAMPLE)`-th set bit.
    select_hints: Vec<u32>,
}

/// Incremental builder for [`RankSelect`], one bit at a time.
///
/// This is what a streaming sanitizer appends to as it accepts or rejects
/// each modulus; the directory is built once in
/// [`finish`](RankSelectBuilder::finish).
#[derive(Debug, Clone, Default)]
pub struct RankSelectBuilder {
    words: Vec<u64>,
    len: usize,
}

impl RankSelectBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / WORD_BITS;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % WORD_BITS);
        }
        self.len += 1;
    }

    /// Number of bits pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Freeze the bits and build the rank/select directory.
    pub fn finish(self) -> RankSelect {
        RankSelect::from_words(self.words, self.len)
    }
}

impl RankSelect {
    /// Build from a slice of bools (index `i` ↦ bit `i`).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = RankSelectBuilder::new();
        for &bit in bits {
            b.push(bit);
        }
        b.finish()
    }

    /// Build from packed little-endian words holding `len` bits.
    ///
    /// Bits at positions `>= len` in the final word are cleared; surplus
    /// whole words beyond `len` are dropped.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.truncate(len.div_ceil(WORD_BITS));
        let tail = len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        let nblocks = words.len().div_ceil(WORDS_PER_BLOCK);
        let mut block_ranks = Vec::with_capacity(nblocks + 1);
        let mut select_hints = Vec::new();
        let mut ones: u64 = 0;
        block_ranks.push(0);
        for b in 0..nblocks {
            let start = b * WORDS_PER_BLOCK;
            let end = (start + WORDS_PER_BLOCK).min(words.len());
            let before = ones;
            for &w in &words[start..end] {
                ones += u64::from(w.count_ones());
            }
            // Every sample index h with h * SELECT_SAMPLE in [before, ones)
            // has its bit inside this block.
            let mut h = select_hints.len();
            while (h * SELECT_SAMPLE) as u64 >= before && ((h * SELECT_SAMPLE) as u64) < ones {
                select_hints.push(b as u32);
                h += 1;
            }
            block_ranks.push(ones);
        }
        RankSelect {
            words,
            len,
            block_ranks,
            select_hints,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.block_ranks.last().map_or(0, |&r| r as usize)
    }

    /// The bit at position `i` (false for `i >= len`).
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// The packed words (for serialization). Bits beyond
    /// [`len`](Self::len) are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of set bits strictly before position `i`.
    ///
    /// `i` may be `len` (giving the total count); larger values clamp.
    pub fn rank1(&self, i: usize) -> usize {
        if self.block_ranks.is_empty() {
            return 0;
        }
        let i = i.min(self.len);
        let block = i / BLOCK_BITS;
        let mut r = self.block_ranks[block.min(self.block_ranks.len() - 1)] as usize;
        let word = i / WORD_BITS;
        for w in (block * WORDS_PER_BLOCK)..word.min(self.words.len()) {
            r += self.words[w].count_ones() as usize;
        }
        let tail = i % WORD_BITS;
        if tail != 0 && word < self.words.len() {
            r += (self.words[word] & ((1u64 << tail) - 1)).count_ones() as usize;
        }
        r
    }

    /// Number of clear bits strictly before position `i`.
    pub fn rank0(&self, i: usize) -> usize {
        i.min(self.len) - self.rank1(i)
    }

    /// Position of the `k`-th set bit (0-indexed), or `None` if fewer than
    /// `k + 1` bits are set.
    pub fn select1(&self, k: usize) -> Option<usize> {
        self.select1_inner(k, &mut 0)
    }

    /// [`select1`](Self::select1) plus the number of directory/word probes
    /// it made — instrumentation for the constant-time contract. The probe
    /// count is bounded by the directory geometry (hint spacing and block
    /// size), not by the vector length.
    pub fn select1_probed(&self, k: usize) -> (Option<usize>, usize) {
        let mut probes = 0;
        let pos = self.select1_inner(k, &mut probes);
        (pos, probes)
    }

    fn select1_inner(&self, k: usize, probes: &mut usize) -> Option<usize> {
        if k >= self.count_ones() {
            return None;
        }
        // The hints bracket the block range that can contain the k-th one.
        let h = k / SELECT_SAMPLE;
        *probes += 1;
        let mut lo = self.select_hints[h] as usize;
        let mut hi = match self.select_hints.get(h + 1) {
            Some(&b) => b as usize,
            None => self.block_ranks.len() - 2,
        };
        // Largest block b in [lo, hi] with block_ranks[b] <= k.
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            *probes += 1;
            if self.block_ranks[mid] as usize <= k {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        // Scan the <= 8 words of the block.
        let mut rem = k - self.block_ranks[lo] as usize;
        let start = lo * WORDS_PER_BLOCK;
        let end = (start + WORDS_PER_BLOCK).min(self.words.len());
        for w in start..end {
            *probes += 1;
            let word = self.words[w];
            let c = word.count_ones() as usize;
            if rem < c {
                return Some(w * WORD_BITS + select_in_word(word, rem));
            }
            rem -= c;
        }
        // Unreachable: count_ones() admitted k, so the block scan finds it.
        None
    }
}

/// Position of the `r`-th set bit of `w` (0-indexed). Caller guarantees
/// `r < w.count_ones()`. Constant work: at most 8 byte steps plus at most
/// 8 bit steps.
fn select_in_word(w: u64, r: usize) -> usize {
    let mut rem = r;
    let mut x = w;
    let mut pos = 0usize;
    loop {
        let byte = x & 0xFF;
        let c = byte.count_ones() as usize;
        if rem < c {
            let mut b = byte;
            loop {
                let bit = b.trailing_zeros() as usize;
                if rem == 0 {
                    return pos + bit;
                }
                b &= b - 1;
                rem -= 1;
            }
        }
        rem -= c;
        x >>= 8;
        pos += 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive oracle for rank: scan and count.
    fn naive_rank1(bits: &[bool], i: usize) -> usize {
        bits[..i.min(bits.len())].iter().filter(|&&b| b).count()
    }

    /// Naive oracle for select: scan for the k-th one.
    fn naive_select1(bits: &[bool], k: usize) -> Option<usize> {
        bits.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .nth(k)
            .map(|(i, _)| i)
    }

    #[test]
    fn empty_vector() {
        let rs = RankSelect::default();
        assert_eq!(rs.len(), 0);
        assert_eq!(rs.count_ones(), 0);
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.rank1(100), 0);
        assert_eq!(rs.select1(0), None);
        assert!(!rs.get(0));
    }

    #[test]
    fn all_ones_round_trips() {
        let n = 2000;
        let rs = RankSelect::from_bools(&vec![true; n]);
        assert_eq!(rs.count_ones(), n);
        for i in 0..n {
            assert_eq!(rs.rank1(i), i);
            assert_eq!(rs.select1(i), Some(i));
        }
        assert_eq!(rs.select1(n), None);
    }

    #[test]
    fn all_zeros() {
        let rs = RankSelect::from_bools(&vec![false; 1000]);
        assert_eq!(rs.count_ones(), 0);
        assert_eq!(rs.rank1(1000), 0);
        assert_eq!(rs.select1(0), None);
    }

    #[test]
    fn builder_matches_from_bools() {
        let bits: Vec<bool> = (0..777).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let mut b = RankSelectBuilder::new();
        for &bit in &bits {
            b.push(bit);
        }
        assert_eq!(b.len(), bits.len());
        assert_eq!(b.finish(), RankSelect::from_bools(&bits));
    }

    #[test]
    fn from_words_clears_tail_bits() {
        // 70 bits from two full-ones words: bits 70..128 must not count.
        let rs = RankSelect::from_words(vec![u64::MAX, u64::MAX], 70);
        assert_eq!(rs.len(), 70);
        assert_eq!(rs.count_ones(), 70);
        assert_eq!(rs.select1(69), Some(69));
        assert_eq!(rs.select1(70), None);
    }

    #[test]
    fn rank_select_inverse_on_mixed_vector() {
        let bits: Vec<bool> = (0..10_000)
            .map(|i| (i * 2654435761u64 as usize) % 5 < 2)
            .collect();
        let rs = RankSelect::from_bools(&bits);
        for k in 0..rs.count_ones() {
            let pos = rs.select1(k).unwrap();
            assert!(bits[pos]);
            assert_eq!(rs.rank1(pos), k, "rank1(select1({k}))");
        }
    }

    #[test]
    fn select_probes_stay_constant_as_the_vector_grows() {
        // The O(1) contract: the probe count of the compacted-row →
        // raw-position lookup must be bounded by the directory geometry,
        // not grow with the corpus. Same acceptance density, three sizes
        // spanning 500x; the max probe count must not drift upward.
        let max_probes = |n: usize| {
            let bits: Vec<bool> = (0..n)
                .map(|i| (i.wrapping_mul(0x9E37_79B9) >> 7) % 10 != 0)
                .collect();
            let rs = RankSelect::from_bools(&bits);
            (0..rs.count_ones())
                .map(|k| rs.select1_probed(k).1)
                .max()
                .unwrap()
        };
        let small = max_probes(2_000);
        let large = max_probes(1_000_000);
        assert!(
            large <= small,
            "select probes grew with corpus size: {small} at 2k bits, {large} at 1M bits"
        );
        // Absolute ceiling from the geometry: 1 hint + log2(blocks between
        // hints) + 8 block words; anything near the vector length means a
        // linear scan crept in.
        assert!(large <= 24, "select probe count {large} is not O(1)-like");
    }

    proptest! {
        #[test]
        fn rank_matches_naive_oracle(bits in proptest::collection::vec(any::<bool>(), 0..4096)) {
            let rs = RankSelect::from_bools(&bits);
            prop_assert_eq!(rs.count_ones(), naive_rank1(&bits, bits.len()));
            // Probe every boundary plus past-the-end.
            for i in 0..=bits.len() + 3 {
                prop_assert_eq!(rs.rank1(i), naive_rank1(&bits, i));
                prop_assert_eq!(rs.rank0(i), i.min(bits.len()) - naive_rank1(&bits, i));
            }
        }

        #[test]
        fn select_matches_naive_oracle(bits in proptest::collection::vec(any::<bool>(), 0..4096)) {
            let rs = RankSelect::from_bools(&bits);
            let ones = rs.count_ones();
            for k in 0..ones + 2 {
                prop_assert_eq!(rs.select1(k), naive_select1(&bits, k));
            }
        }

        #[test]
        fn get_matches_input(bits in proptest::collection::vec(any::<bool>(), 0..2048)) {
            let rs = RankSelect::from_bools(&bits);
            for (i, &b) in bits.iter().enumerate() {
                prop_assert_eq!(rs.get(i), b);
            }
            prop_assert!(!rs.get(bits.len()));
        }

        #[test]
        fn sparse_and_dense_densities(
            n in 1usize..3000,
            modulus in 1usize..50,
            seed in any::<u64>(),
        ) {
            let mut state = seed;
            let bits: Vec<bool> = (0..n)
                .map(|_| {
                    // splitmix64 step
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    ((z ^ (z >> 31)) as usize).is_multiple_of(modulus)
                })
                .collect();
            let rs = RankSelect::from_bools(&bits);
            for k in 0..rs.count_ones() {
                prop_assert_eq!(rs.select1(k), naive_select1(&bits, k));
            }
            for i in 0..=n {
                prop_assert_eq!(rs.rank1(i), naive_rank1(&bits, i));
            }
        }
    }
}
