//! The five Euclidean variants of §II–§III, all driving a [`GcdPair`]
//! in place and reporting one [`Step`] per do-while iteration:
//!
//! * (A) Original Euclid — `X ← X mod Y`
//! * (B) Fast Euclid — exact quotient forced odd, `X ← rshift(X − Q·Y)`
//! * (C) Binary Euclid — halve/subtract
//! * (D) Fast Binary Euclid — `X ← rshift(X − Y)`
//! * (E) Approximate Euclid — the paper's contribution
//!
//! All variants assume **odd** inputs (the paper's standing assumption —
//! RSA moduli are odd). The [`gcd_nat`] wrapper handles arbitrary inputs by
//! stripping common powers of two first, exactly as §II prescribes.

use crate::approx::approx;
use crate::operand::GcdPair;
use crate::probe::{NoProbe, Probe, Step, StepKind};
use bulkgcd_bigint::Nat;

/// When to stop iterating (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Run until `Y = 0`; `X` then holds the GCD.
    Full,
    /// Stop as soon as `Y` has fewer than `threshold_bits` bits: for s-bit
    /// RSA moduli with s/2-bit prime factors, `threshold_bits = s/2` — once
    /// `Y` drops below that, the inputs are coprime.
    Early {
        /// Bit threshold below which the operands are declared coprime.
        threshold_bits: u64,
    },
}

/// Result of a GCD run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcdOutcome {
    /// `Y` reached zero: the GCD is this value.
    Gcd(Nat),
    /// Early termination fired: the inputs share no factor of at least
    /// `threshold_bits` bits (for RSA moduli: they are coprime).
    Coprime,
}

impl GcdOutcome {
    /// The non-trivial factor, if one was found (a GCD larger than 1).
    pub fn factor(&self) -> Option<&Nat> {
        match self {
            GcdOutcome::Gcd(g) if !g.is_one() => Some(g),
            _ => None,
        }
    }

    /// True when the run proved the pair coprime (GCD == 1 or early exit).
    pub fn is_coprime(&self) -> bool {
        match self {
            GcdOutcome::Coprime => true,
            GcdOutcome::Gcd(g) => g.is_one(),
        }
    }
}

/// Result of a GCD run that leaves its answer *in the workspace* instead of
/// allocating — the bulk-scan hot-loop counterpart of [`GcdOutcome`].
///
/// After [`run_in_place`] returns [`GcdStatus::Done`], `X` holds the GCD:
/// inspect it with [`GcdPair::gcd_is_one`] / [`GcdPair::x`], or extract it
/// with [`GcdPair::write_gcd_into`] (borrowed) or [`GcdPair::x_nat`]
/// (allocating, for the rare finding that must outlive the workspace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcdStatus {
    /// `Y` reached zero: `X` holds the GCD.
    Done,
    /// Early termination fired: the inputs share no factor of at least
    /// `threshold_bits` bits (for RSA moduli: they are coprime).
    EarlyCoprime,
}

/// Identifier for the five variants, in the paper's (A)–(E) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// (A) Original Euclidean algorithm.
    Original,
    /// (B) Fast Euclidean algorithm.
    Fast,
    /// (C) Binary Euclidean algorithm.
    Binary,
    /// (D) Fast Binary Euclidean algorithm.
    FastBinary,
    /// (E) Approximate Euclidean algorithm (the paper's contribution).
    Approximate,
}

impl Algorithm {
    /// All five, in the paper's order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Original,
        Algorithm::Fast,
        Algorithm::Binary,
        Algorithm::FastBinary,
        Algorithm::Approximate,
    ];

    /// The paper's single-letter tag, e.g. `"(E)"`.
    pub fn tag(&self) -> &'static str {
        match self {
            Algorithm::Original => "(A)",
            Algorithm::Fast => "(B)",
            Algorithm::Binary => "(C)",
            Algorithm::FastBinary => "(D)",
            Algorithm::Approximate => "(E)",
        }
    }

    /// Human-readable name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Original => "Original Euclidean algorithm",
            Algorithm::Fast => "Fast Euclidean algorithm",
            Algorithm::Binary => "Binary Euclidean algorithm",
            Algorithm::FastBinary => "Fast Binary Euclidean algorithm",
            Algorithm::Approximate => "Approximate Euclidean algorithm",
        }
    }

    /// Run this variant on a loaded pair. See [`run`].
    pub fn run<P: Probe>(
        &self,
        pair: &mut GcdPair,
        term: Termination,
        probe: &mut P,
    ) -> GcdOutcome {
        run(*self, pair, term, probe)
    }
}

#[inline]
fn finished(pair: &GcdPair, term: Termination) -> Option<GcdStatus> {
    if pair.y_is_zero() {
        return Some(GcdStatus::Done);
    }
    if let Termination::Early { threshold_bits } = term {
        if pair.y_bits() < threshold_bits {
            return Some(GcdStatus::EarlyCoprime);
        }
    }
    None
}

#[inline]
fn status_to_outcome(status: GcdStatus, pair: &GcdPair) -> GcdOutcome {
    match status {
        GcdStatus::Done => GcdOutcome::Gcd(pair.x_nat()),
        GcdStatus::EarlyCoprime => GcdOutcome::Coprime,
    }
}

/// (A) Original Euclidean algorithm: `X ← X mod Y; swap(X, Y)`.
fn original_euclid_loop<P: Probe>(
    pair: &mut GcdPair,
    term: Termination,
    probe: &mut P,
) -> GcdStatus {
    loop {
        if let Some(out) = finished(pair, term) {
            return out;
        }
        let (lx, ly) = (pair.lx(), pair.ly());
        pair.x_mod_y();
        pair.swap(); // X mod Y < Y, so X > Y always holds afterwards
        probe.step(
            pair,
            &Step {
                kind: StepKind::OriginalMod,
                lx_before: lx,
                ly_before: ly,
                alpha: 0,
                beta: 0,
                case: None,
                rshift_bits: 0,
                swapped: true,
            },
        );
    }
}

/// (B) Fast Euclidean algorithm: exact quotient forced odd, then
/// `X ← rshift(X − Q·Y)`.
fn fast_euclid_loop<P: Probe>(pair: &mut GcdPair, term: Termination, probe: &mut P) -> GcdStatus {
    loop {
        if let Some(out) = finished(pair, term) {
            return out;
        }
        let (lx, ly) = (pair.lx(), pair.ly());
        let mut q = pair.x_div_y();
        if q.is_even() {
            // Q even would leave X − Q·Y odd; decrement so rshift strips bits.
            q = q.sub(&Nat::one());
        }
        let r = pair.x_submul_nat_rshift(&q);
        let swapped = pair.ensure_x_ge_y();
        probe.step(
            pair,
            &Step {
                kind: StepKind::FastQuotient,
                lx_before: lx,
                ly_before: ly,
                alpha: q.low_u64(),
                beta: 0,
                case: None,
                rshift_bits: r,
                swapped,
            },
        );
    }
}

/// (C) Binary Euclidean algorithm: halve whichever operand is even, else
/// `X ← (X − Y)/2`.
fn binary_euclid_loop<P: Probe>(pair: &mut GcdPair, term: Termination, probe: &mut P) -> GcdStatus {
    loop {
        if let Some(out) = finished(pair, term) {
            return out;
        }
        let (lx, ly) = (pair.lx(), pair.ly());
        let kind = if !pair.x_is_odd() {
            pair.x_halve();
            StepKind::BinaryXEven
        } else if !pair.y_is_odd() {
            pair.y_halve();
            StepKind::BinaryYEven
        } else {
            pair.x_sub_y_halve();
            StepKind::BinaryBothOdd
        };
        let swapped = pair.ensure_x_ge_y();
        probe.step(
            pair,
            &Step {
                kind,
                lx_before: lx,
                ly_before: ly,
                alpha: 1,
                beta: 0,
                case: None,
                rshift_bits: 1,
                swapped,
            },
        );
    }
}

/// (D) Fast Binary Euclidean algorithm: `X ← rshift(X − Y)`.
fn fast_binary_euclid_loop<P: Probe>(
    pair: &mut GcdPair,
    term: Termination,
    probe: &mut P,
) -> GcdStatus {
    loop {
        if let Some(out) = finished(pair, term) {
            return out;
        }
        let (lx, ly) = (pair.lx(), pair.ly());
        let r = pair.x_sub_y_rshift();
        let swapped = pair.ensure_x_ge_y();
        probe.step(
            pair,
            &Step {
                kind: StepKind::FastBinarySub,
                lx_before: lx,
                ly_before: ly,
                alpha: 1,
                beta: 0,
                case: None,
                rshift_bits: r,
                swapped,
            },
        );
    }
}

/// (E) Approximate Euclidean algorithm — the paper's contribution (§III).
///
/// Each iteration computes `(α, β) = approx(X, Y)` from the top words with
/// one 64-bit division; with β = 0 (overwhelmingly likely, §V) it performs
/// the fused `X ← rshift(X − α·Y)` with α forced odd, otherwise the rare
/// `X ← rshift(X − Y·α·D^β + Y)`.
fn approximate_euclid_loop<P: Probe>(
    pair: &mut GcdPair,
    term: Termination,
    probe: &mut P,
) -> GcdStatus {
    loop {
        if let Some(out) = finished(pair, term) {
            return out;
        }
        let (lx, ly) = (pair.lx(), pair.ly());
        let a = approx(pair.x(), lx, pair.y(), ly);
        let (kind, alpha, r) = if a.beta == 0 {
            let mut alpha = a.alpha;
            if alpha & 1 == 0 {
                alpha -= 1; // make odd so X − α·Y is even
            }
            let r = if alpha <= u32::MAX as u64 {
                pair.x_submul_rshift(alpha as u32)
            } else {
                // Case 1 can produce a two-word exact quotient; X then fits
                // in 64 bits, so do the arithmetic directly.
                debug_assert!(lx <= 2);
                let x = pair.x_nat().low_u64();
                let y = pair.y_nat().low_u64();
                let d = x - alpha * y;
                let tz = if d == 0 { 0 } else { d.trailing_zeros() as u64 };
                pair.set_x_u64(d >> tz);
                tz
            };
            (StepKind::ApproxBetaZero, alpha, r)
        } else {
            // β > 0 guarantees α fits one word (§III).
            let r = pair.x_submul_shifted_rshift(a.alpha as u32, a.beta);
            (StepKind::ApproxBetaPositive, a.alpha, r)
        };
        let swapped = pair.ensure_x_ge_y();
        probe.step(
            pair,
            &Step {
                kind,
                lx_before: lx,
                ly_before: ly,
                alpha,
                beta: a.beta,
                case: Some(a.case),
                rshift_bits: r,
                swapped,
            },
        );
    }
}

/// (A) Original Euclidean algorithm: `X ← X mod Y; swap(X, Y)`.
pub fn original_euclid<P: Probe>(
    pair: &mut GcdPair,
    term: Termination,
    probe: &mut P,
) -> GcdOutcome {
    let status = original_euclid_loop(pair, term, probe);
    status_to_outcome(status, pair)
}

/// (B) Fast Euclidean algorithm: exact quotient forced odd, then
/// `X ← rshift(X − Q·Y)`.
pub fn fast_euclid<P: Probe>(pair: &mut GcdPair, term: Termination, probe: &mut P) -> GcdOutcome {
    let status = fast_euclid_loop(pair, term, probe);
    status_to_outcome(status, pair)
}

/// (C) Binary Euclidean algorithm: halve whichever operand is even, else
/// `X ← (X − Y)/2`.
pub fn binary_euclid<P: Probe>(pair: &mut GcdPair, term: Termination, probe: &mut P) -> GcdOutcome {
    let status = binary_euclid_loop(pair, term, probe);
    status_to_outcome(status, pair)
}

/// (D) Fast Binary Euclidean algorithm: `X ← rshift(X − Y)`.
pub fn fast_binary_euclid<P: Probe>(
    pair: &mut GcdPair,
    term: Termination,
    probe: &mut P,
) -> GcdOutcome {
    let status = fast_binary_euclid_loop(pair, term, probe);
    status_to_outcome(status, pair)
}

/// (E) Approximate Euclidean algorithm — the paper's contribution (§III).
pub fn approximate_euclid<P: Probe>(
    pair: &mut GcdPair,
    term: Termination,
    probe: &mut P,
) -> GcdOutcome {
    let status = approximate_euclid_loop(pair, term, probe);
    status_to_outcome(status, pair)
}

/// Run `algo` on a loaded pair without allocating for the result: the
/// bulk-scan hot-loop entry point (inputs must be odd, as everywhere).
///
/// On [`GcdStatus::Done`] the GCD is left in the pair's `X` buffer; check
/// [`GcdPair::gcd_is_one`] and, for the rare finding, extract it with
/// [`GcdPair::x_nat`] or copy it out with [`GcdPair::write_gcd_into`].
pub fn run_in_place<P: Probe>(
    algo: Algorithm,
    pair: &mut GcdPair,
    term: Termination,
    probe: &mut P,
) -> GcdStatus {
    match algo {
        // analyze: allow(za-alloc, reason = "the division-based reference algorithms quotient through the subquadratic ladder, which allocates; the scan's zero-alloc property pins the binary/approximate bulk paths")
        Algorithm::Original => original_euclid_loop(pair, term, probe),
        // analyze: allow(za-alloc, reason = "the division-based reference algorithms quotient through the subquadratic ladder, which allocates; the scan's zero-alloc property pins the binary/approximate bulk paths")
        Algorithm::Fast => fast_euclid_loop(pair, term, probe),
        Algorithm::Binary => binary_euclid_loop(pair, term, probe),
        Algorithm::FastBinary => fast_binary_euclid_loop(pair, term, probe),
        Algorithm::Approximate => approximate_euclid_loop(pair, term, probe),
    }
}

/// Run `algo` on a loaded pair (inputs must be odd; use [`gcd_nat`] for
/// arbitrary inputs). Allocating wrapper over [`run_in_place`].
pub fn run<P: Probe>(
    algo: Algorithm,
    pair: &mut GcdPair,
    term: Termination,
    probe: &mut P,
) -> GcdOutcome {
    let status = run_in_place(algo, pair, term, probe);
    status_to_outcome(status, pair)
}

/// General-input GCD with any of the five variants.
///
/// Handles zero and even inputs via the §II reductions: `gcd(X, 0) = X`,
/// shared factors of two are extracted up front, and a single even operand
/// has its trailing zeros stripped (they cannot contribute to an odd GCD).
pub fn gcd_nat(algo: Algorithm, a: &Nat, b: &Nat) -> Nat {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let (a_odd, za) = a.rshift();
    let (b_odd, zb) = b.rshift();
    let common_twos = za.min(zb);
    let mut pair = GcdPair::new(&a_odd, &b_odd);
    match run(algo, &mut pair, Termination::Full, &mut NoProbe) {
        GcdOutcome::Gcd(g) => g.shl(common_twos),
        GcdOutcome::Coprime => unreachable!("Full termination never reports Coprime"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::StatsProbe;

    fn nat(v: u128) -> Nat {
        Nat::from_u128(v)
    }

    #[test]
    fn all_variants_solve_paper_example() {
        // X = 1043915, Y = 768955, gcd = 5 (Tables I-III).
        for algo in Algorithm::ALL {
            let g = gcd_nat(algo, &nat(1_043_915), &nat(768_955));
            assert_eq!(g, nat(5), "{}", algo.name());
        }
    }

    #[test]
    fn all_variants_match_reference_on_odd_pairs() {
        let pairs = [
            (3u128, 3u128),
            (35, 5),
            (1, 1),
            (99_999_999_977, 99_999_999_977), // equal large
            ((1 << 89) - 1, (1 << 61) - 1),   // coprime Mersennes
            (0xffff_ffff_ffff_ffff, 3),
            (1_043_915, 768_955),
            (225, 15),
        ];
        for (a, b) in pairs {
            let expect = nat(a).gcd_reference(&nat(b));
            for algo in Algorithm::ALL {
                assert_eq!(
                    gcd_nat(algo, &nat(a), &nat(b)),
                    expect,
                    "{} on ({a}, {b})",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn even_inputs_handled_by_wrapper() {
        // gcd(2^5*3, 2^3*9) = 2^3 * 3 = 24.
        let a = nat(96);
        let b = nat(72);
        for algo in Algorithm::ALL {
            assert_eq!(gcd_nat(algo, &a, &b), nat(24), "{}", algo.name());
        }
    }

    #[test]
    fn zero_inputs() {
        for algo in Algorithm::ALL {
            assert_eq!(gcd_nat(algo, &Nat::zero(), &nat(7)), nat(7));
            assert_eq!(gcd_nat(algo, &nat(7), &Nat::zero()), nat(7));
            assert_eq!(gcd_nat(algo, &Nat::zero(), &Nat::zero()), Nat::zero());
        }
    }

    #[test]
    fn fast_euclid_39_9_example() {
        // §II example: Original runs 2 iterations on (39, 9). The paper's
        // prose trace for Fast shows "(39,9) → (12,9) → (9,3) → (3,0)" —
        // displaying the difference *before* rshift as a state — but the
        // algorithm listing applies rshift in the same iteration, so the
        // faithful implementation reaches (9,3) after one pass:
        // q=4→3, rshift(39−27)=rshift(12)=3, swap.
        let mut pair = GcdPair::new(&nat(39), &nat(9));
        let mut sp = StatsProbe::default();
        let out = original_euclid(&mut pair, Termination::Full, &mut sp);
        assert_eq!(out, GcdOutcome::Gcd(nat(3)));
        assert_eq!(sp.stats.iterations, 2);

        let mut pair = GcdPair::new(&nat(39), &nat(9));
        let mut tp = crate::probe::TraceProbe::default();
        let out = fast_euclid(&mut pair, Termination::Full, &mut tp);
        assert_eq!(out, GcdOutcome::Gcd(nat(3)));
        assert_eq!(tp.rows.len(), 2);
        assert_eq!(tp.rows[0].x_after, nat(9));
        assert_eq!(tp.rows[0].y_after, nat(3));
    }

    #[test]
    fn early_termination_declares_coprime() {
        // 64-bit "moduli" sharing no 32-bit factor.
        let a = nat(0xffff_ffff_ffff_fff1); // arbitrary odd
        let b = nat(0xffff_ffff_ffff_fceb);
        let g = a.gcd_reference(&b);
        assert!(g.is_one(), "test inputs must be coprime");
        for algo in Algorithm::ALL {
            let mut pair = GcdPair::new(&a, &b);
            let out = run(
                algo,
                &mut pair,
                Termination::Early { threshold_bits: 32 },
                &mut NoProbe,
            );
            assert_eq!(out, GcdOutcome::Coprime, "{}", algo.name());
        }
    }

    #[test]
    fn early_termination_still_finds_shared_factor() {
        // p is a 32-bit prime shared by both products.
        let p = 0xffff_fffbu128; // 4294967291, prime
        let a = nat(p * 4_294_967_311); // another prime
        let b = nat(p * 4_294_967_357);
        for algo in Algorithm::ALL {
            let mut pair = GcdPair::new(&a, &b);
            let out = run(
                algo,
                &mut pair,
                Termination::Early { threshold_bits: 32 },
                &mut NoProbe,
            );
            assert_eq!(out, GcdOutcome::Gcd(nat(p)), "{}", algo.name());
        }
    }

    #[test]
    fn identical_moduli_gcd_is_self() {
        let n = nat(0xffff_fffb * 0xffff_ffef);
        for algo in Algorithm::ALL {
            assert_eq!(gcd_nat(algo, &n, &n), n, "{}", algo.name());
        }
    }

    #[test]
    fn approximate_iterations_at_most_fast_binary_plus_slack() {
        // (E) should need far fewer iterations than (D) on large inputs.
        let a = nat((1 << 127) - 1);
        let b = nat((1 << 126) - 3);
        let run_stats = |algo| {
            let mut pair = GcdPair::new(&a, &b);
            let mut sp = StatsProbe::default();
            run(algo, &mut pair, Termination::Full, &mut sp);
            sp.stats.iterations
        };
        let fast_binary = run_stats(Algorithm::FastBinary);
        let approximate = run_stats(Algorithm::Approximate);
        assert!(
            approximate < fast_binary,
            "approximate {approximate} >= fast binary {fast_binary}"
        );
    }

    #[test]
    fn run_in_place_leaves_gcd_in_x() {
        let p = 0xffff_fffbu128;
        let a = nat(p * 4_294_967_311);
        let b = nat(p * 4_294_967_357);
        for algo in Algorithm::ALL {
            let mut pair = GcdPair::new(&a, &b);
            let status = run_in_place(algo, &mut pair, Termination::Full, &mut NoProbe);
            assert_eq!(status, GcdStatus::Done, "{}", algo.name());
            assert!(!pair.gcd_is_one(), "{}", algo.name());
            assert_eq!(pair.x_nat(), nat(p), "{}", algo.name());
            let mut dest = [0u32; 4];
            let used = pair.write_gcd_into(&mut dest);
            assert_eq!(used, 1);
            assert_eq!(Nat::from_limb_slice(&dest), nat(p), "{}", algo.name());
        }
    }

    #[test]
    fn run_in_place_early_coprime() {
        let a = nat(0xffff_ffff_ffff_fff1);
        let b = nat(0xffff_ffff_ffff_fceb);
        for algo in Algorithm::ALL {
            let mut pair = GcdPair::new(&a, &b);
            let status = run_in_place(
                algo,
                &mut pair,
                Termination::Early { threshold_bits: 32 },
                &mut NoProbe,
            );
            assert_eq!(status, GcdStatus::EarlyCoprime, "{}", algo.name());
        }
    }

    #[test]
    fn run_in_place_coprime_full_run_reports_gcd_one() {
        let a = nat((1 << 89) - 1);
        let b = nat((1 << 61) - 1);
        for algo in Algorithm::ALL {
            let mut pair = GcdPair::new(&a, &b);
            let status = run_in_place(algo, &mut pair, Termination::Full, &mut NoProbe);
            assert_eq!(status, GcdStatus::Done, "{}", algo.name());
            assert!(pair.gcd_is_one(), "{}", algo.name());
        }
    }

    #[test]
    fn outcome_helpers() {
        assert!(GcdOutcome::Coprime.is_coprime());
        assert!(GcdOutcome::Gcd(Nat::one()).is_coprime());
        assert!(GcdOutcome::Gcd(nat(7)).factor().is_some());
        assert!(GcdOutcome::Gcd(Nat::one()).factor().is_none());
        assert!(GcdOutcome::Coprime.factor().is_none());
    }
}
