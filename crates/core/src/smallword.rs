//! Generic word-size reference implementations on `u128` values.
//!
//! The paper's worked examples (Tables I–III) use **4-bit words** (`d = 4`,
//! `D = 16`) for readability, while the production implementation fixes
//! `d = 32`. This module implements all five Euclidean variants — including
//! `approx` — parameterised over `d`, on plain `u128` arithmetic. It serves
//! two purposes:
//!
//! 1. regenerating Tables I–III exactly (the `table1`/`table2`/`table3`
//!    binaries in `bulkgcd-bench`), and
//! 2. acting as an independent oracle: with `d = 32` its iteration traces
//!    must agree with the optimized multiword implementation.

use crate::algorithms::Algorithm;
use crate::approx::ApproxCase;

/// One recorded iteration of a small-word run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwRow {
    /// 1-based iteration index.
    pub iteration: u32,
    /// `X` before this iteration.
    pub x_before: u128,
    /// `Y` before this iteration.
    pub y_before: u128,
    /// Exact quotient (Original / Fast Euclid).
    pub q: Option<u128>,
    /// α (Approximate Euclid; also 1 for the binary variants).
    pub alpha: Option<u128>,
    /// β (Approximate Euclid).
    pub beta: Option<u32>,
    /// `approx` case (Approximate Euclid).
    pub case: Option<ApproxCase>,
    /// `X` after the update and swap.
    pub x_after: u128,
    /// `Y` after the update and swap.
    pub y_after: u128,
}

/// Result of a traced small-word run.
#[derive(Debug, Clone)]
pub struct SwTrace {
    /// The computed GCD.
    pub gcd: u128,
    /// Per-iteration rows.
    pub rows: Vec<SwRow>,
}

impl SwTrace {
    /// Number of do-while iterations.
    pub fn iterations(&self) -> u32 {
        self.rows.len() as u32
    }
}

fn rshift(v: u128) -> u128 {
    if v == 0 {
        0
    } else {
        v >> v.trailing_zeros()
    }
}

/// Number of `d`-bit words needed for `v` (the paper's `lX`); 0 for `v = 0`.
pub fn word_len(v: u128, d: u32) -> u32 {
    if v == 0 {
        0
    } else {
        (128 - v.leading_zeros()).div_ceil(d)
    }
}

/// Top word `x1` of `v` under word size `d`.
fn top_word(v: u128, d: u32) -> u128 {
    let l = word_len(v, d);
    v >> (d * (l - 1))
}

/// Top two words `x1x2` of `v` (requires at least 2 words).
fn top_two_words(v: u128, d: u32) -> u128 {
    let l = word_len(v, d);
    debug_assert!(l >= 2);
    v >> (d * (l - 2))
}

/// The paper's `approx(X, Y)` for an arbitrary word size `d`.
/// Requires `x >= y > 0`. Returns `(α, β, case)`.
pub fn approx_smallword(x: u128, y: u128, d: u32) -> (u128, u32, ApproxCase) {
    debug_assert!(x >= y && y > 0);
    let lx = word_len(x, d);
    let ly = word_len(y, d);
    if lx <= 2 {
        return (x / y, 0, ApproxCase::Case1);
    }
    let x12 = top_two_words(x, d);
    let x1 = top_word(x, d);
    if ly == 1 {
        return if x1 >= y {
            (x1 / y, lx - 1, ApproxCase::Case2A)
        } else {
            (x12 / y, lx - 2, ApproxCase::Case2B)
        };
    }
    let y12 = top_two_words(y, d);
    let y1 = top_word(y, d);
    if ly == 2 {
        return if x12 >= y12 {
            (x12 / y12, lx - 2, ApproxCase::Case3A)
        } else {
            (x12 / (y1 + 1), lx - 3, ApproxCase::Case3B)
        };
    }
    if x12 > y12 {
        (x12 / (y12 + 1), lx - ly, ApproxCase::Case4A)
    } else if lx > ly {
        (x12 / (y1 + 1), lx - ly - 1, ApproxCase::Case4B)
    } else {
        (1, 0, ApproxCase::Case4C)
    }
}

/// Run `algo` on odd inputs `(x, y)` with word size `d`, recording each
/// iteration. `d` only affects the Approximate variant.
pub fn trace(algo: Algorithm, x: u128, y: u128, d: u32) -> SwTrace {
    assert!(
        x & 1 == 1 && y & 1 == 1,
        "small-word runner expects odd inputs"
    );
    let (mut x, mut y) = if x >= y { (x, y) } else { (y, x) };
    let mut rows = Vec::new();
    let mut iter = 0u32;
    while y != 0 {
        iter += 1;
        let (xb, yb) = (x, y);
        let mut q = None;
        let mut alpha = None;
        let mut beta = None;
        let mut case = None;
        match algo {
            Algorithm::Original => {
                q = Some(x / y);
                x %= y;
                core::mem::swap(&mut x, &mut y);
            }
            Algorithm::Fast => {
                let mut qv = x / y;
                if qv % 2 == 0 {
                    qv -= 1;
                }
                q = Some(qv);
                x = rshift(x - y * qv);
                if x < y {
                    core::mem::swap(&mut x, &mut y);
                }
            }
            Algorithm::Binary => {
                if x % 2 == 0 {
                    x /= 2;
                } else if y % 2 == 0 {
                    y /= 2;
                } else {
                    x = (x - y) / 2;
                }
                if x < y {
                    core::mem::swap(&mut x, &mut y);
                }
            }
            Algorithm::FastBinary => {
                x = rshift(x - y);
                if x < y {
                    core::mem::swap(&mut x, &mut y);
                }
            }
            Algorithm::Approximate => {
                let (mut a, b, c) = approx_smallword(x, y, d);
                let db = 1u128 << (d * b);
                if b == 0 {
                    if a % 2 == 0 {
                        a -= 1;
                    }
                    x = rshift(x - y * a);
                } else {
                    x = rshift(x - y * a * db + y);
                }
                alpha = Some(a);
                beta = Some(b);
                case = Some(c);
                if x < y {
                    core::mem::swap(&mut x, &mut y);
                }
            }
        }
        rows.push(SwRow {
            iteration: iter,
            x_before: xb,
            y_before: yb,
            q,
            alpha,
            beta,
            case,
            x_after: x,
            y_after: y,
        });
    }
    SwTrace { gcd: x, rows }
}

/// Convenience: the GCD of two odd numbers under `algo` / `d`.
pub fn gcd_smallword(algo: Algorithm, x: u128, y: u128, d: u32) -> u128 {
    trace(algo, x, y, d).gcd
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Tables I-III).
    const X: u128 = 1_043_915;
    const Y: u128 = 768_955;

    fn gcd_ref(mut a: u128, mut b: u128) -> u128 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }

    #[test]
    fn table1_binary_runs_24_iterations() {
        let t = trace(Algorithm::Binary, X, Y, 4);
        assert_eq!(t.gcd, 5);
        assert_eq!(t.iterations(), 24);
    }

    #[test]
    fn table1_fast_binary_runs_16_iterations() {
        let t = trace(Algorithm::FastBinary, X, Y, 4);
        assert_eq!(t.gcd, 5);
        assert_eq!(t.iterations(), 16);
        // Row 2 of Table I: after the first iteration the pair is
        // (1011,1011,1011,1011,1011 ; 0100,0011,0010,0001) = (768955, 17185).
        assert_eq!((t.rows[0].x_after, t.rows[0].y_after), (768_955, 17_185));
    }

    #[test]
    fn table2_original_runs_11_iterations() {
        let t = trace(Algorithm::Original, X, Y, 4);
        assert_eq!(t.gcd, 5);
        assert_eq!(t.iterations(), 11);
        // Quotient column of Table II: 1,2,1,3,1,10,1,83,1,4,2.
        let qs: Vec<u128> = t.rows.iter().map(|r| r.q.unwrap()).collect();
        assert_eq!(qs, vec![1, 2, 1, 3, 1, 10, 1, 83, 1, 4, 2]);
    }

    #[test]
    fn table2_fast_runs_8_iterations() {
        let t = trace(Algorithm::Fast, X, Y, 4);
        assert_eq!(t.gcd, 5);
        assert_eq!(t.iterations(), 8);
        // Quotient column of Table II: 1,43,9,11,1,1,1,5.
        let qs: Vec<u128> = t.rows.iter().map(|r| r.q.unwrap()).collect();
        assert_eq!(qs, vec![1, 43, 9, 11, 1, 1, 1, 5]);
    }

    #[test]
    fn table3_approximate_runs_9_iterations_with_paper_cases() {
        let t = trace(Algorithm::Approximate, X, Y, 4);
        assert_eq!(t.gcd, 5);
        assert_eq!(t.iterations(), 9);
        let cases: Vec<&str> = t.rows.iter().map(|r| r.case.unwrap().label()).collect();
        assert_eq!(
            cases,
            vec!["4-A", "4-A", "4-A", "4-B", "4-A", "3-B", "1", "1", "1"]
        );
        let ab: Vec<(u128, u32)> = t
            .rows
            .iter()
            .map(|r| (r.alpha.unwrap(), r.beta.unwrap()))
            .collect();
        assert_eq!(
            ab,
            vec![
                (1, 0),
                (2, 1),
                (3, 0),
                (7, 0),
                (1, 0),
                (3, 0),
                (1, 0),
                (11, 0),
                (3, 0)
            ]
        );
    }

    #[test]
    fn paper_approx_worked_examples() {
        // §III Case examples, all with d = 4.
        // Case 1: X = 223, Y = 45 -> (4, 0).
        assert_eq!(approx_smallword(223, 45, 4), (4, 0, ApproxCase::Case1));
        // Case 2-A: X = 2345, Y = 4 -> (2, 2).
        assert_eq!(approx_smallword(2345, 4, 4), (2, 2, ApproxCase::Case2A));
        // Case 2-B: X = 1234, Y = 12 -> (6, 1).
        assert_eq!(approx_smallword(1234, 12, 4), (6, 1, ApproxCase::Case2B));
        // Case 3-A: X = 2345, Y = 59 -> (2, 1).
        assert_eq!(approx_smallword(2345, 59, 4), (2, 1, ApproxCase::Case3A));
        // Case 3-B: X = 2345, Y = 231 -> (9, 0).
        assert_eq!(approx_smallword(2345, 231, 4), (9, 0, ApproxCase::Case3B));
        // Case 4-A: X = 54321, Y = 1234 -> (2, 1).
        assert_eq!(approx_smallword(54321, 1234, 4), (2, 1, ApproxCase::Case4A));
        // Case 4-B: X = 54321, Y = 4000 -> (13, 0).
        assert_eq!(
            approx_smallword(54321, 4000, 4),
            (13, 0, ApproxCase::Case4B)
        );
        // §III intro example: X = 55555, Y = 1234 -> (2, 1).
        assert_eq!(approx_smallword(55555, 1234, 4), (2, 1, ApproxCase::Case4A));
    }

    #[test]
    fn all_variants_correct_for_many_d() {
        let pairs = [(X, Y), (39, 9), (255, 255), (1 << 100 | 1, 3), (7, 7)];
        for (a, b) in pairs {
            let expect = gcd_ref(a, b);
            for algo in Algorithm::ALL {
                for d in [4u32, 8, 16, 32] {
                    assert_eq!(
                        gcd_smallword(algo, a, b, d),
                        expect,
                        "{} d={d} on ({a}, {b})",
                        algo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn approx_bound_holds_for_all_d() {
        let mut state = 0xdead_beef_1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for d in [4u32, 8, 16, 32] {
            for _ in 0..2000 {
                let x = ((next() as u128) << 64 | next() as u128) >> (next() % 100);
                let y = ((next() as u128) << 64 | next() as u128) >> (next() % 100);
                if x == 0 || y == 0 {
                    continue;
                }
                let (x, y) = if x >= y { (x, y) } else { (y, x) };
                let (a, b, case) = approx_smallword(x, y, d);
                let approx_q = a << (d * b);
                assert!(a >= 1, "alpha >= 1: d={d} x={x:#x} y={y:#x} {case:?}");
                assert!(
                    approx_q <= x / y,
                    "bound: d={d} x={x:#x} y={y:#x} {case:?} approx={approx_q:#x}"
                );
            }
        }
    }
}
