//! Instrumentation probes.
//!
//! Every algorithm's inner loop reports one [`Step`] per do-while iteration
//! through a [`Probe`]. [`NoProbe`] compiles to nothing (the production
//! path); [`StatsProbe`] accumulates the counters behind Table IV and the
//! §V β-statistics; [`TraceProbe`] snapshots operand values for the
//! Tables I–III walkthroughs; the GPU simulator installs its own probe to
//! harvest per-iteration work descriptors.

use crate::approx::ApproxCase;
use crate::operand::GcdPair;

/// Which branch of an algorithm's iteration executed.
///
/// This doubles as the SIMT divergence label in the GPU simulator: threads
/// of a warp whose steps carry different kinds execute serially (§VII's
/// explanation of why Binary Euclid degrades on the GPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Binary Euclid: `X` even, `X ← X/2`.
    BinaryXEven,
    /// Binary Euclid: `Y` even, `Y ← Y/2`.
    BinaryYEven,
    /// Binary Euclid: both odd, `X ← (X−Y)/2`.
    BinaryBothOdd,
    /// Fast Binary Euclid: `X ← rshift(X−Y)` (single path).
    FastBinarySub,
    /// Original Euclid: `X ← X mod Y`.
    OriginalMod,
    /// Fast Euclid: exact quotient, `X ← rshift(X−Q·Y)`.
    FastQuotient,
    /// Approximate Euclid with `β = 0`: `X ← rshift(X−α·Y)`.
    ApproxBetaZero,
    /// Approximate Euclid with `β > 0`: `X ← rshift(X−α·D^β·Y+Y)`.
    ApproxBetaPositive,
    /// Lehmer's algorithm (extension): one batched multiword update
    /// `(X, Y) ← (aX+bY, cX+dY)` covering several Euclid steps.
    LehmerBatch,
}

/// One do-while iteration of any of the five algorithms.
#[derive(Debug, Clone)]
pub struct Step {
    /// Which branch ran.
    pub kind: StepKind,
    /// `lX` before the update (words), i.e. the operand scan length.
    pub lx_before: usize,
    /// `lY` before the update (words).
    pub ly_before: usize,
    /// The approximate (or exact, truncated) quotient factor α, when
    /// meaningful for the algorithm.
    pub alpha: u64,
    /// The word-shift exponent β (Approximate Euclid only).
    pub beta: usize,
    /// Which `approx` case selected (α, β) (Approximate Euclid only).
    pub case: Option<ApproxCase>,
    /// Bits stripped by `rshift` in this iteration (0 when not applicable).
    pub rshift_bits: u64,
    /// Whether the trailing `if (X < Y) swap(X, Y)` fired.
    pub swapped: bool,
}

impl Step {
    /// Memory operations this iteration performed under the §IV accounting:
    /// reading `X`, reading `Y` and writing `X` cost one operation per word
    /// actually scanned, and the β > 0 path pays one extra read of `Y`
    /// (3·s/d vs 4·s/d in the paper's fixed-length formulation).
    pub fn mem_ops(&self) -> u64 {
        let scan = self.lx_before as u64;
        match self.kind {
            StepKind::BinaryXEven | StepKind::BinaryYEven => 2 * scan,
            StepKind::ApproxBetaPositive => 4 * scan,
            // Lehmer reads X and Y and writes both: two linear combinations.
            StepKind::LehmerBatch => 4 * scan,
            _ => 3 * scan,
        }
    }
}

/// Observer of per-iteration events.
pub trait Probe {
    /// Called once per do-while iteration, after the update and the swap
    /// check, with the pair in its post-iteration state.
    fn step(&mut self, pair: &GcdPair, step: &Step);
}

/// The zero-cost probe: everything inlines away.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl Probe for NoProbe {
    #[inline(always)]
    fn step(&mut self, _pair: &GcdPair, _step: &Step) {}
}

/// Counters for Table IV and the §V statistics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Do-while iterations executed.
    pub iterations: u64,
    /// Iterations that took the rare β > 0 path (§V: < 10⁻⁸ of calls).
    pub beta_nonzero: u64,
    /// Histogram over `approx` cases (Approximate Euclid only).
    pub case_counts: [u64; ApproxCase::COUNT],
    /// Memory operations under the §IV accounting.
    pub mem_ops: u64,
    /// How many iterations ended with a swap.
    pub swaps: u64,
    /// Total bits stripped by `rshift` across the run.
    pub rshift_bits: u64,
}

/// Probe that fills a [`RunStats`].
#[derive(Debug, Default, Clone)]
pub struct StatsProbe {
    /// The accumulated counters.
    pub stats: RunStats,
}

impl Probe for StatsProbe {
    fn step(&mut self, _pair: &GcdPair, step: &Step) {
        let s = &mut self.stats;
        s.iterations += 1;
        s.mem_ops += step.mem_ops();
        s.rshift_bits += step.rshift_bits;
        if step.swapped {
            s.swaps += 1;
        }
        if step.kind == StepKind::ApproxBetaPositive {
            s.beta_nonzero += 1;
        }
        if let Some(c) = step.case {
            s.case_counts[c as usize] += 1;
        }
    }
}

/// A recorded iteration for the Tables I–III walkthroughs.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// 1-based iteration index.
    pub iteration: u64,
    /// The step descriptor.
    pub step: Step,
    /// `X` after the iteration.
    pub x_after: bulkgcd_bigint::Nat,
    /// `Y` after the iteration.
    pub y_after: bulkgcd_bigint::Nat,
}

/// Probe that records the full iteration history.
#[derive(Debug, Default, Clone)]
pub struct TraceProbe {
    /// One row per iteration, in execution order.
    pub rows: Vec<TraceRow>,
}

impl Probe for TraceProbe {
    fn step(&mut self, pair: &GcdPair, step: &Step) {
        self.rows.push(TraceRow {
            iteration: self.rows.len() as u64 + 1,
            step: step.clone(),
            x_after: pair.x_nat(),
            y_after: pair.y_nat(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulkgcd_bigint::Nat;

    fn dummy_step(kind: StepKind, lx: usize) -> Step {
        Step {
            kind,
            lx_before: lx,
            ly_before: lx,
            alpha: 1,
            beta: 0,
            case: None,
            rshift_bits: 2,
            swapped: true,
        }
    }

    #[test]
    fn mem_ops_accounting() {
        assert_eq!(dummy_step(StepKind::FastBinarySub, 16).mem_ops(), 48);
        assert_eq!(dummy_step(StepKind::ApproxBetaZero, 16).mem_ops(), 48);
        assert_eq!(dummy_step(StepKind::ApproxBetaPositive, 16).mem_ops(), 64);
        assert_eq!(dummy_step(StepKind::BinaryXEven, 16).mem_ops(), 32);
    }

    #[test]
    fn stats_probe_accumulates() {
        let pair = GcdPair::new(&Nat::from(9u32), &Nat::from(5u32));
        let mut p = StatsProbe::default();
        p.step(&pair, &dummy_step(StepKind::ApproxBetaZero, 4));
        p.step(&pair, &dummy_step(StepKind::ApproxBetaPositive, 4));
        assert_eq!(p.stats.iterations, 2);
        assert_eq!(p.stats.beta_nonzero, 1);
        assert_eq!(p.stats.swaps, 2);
        assert_eq!(p.stats.rshift_bits, 4);
        assert_eq!(p.stats.mem_ops, 12 + 16);
    }

    #[test]
    fn trace_probe_snapshots() {
        let pair = GcdPair::new(&Nat::from(9u32), &Nat::from(5u32));
        let mut p = TraceProbe::default();
        p.step(&pair, &dummy_step(StepKind::FastBinarySub, 1));
        assert_eq!(p.rows.len(), 1);
        assert_eq!(p.rows[0].iteration, 1);
        assert_eq!(p.rows[0].x_after, Nat::from(9u32));
    }
}
