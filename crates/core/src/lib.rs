//! # bulkgcd-core
//!
//! The primary contribution of *"Bulk GCD Computation Using a GPU to Break
//! Weak RSA Keys"* (Fujita, Nakano, Ito; IPDPSW 2015): the **Approximate
//! Euclidean algorithm** and the four Euclidean variants it is evaluated
//! against, implemented on the fixed multiword operand representation of
//! paper Fig. 1.
//!
//! * [`operand::GcdPair`] — two s-bit numbers in pre-allocated `s/d`-word
//!   buffers with pointer-swap `swap(X, Y)` and the fused one-pass
//!   `X ← rshift(X − α·Y)` update (§IV).
//! * [`approx::approx`] — the `(α, β)` quotient approximation from the top
//!   two 32-bit words, one 64-bit division, all eight paper cases (§III).
//! * [`algorithms`] — (A) Original, (B) Fast, (C) Binary, (D) Fast Binary
//!   and (E) Approximate Euclid, each with full and early (`s/2`-bit)
//!   termination (§V).
//! * [`lanes`] — branch-minimized per-lane step primitives (plan + fused
//!   column update) driving the lockstep SIMT-style engine in `bulkgcd-bulk`.
//! * [`probe`] — zero-cost instrumentation hooks recording iteration counts,
//!   β statistics, §IV memory-operation counts, and full traces.
//! * [`rankselect`] — succinct bit-vector rank/select (O(1) compacted-row ↔
//!   raw-position mapping) backing the corpus acceptance index used by the
//!   ingest and scan layers.
//! * [`smallword`] — generic-word-size (`d` parameter) reference
//!   implementations used to regenerate the paper's d = 4 worked examples
//!   (Tables I–III) and to cross-check the multiword code at d = 32.
//!
//! ## Quick example
//!
//! ```
//! use bulkgcd_bigint::Nat;
//! use bulkgcd_core::{gcd_nat, Algorithm};
//!
//! // The paper's running example: gcd(1043915, 768955) = 5.
//! let g = gcd_nat(
//!     Algorithm::Approximate,
//!     &Nat::from_u64(1_043_915),
//!     &Nat::from_u64(768_955),
//! );
//! assert_eq!(g, Nat::from_u64(5));
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod approx;
pub mod lanes;
pub mod lehmer;
pub mod operand;
pub mod probe;
pub mod rankselect;
pub mod smallword;

pub use algorithms::{gcd_nat, run, run_in_place, Algorithm, GcdOutcome, GcdStatus, Termination};
pub use approx::{approx, approx_top_words, Approx, ApproxCase};
pub use lanes::{
    copy_lane_columns, fused_submul_rshift_columns, fused_submul_rshift_columns_prefix, plan_lane,
    zero_lane_columns, LanePlan,
};
pub use lehmer::{lehmer_euclid, lehmer_gcd_nat};
pub use operand::GcdPair;
pub use probe::{NoProbe, Probe, RunStats, StatsProbe, Step, StepKind, TraceProbe};
pub use rankselect::{RankSelect, RankSelectBuilder};
