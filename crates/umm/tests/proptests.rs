//! Property tests for the UMM/DMM simulators: structural invariants that
//! must hold for *any* bulk trace, not just the ones the unit tests pick.

use bulkgcd_umm::sim::UmmConfig;
use bulkgcd_umm::{analyze, simulate, simulate_dmm, BulkTrace, Layout};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: a random bulk of up to `p` threads, each with up to `steps`
/// accesses over offsets < `words` (with idle gaps).
fn bulk(p: usize, steps: usize, words: usize) -> impl Strategy<Value = BulkTrace> {
    vec(
        vec(
            prop_oneof![(0..words).prop_map(Some), Just(None),],
            0..=steps,
        ),
        1..=p,
    )
    .prop_map(|threads| {
        let mut b = BulkTrace::with_threads(threads.len());
        for (th, accs) in b.threads.iter_mut().zip(threads) {
            for a in accs {
                match a {
                    Some(o) => th.read(o),
                    None => th.idle(),
                }
            }
        }
        b
    })
}

fn cfg() -> impl Strategy<Value = UmmConfig> {
    (1usize..=64, 1usize..=32).prop_map(|(w, l)| UmmConfig::new(w, l))
}

proptest! {
    #[test]
    fn umm_structural_invariants(b in bulk(24, 12, 40), cfg in cfg(), layout_row in any::<bool>()) {
        let layout = if layout_row { Layout::RowWise } else { Layout::ColumnWise };
        let r = simulate(&b, layout, cfg);
        // Each dispatch occupies at least one and at most w stages.
        prop_assert!(r.stages_occupied >= r.warp_dispatches);
        prop_assert!(r.stages_occupied <= r.warp_dispatches * cfg.width as u64);
        prop_assert!(r.coalesced_dispatches <= r.warp_dispatches);
        // Time accounts all stages plus at most (l-1) per step.
        prop_assert!(r.time_units >= r.stages_occupied);
        prop_assert!(
            r.time_units <= r.stages_occupied + r.steps * (cfg.latency as u64 - 1)
        );
    }

    #[test]
    fn umm_time_monotone_in_latency(b in bulk(16, 8, 20), w in 1usize..=32) {
        let lo = simulate(&b, Layout::ColumnWise, UmmConfig::new(w, 1));
        let hi = simulate(&b, Layout::ColumnWise, UmmConfig::new(w, 20));
        prop_assert!(hi.time_units >= lo.time_units);
        // Stage counts do not depend on latency.
        prop_assert_eq!(hi.stages_occupied, lo.stages_occupied);
    }

    #[test]
    fn dmm_structural_invariants(b in bulk(24, 12, 40), cfg in cfg(), layout_row in any::<bool>()) {
        let layout = if layout_row { Layout::RowWise } else { Layout::ColumnWise };
        let r = simulate_dmm(&b, layout, cfg);
        prop_assert!(r.stages_occupied >= r.warp_dispatches);
        prop_assert!(r.stages_occupied <= r.warp_dispatches * cfg.width as u64);
        prop_assert!(r.conflict_free_dispatches <= r.warp_dispatches);
        prop_assert!(r.time_units >= r.stages_occupied);
    }

    #[test]
    fn dmm_never_slower_than_worst_case_serialisation(b in bulk(16, 8, 20), w in 1usize..=16) {
        // Bank conflicts serialise at most w-fold, so stages are bounded by
        // the number of requests.
        let cfg = UmmConfig::new(w, 1);
        let r = simulate_dmm(&b, Layout::ColumnWise, cfg);
        prop_assert!(r.stages_occupied <= b.total_accesses().max(1));
    }

    #[test]
    fn oblivious_analysis_fractions_ordered(b in bulk(16, 10, 12)) {
        let r = analyze(&b);
        prop_assert!(r.uniform_steps <= r.near_uniform_steps);
        prop_assert!(r.near_uniform_steps <= r.active_steps);
        prop_assert!(r.active_steps <= r.steps);
        prop_assert!((0.0..=1.0).contains(&r.uniform_fraction()));
        prop_assert!(r.uniform_fraction() <= r.near_uniform_fraction());
    }

    #[test]
    fn single_thread_bulk_is_trivially_uniform(
        offsets in vec(0usize..50, 1..30)
    ) {
        let mut b = BulkTrace::with_threads(1);
        for &o in &offsets {
            b.threads[0].read(o);
        }
        let r = analyze(&b);
        prop_assert_eq!(r.uniform_fraction(), 1.0);
        // One thread = one request per step = always coalesced.
        let sim = simulate(&b, Layout::ColumnWise, UmmConfig::new(32, 4));
        prop_assert_eq!(sim.coalesced_fraction(), 1.0);
    }

    #[test]
    fn uniform_bulk_meets_theorem1_exactly(
        k in 1usize..=8, steps in 1usize..=16, w in 1usize..=32, l in 1usize..=16
    ) {
        // Theorem 1 assumes p is a multiple of w (full, aligned warps).
        let p = k * w;
        let mut b = BulkTrace::with_threads(p);
        for th in &mut b.threads {
            for i in 0..steps {
                th.read(i);
            }
        }
        let cfg = UmmConfig::new(w, l);
        let r = simulate(&b, Layout::ColumnWise, cfg);
        prop_assert_eq!(
            r.time_units,
            bulkgcd_umm::UmmReport::theorem1_bound(p, steps as u64, cfg)
        );
    }
}
