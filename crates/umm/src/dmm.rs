//! The Discrete Memory Machine (DMM) — Nakano's shared-memory counterpart
//! of the UMM (§I of the paper: "the address space of the shared memory is
//! mapped into several physical memory banks. If two or more threads access
//! the same memory banks at the same time, the access requests are
//! processed in turn").
//!
//! Where the UMM groups addresses by *contiguity* (`A[k] = {kw … (k+1)w−1}`,
//! modelling DRAM burst coalescing), the DMM groups them by *interleaving*
//! (`B[j] = {a : a ≡ j (mod w)}`, modelling shared-memory banks). A warp's
//! `w` requests complete in as many stages as the most-loaded bank receives
//! requests — the classic bank-conflict serialisation.
//!
//! The two models make opposite demands: a stride-1 sweep across threads is
//! one UMM address group (perfect) and also w distinct DMM banks (perfect),
//! but a stride-w sweep is w UMM groups (terrible) and one DMM bank
//! (terrible). The tests pin down both corners.

use crate::layout::Layout;
use crate::sim::UmmConfig;
use crate::trace::BulkTrace;

/// Outcome of simulating a bulk execution on the DMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmmReport {
    /// Total simulated time units.
    pub time_units: u64,
    /// Steps executed.
    pub steps: u64,
    /// Total warp dispatches.
    pub warp_dispatches: u64,
    /// Sum over dispatches of the maximum per-bank load (the serialisation
    /// cost; equals `warp_dispatches` when conflict-free).
    pub stages_occupied: u64,
    /// Dispatches with no bank conflict (max load 1).
    pub conflict_free_dispatches: u64,
}

impl DmmReport {
    /// Fraction of dispatches that were conflict-free.
    pub fn conflict_free_fraction(&self) -> f64 {
        if self.warp_dispatches == 0 {
            1.0
        } else {
            self.conflict_free_dispatches as f64 / self.warp_dispatches as f64
        }
    }
}

/// Simulate the bulk execution of `bulk` under `layout` on a DMM with
/// `cfg.width` banks and pipeline latency `cfg.latency`.
pub fn simulate_dmm(bulk: &BulkTrace, layout: Layout, cfg: UmmConfig) -> DmmReport {
    let p = bulk.p();
    let n_words = bulk.words_required().max(1);
    let steps = bulk.steps();
    let mut report = DmmReport {
        time_units: 0,
        steps: steps as u64,
        warp_dispatches: 0,
        stages_occupied: 0,
        conflict_free_dispatches: 0,
    };
    let mut bank_load = vec![0u64; cfg.width];
    for t in 0..steps {
        let mut step_stages = 0u64;
        let mut any = false;
        for warp_start in (0..p).step_by(cfg.width) {
            bank_load.fill(0);
            let mut issued = false;
            for j in warp_start..(warp_start + cfg.width).min(p) {
                if let Some(Some(acc)) = bulk.threads[j].accesses.get(t) {
                    let addr = layout.address(j, acc.offset(), p, n_words);
                    bank_load[addr % cfg.width] += 1;
                    issued = true;
                }
            }
            if !issued {
                continue;
            }
            any = true;
            let max_load = bank_load.iter().copied().max().unwrap_or(0);
            report.warp_dispatches += 1;
            report.stages_occupied += max_load;
            step_stages += max_load;
            if max_load == 1 {
                report.conflict_free_dispatches += 1;
            }
        }
        if any {
            report.time_units += step_stages + cfg.latency as u64 - 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::BulkTrace;

    /// Every thread reads the same logical offset each step.
    fn uniform_bulk(p: usize, steps: usize) -> BulkTrace {
        let mut b = BulkTrace::with_threads(p);
        for th in &mut b.threads {
            for i in 0..steps {
                th.read(i);
            }
        }
        b
    }

    #[test]
    fn column_wise_uniform_bulk_is_conflict_free() {
        // addr = o*p + j: within a warp, j mod w are all distinct banks.
        let cfg = UmmConfig::new(32, 1);
        let r = simulate_dmm(&uniform_bulk(64, 4), Layout::ColumnWise, cfg);
        assert_eq!(r.conflict_free_fraction(), 1.0);
        // 2 warps x 1 stage + l-1=0 per step.
        assert_eq!(r.time_units, 4 * 2);
    }

    #[test]
    fn row_wise_with_width_stride_hits_one_bank() {
        // n_words == w makes thread-row bases differ by w: every lane of a
        // warp lands in the same bank -> w-way serialisation.
        let w = 8;
        let cfg = UmmConfig::new(w, 1);
        let mut b = BulkTrace::with_threads(w);
        for th in &mut b.threads {
            for i in 0..w {
                th.read(i); // offsets 0..w => n_words = w
            }
        }
        let r = simulate_dmm(&b, Layout::RowWise, cfg);
        assert_eq!(r.conflict_free_dispatches, 0);
        // Each step: one warp, max bank load w.
        assert_eq!(r.stages_occupied, (w * w) as u64);
    }

    #[test]
    fn umm_and_dmm_disagree_by_design() {
        // The same row-wise bulk that is conflict-heavy on the DMM is also
        // group-scattered on the UMM — but a *stride-w within one thread
        // array* pattern separates the models: thread j reads offset
        // (j % n) so that a warp's addresses are a permutation within one
        // row block.
        let w = 8;
        let cfg = UmmConfig::new(w, 1);
        let mut b = BulkTrace::with_threads(w);
        for (j, th) in b.threads.iter_mut().enumerate() {
            th.read(j); // ColumnWise: addr = j*p + j = j*(p+1)
        }
        // ColumnWise with p = w: addr = j*w + j = j*(w+1); banks j*(w+1) mod w
        // = j mod w: all distinct (conflict-free DMM), but groups
        // j*(w+1)/w spread across w groups (worst-case UMM).
        let dmm = simulate_dmm(&b, Layout::ColumnWise, cfg);
        let umm = crate::sim::simulate(&b, Layout::ColumnWise, cfg);
        assert_eq!(dmm.conflict_free_fraction(), 1.0);
        assert_eq!(dmm.stages_occupied, 1);
        assert_eq!(umm.stages_occupied, w as u64);
    }

    #[test]
    fn idle_lanes_do_not_count() {
        let cfg = UmmConfig::new(4, 2);
        let mut b = BulkTrace::with_threads(4);
        b.threads[0].read(0);
        b.threads[1].idle();
        b.threads[2].read(0);
        b.threads[3].idle();
        // Two requests, both to bank (0*p+j) % 4 = {0, 2}: conflict-free.
        let r = simulate_dmm(&b, Layout::ColumnWise, cfg);
        assert_eq!(r.warp_dispatches, 1);
        assert_eq!(r.stages_occupied, 1);
        assert_eq!(r.time_units, 1 + 1);
    }

    #[test]
    fn empty_bulk() {
        let cfg = UmmConfig::new(4, 4);
        let r = simulate_dmm(&BulkTrace::with_threads(8), Layout::ColumnWise, cfg);
        assert_eq!(r.time_units, 0);
        assert_eq!(r.conflict_free_fraction(), 1.0);
    }
}
