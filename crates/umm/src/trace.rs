//! Per-thread memory access traces.
//!
//! A sequential algorithm's memory behaviour is a sequence of *logical*
//! accesses: at each time unit it touches one word of its working array, or
//! none (paper §VI: an algorithm is *oblivious* if the address touched at
//! time `i` is a function `a(i)` independent of the input). Bulk execution
//! replays `p` such traces in lock step; a [`crate::layout::Layout`] maps
//! logical offsets to global addresses.
//!
//! Traces may contain *idle* slots (`None`): in SIMT lock-step execution a
//! masked-off lane issues no request at that time unit while its warp
//! siblings do. Idle slots are what keeps the bulk step-aligned when threads
//! have data-dependent trip counts.

/// One logical access of a sequential algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Read the word at the logical offset.
    Read(usize),
    /// Write the word at the logical offset.
    Write(usize),
}

impl Access {
    /// The logical word offset, regardless of direction.
    #[inline]
    pub fn offset(&self) -> usize {
        match *self {
            Access::Read(o) | Access::Write(o) => o,
        }
    }
}

/// The access trace of one thread of a bulk execution. `None` entries are
/// idle time units (the lane was masked off).
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    /// Logical accesses in program order; `None` = idle slot.
    pub accesses: Vec<Option<Access>>,
}

impl ThreadTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of logical word `offset`.
    pub fn read(&mut self, offset: usize) {
        self.accesses.push(Some(Access::Read(offset)));
    }

    /// Record a write of logical word `offset`.
    pub fn write(&mut self, offset: usize) {
        self.accesses.push(Some(Access::Write(offset)));
    }

    /// Record an idle time unit (lane masked off).
    pub fn idle(&mut self) {
        self.accesses.push(None);
    }

    /// Number of time units (accesses plus idles).
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when no time unit was recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Number of real (non-idle) accesses.
    pub fn access_count(&self) -> usize {
        self.accesses.iter().flatten().count()
    }

    /// Highest logical offset touched plus one (the array size this trace
    /// needs), or 0 for an empty trace.
    pub fn words_required(&self) -> usize {
        self.accesses
            .iter()
            .flatten()
            .map(|a| a.offset() + 1)
            .max()
            .unwrap_or(0)
    }
}

/// A whole bulk execution: one trace per thread.
#[derive(Debug, Clone, Default)]
pub struct BulkTrace {
    /// Per-thread traces (thread `j` at index `j`).
    pub threads: Vec<ThreadTrace>,
}

impl BulkTrace {
    /// Bulk with `p` empty threads.
    pub fn with_threads(p: usize) -> Self {
        BulkTrace {
            threads: vec![ThreadTrace::new(); p],
        }
    }

    /// Number of threads `p`.
    pub fn p(&self) -> usize {
        self.threads.len()
    }

    /// Length of the longest thread trace (the bulk's step count).
    pub fn steps(&self) -> usize {
        self.threads.iter().map(|t| t.len()).max().unwrap_or(0)
    }

    /// Words each per-thread array must hold (max over threads).
    pub fn words_required(&self) -> usize {
        self.threads
            .iter()
            .map(|t| t.words_required())
            .max()
            .unwrap_or(0)
    }

    /// Total real accesses across all threads.
    pub fn total_accesses(&self) -> u64 {
        self.threads.iter().map(|t| t.access_count() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_in_order() {
        let mut t = ThreadTrace::new();
        t.read(3);
        t.idle();
        t.write(5);
        assert_eq!(
            t.accesses,
            vec![Some(Access::Read(3)), None, Some(Access::Write(5))]
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.access_count(), 2);
        assert_eq!(t.words_required(), 6);
    }

    #[test]
    fn empty_trace() {
        let t = ThreadTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.words_required(), 0);
    }

    #[test]
    fn bulk_dimensions() {
        let mut b = BulkTrace::with_threads(3);
        b.threads[0].read(0);
        b.threads[0].read(1);
        b.threads[2].write(9);
        assert_eq!(b.p(), 3);
        assert_eq!(b.steps(), 2);
        assert_eq!(b.words_required(), 10);
        assert_eq!(b.total_accesses(), 3);
    }
}
