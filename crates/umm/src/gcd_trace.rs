//! Warp-synchronized UMM traces of the bulk GCD algorithms (paper §VI).
//!
//! Each thread of a bulk runs one GCD; in SIMT execution the threads of a
//! warp proceed in lock step through the same instruction sequence, with
//! finished lanes (and lanes whose word-scan is shorter this iteration)
//! masked off. This module reconstructs that step-aligned access pattern
//! from per-iteration descriptors harvested by a [`bulkgcd_core::Probe`]:
//!
//! * iteration head — the `approx`/branch-decision reads of the top two
//!   words of `X` and `Y` (4 aligned slots);
//! * word scan — for each word `k` up to the warp's max `lX`, aligned slots
//!   for *read X\[k\]*, *read Y\[k\]*, *write X\[k\]* and the β>0 extra read;
//! * iteration tail — the `X < Y` comparison reads (2 aligned slots).
//!
//! Logical offsets place buffer A at `[0, cap)` and buffer B at
//! `[cap, 2·cap)`; the pointer `swap(X, Y)` flips which buffer each
//! thread's `X` lives in, which is one real source of divergence the
//! paper's "semi-oblivious" argument glosses over — the simulation makes
//! it measurable.

use crate::trace::BulkTrace;
use bulkgcd_bigint::Nat;
use bulkgcd_core::{run, Algorithm, GcdPair, Probe, Step, StepKind, Termination};

/// Per-iteration descriptor, enough to reconstruct the iteration's accesses.
#[derive(Debug, Clone, Copy)]
pub struct IterDesc {
    /// Branch taken.
    pub kind: StepKind,
    /// `lX` before the update.
    pub lx: usize,
    /// `lY` before the update.
    pub ly: usize,
    /// Whether `X` lived in physical buffer A before the update.
    pub x_in_a: bool,
}

/// Probe collecting [`IterDesc`]s.
#[derive(Debug, Default, Clone)]
pub struct IterProbe {
    /// One descriptor per do-while iteration.
    pub iters: Vec<IterDesc>,
}

impl Probe for IterProbe {
    fn step(&mut self, pair: &GcdPair, step: &Step) {
        // The probe fires after the update and swap; undo the swap to learn
        // where X lived while the iteration's scan ran.
        let after = pair.x_in_buffer_a();
        let x_in_a = if step.swapped { !after } else { after };
        self.iters.push(IterDesc {
            kind: step.kind,
            lx: step.lx_before,
            ly: step.ly_before,
            x_in_a,
        });
    }
}

/// Slots emitted per scanned word (read X, read Y, write X, β>0 extra read).
const WORD_SLOTS: usize = 4;
/// Slots for the iteration head (top-two-word reads of X and Y).
const HEAD_SLOTS: usize = 4;
/// Slots for the trailing `X < Y` comparison.
const TAIL_SLOTS: usize = 2;

fn emit_iteration(trace: &mut crate::trace::ThreadTrace, it: &IterDesc, cap: usize, max_lx: usize) {
    let (xb, yb) = if it.x_in_a { (0, cap) } else { (cap, 0) };
    // Head: approx / branch decision reads x1, x2, y1, y2.
    trace.read(xb + it.lx.saturating_sub(1));
    trace.read(xb + it.lx.saturating_sub(2));
    trace.read(yb + it.ly.saturating_sub(1));
    trace.read(yb + it.ly.saturating_sub(2));
    // Word scan, padded to the warp-wide max trip count.
    for k in 0..max_lx {
        let (reads_x, reads_y, writes_x, extra_y) = match it.kind {
            StepKind::BinaryXEven => (k < it.lx, false, k < it.lx, false),
            StepKind::BinaryYEven => (false, k < it.ly, false, false),
            StepKind::ApproxBetaPositive => (k < it.lx, k < it.ly, k < it.lx, k < it.ly),
            // Lehmer touches Y a second time (the second linear
            // combination); the UMM prices reads and writes identically,
            // so the extra slot models it.
            StepKind::LehmerBatch => (k < it.lx, k < it.ly, k < it.lx, k < it.ly),
            _ => (k < it.lx, k < it.ly, k < it.lx, false),
        };
        if reads_x {
            trace.read(xb + k);
        } else {
            trace.idle();
        }
        if reads_y {
            trace.read(yb + k);
        } else {
            trace.idle();
        }
        // BinaryYEven writes Y, everything else writes X (when active).
        if it.kind == StepKind::BinaryYEven {
            if k < it.ly {
                trace.write(yb + k);
            } else {
                trace.idle();
            }
        } else if writes_x {
            trace.write(xb + k);
        } else {
            trace.idle();
        }
        if extra_y {
            trace.read(yb + k);
        } else {
            trace.idle();
        }
    }
    // Tail: the X < Y comparison reads the top words (O(1) w.h.p., §IV).
    trace.read(xb + it.lx.saturating_sub(1));
    trace.read(yb + it.ly.saturating_sub(1));
}

fn emit_idle_iteration(trace: &mut crate::trace::ThreadTrace, max_lx: usize) {
    for _ in 0..HEAD_SLOTS + max_lx * WORD_SLOTS + TAIL_SLOTS {
        trace.idle();
    }
}

/// Run `algo` on every input pair and reconstruct the warp-synchronized
/// bulk trace **as a fully oblivious kernel would execute it**: every
/// iteration scans the full `cap`-word buffers regardless of the live
/// `lX`/`lY`, and the head/tail reads always touch the fixed top words.
/// This is the paper's theoretical ideal (§VI: an oblivious algorithm's
/// address at each time unit is input-independent): perfect coalescing,
/// bought with `cap/lX`-fold redundant word traffic as the operands
/// shrink. Comparing it against [`bulk_gcd_trace`] quantifies that trade.
pub fn bulk_gcd_trace_oblivious(
    algo: Algorithm,
    inputs: &[(Nat, Nat)],
    term: Termination,
) -> BulkTrace {
    let cap = inputs
        .iter()
        .map(|(a, b)| a.len().max(b.len()))
        .max()
        .unwrap_or(1)
        .max(1);
    let per_thread: Vec<Vec<IterDesc>> = inputs
        .iter()
        .map(|(a, b)| {
            let mut pair = GcdPair::new(a, b);
            let mut probe = IterProbe::default();
            run(algo, &mut pair, term, &mut probe);
            // Obliviousness: pretend every iteration scans the full
            // buffers from a fixed pointer assignment.
            for d in &mut probe.iters {
                d.lx = cap;
                d.ly = cap;
                d.x_in_a = true;
            }
            probe.iters
        })
        .collect();
    assemble(per_thread, cap, inputs.len())
}

/// Run `algo` on every input pair and reconstruct the warp-synchronized
/// bulk trace. All pairs share one logical buffer capacity `cap` (words),
/// taken from the widest input.
pub fn bulk_gcd_trace(algo: Algorithm, inputs: &[(Nat, Nat)], term: Termination) -> BulkTrace {
    let cap = inputs
        .iter()
        .map(|(a, b)| a.len().max(b.len()))
        .max()
        .unwrap_or(1)
        .max(1);
    // Harvest per-thread iteration descriptors.
    let per_thread: Vec<Vec<IterDesc>> = inputs
        .iter()
        .map(|(a, b)| {
            let mut pair = GcdPair::new(a, b);
            let mut probe = IterProbe::default();
            run(algo, &mut pair, term, &mut probe);
            probe.iters
        })
        .collect();
    assemble(per_thread, cap, inputs.len())
}

/// Align per-thread iteration descriptors into a step-synchronized bulk.
fn assemble(per_thread: Vec<Vec<IterDesc>>, cap: usize, p: usize) -> BulkTrace {
    let max_iters = per_thread.iter().map(|v| v.len()).max().unwrap_or(0);
    let mut bulk = BulkTrace::with_threads(p);
    for i in 0..max_iters {
        // Warp-wide trip count this iteration (lanes past their last
        // iteration are masked and contribute nothing).
        let max_lx = per_thread
            .iter()
            .filter_map(|v| v.get(i))
            .map(|d| d.lx)
            .max()
            .unwrap_or(0);
        for (j, descs) in per_thread.iter().enumerate() {
            match descs.get(i) {
                Some(d) => emit_iteration(&mut bulk.threads[j], d, cap, max_lx),
                None => emit_idle_iteration(&mut bulk.threads[j], max_lx),
            }
        }
    }
    bulk
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use crate::oblivious;
    use crate::sim::{simulate, UmmConfig};
    use bulkgcd_bigint::random::random_odd_bits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_inputs(p: usize, bits: u64, seed: u64) -> Vec<(Nat, Nat)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                (
                    random_odd_bits(&mut rng, bits),
                    random_odd_bits(&mut rng, bits),
                )
            })
            .collect()
    }

    #[test]
    fn traces_are_step_aligned() {
        let inputs = random_inputs(8, 192, 1);
        let bulk = bulk_gcd_trace(Algorithm::Approximate, &inputs, Termination::Full);
        let len0 = bulk.threads[0].len();
        for th in &bulk.threads {
            assert_eq!(th.len(), len0, "all threads must be step-aligned");
        }
    }

    #[test]
    fn approximate_is_semi_oblivious() {
        let inputs = random_inputs(16, 256, 2);
        let bulk = bulk_gcd_trace(Algorithm::Approximate, &inputs, Termination::Full);
        let r = oblivious::analyze(&bulk);
        // The word-scan body dominates and involves at most the two swap
        // buffers, so the near-uniform (<= 2 offsets) fraction must be high.
        assert!(
            r.near_uniform_fraction() > 0.8,
            "near-uniform fraction {} too low",
            r.near_uniform_fraction()
        );
    }

    #[test]
    fn column_wise_beats_row_wise_on_gcd_bulk() {
        // The coalescing advantage shows once enough warps are in flight to
        // hide the pipeline latency (Theorem 1 regime: p/w >= l); with only
        // a couple of warps the `l - 1` term dominates both layouts.
        let inputs = random_inputs(1024, 256, 3);
        let bulk = bulk_gcd_trace(
            Algorithm::Approximate,
            &inputs,
            Termination::Early {
                threshold_bits: 128,
            },
        );
        let cfg = UmmConfig::new(32, 32);
        let col = simulate(&bulk, Layout::ColumnWise, cfg);
        let row = simulate(&bulk, Layout::RowWise, cfg);
        assert!(
            col.time_units * 3 < row.time_units,
            "column-wise {} vs row-wise {}",
            col.time_units,
            row.time_units
        );
        assert!(col.coalesced_fraction() > row.coalesced_fraction());
    }

    #[test]
    fn fewer_iterations_means_shorter_trace() {
        let inputs = random_inputs(8, 256, 4);
        let e = bulk_gcd_trace(Algorithm::Approximate, &inputs, Termination::Full);
        let d = bulk_gcd_trace(Algorithm::FastBinary, &inputs, Termination::Full);
        let c = bulk_gcd_trace(Algorithm::Binary, &inputs, Termination::Full);
        assert!(e.steps() < d.steps());
        assert!(d.steps() < c.steps());
    }

    #[test]
    fn early_termination_shortens_traces() {
        let inputs = random_inputs(8, 256, 5);
        let full = bulk_gcd_trace(Algorithm::Approximate, &inputs, Termination::Full);
        let early = bulk_gcd_trace(
            Algorithm::Approximate,
            &inputs,
            Termination::Early {
                threshold_bits: 128,
            },
        );
        assert!(early.steps() < full.steps());
    }

    #[test]
    fn oblivious_variant_is_fully_uniform_but_does_more_work() {
        let inputs = random_inputs(16, 256, 6);
        let semi = bulk_gcd_trace(Algorithm::Approximate, &inputs, Termination::Full);
        let obl = bulk_gcd_trace_oblivious(Algorithm::Approximate, &inputs, Termination::Full);
        let semi_r = crate::oblivious::analyze(&semi);
        let obl_r = crate::oblivious::analyze(&obl);
        // Oblivious: every active step touches exactly one logical offset.
        assert_eq!(obl_r.uniform_fraction(), 1.0);
        assert!(semi_r.uniform_fraction() < 1.0);
        // But it moves strictly more words (full-capacity scans).
        assert!(obl.total_accesses() > semi.total_accesses());
        // On the UMM, perfect coalescing can still lose overall when the
        // redundant traffic outweighs the stage savings; just check both
        // simulate cleanly and the oblivious one is fully coalesced.
        let cfg = UmmConfig::new(32, 8);
        let obl_sim = simulate(&obl, Layout::ColumnWise, cfg);
        assert_eq!(obl_sim.coalesced_fraction(), 1.0);
    }

    #[test]
    fn empty_input_bulk() {
        let bulk = bulk_gcd_trace(Algorithm::Approximate, &[], Termination::Full);
        assert_eq!(bulk.p(), 0);
        assert_eq!(bulk.steps(), 0);
    }
}
