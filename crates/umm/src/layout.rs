//! Memory layouts for bulk execution (paper Fig. 3).
//!
//! A bulk execution runs `p` copies of a sequential algorithm, each working
//! on its own logical array `b_j` of `n` words. The global-memory address of
//! `b_j[i]` depends on the arrangement:
//!
//! * **column-wise** (the paper's choice): `addr(j, i) = i · p + j` — when
//!   all threads touch the same logical offset `i` at the same time, the `p`
//!   requests hit `p` consecutive addresses and coalesce perfectly;
//! * **row-wise** (the naive arrangement): `addr(j, i) = j · n + i` — the
//!   same access pattern scatters across `p` distinct address groups.

/// How the `p` per-thread arrays are arranged in global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// `b_j[i] ↦ i · p + j`: coalesced for lock-step bulk execution.
    ColumnWise,
    /// `b_j[i] ↦ j · n + i`: the cautionary baseline.
    RowWise,
}

impl Layout {
    /// Global address of logical word `offset` of thread `thread`, for a
    /// bulk of `p` threads whose per-thread arrays have `n_words` words.
    #[inline]
    pub fn address(&self, thread: usize, offset: usize, p: usize, n_words: usize) -> usize {
        debug_assert!(thread < p);
        debug_assert!(offset < n_words);
        match self {
            Layout::ColumnWise => offset * p + thread,
            Layout::RowWise => thread * n_words + offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_wise_is_fig3() {
        // Fig. 3: p = 8 arrays of n = 4 words; b_j[i] at address i*8 + j.
        let p = 8;
        let n = 4;
        assert_eq!(Layout::ColumnWise.address(0, 0, p, n), 0);
        assert_eq!(Layout::ColumnWise.address(3, 0, p, n), 3);
        assert_eq!(Layout::ColumnWise.address(0, 1, p, n), 8);
        assert_eq!(Layout::ColumnWise.address(5, 2, p, n), 21);
    }

    #[test]
    fn row_wise_scatters() {
        let p = 8;
        let n = 4;
        assert_eq!(Layout::RowWise.address(0, 1, p, n), 1);
        assert_eq!(Layout::RowWise.address(5, 2, p, n), 22);
    }

    #[test]
    fn addresses_are_unique_per_layout() {
        let p = 6;
        let n = 5;
        for layout in [Layout::ColumnWise, Layout::RowWise] {
            let mut seen = std::collections::HashSet::new();
            for j in 0..p {
                for i in 0..n {
                    assert!(seen.insert(layout.address(j, i, p, n)), "{layout:?}");
                }
            }
            assert_eq!(seen.len(), p * n);
        }
    }

    #[test]
    fn same_offset_across_threads_is_contiguous_only_column_wise() {
        let p = 4;
        let n = 8;
        let col: Vec<_> = (0..p)
            .map(|j| Layout::ColumnWise.address(j, 3, p, n))
            .collect();
        assert_eq!(col, vec![12, 13, 14, 15]);
        let row: Vec<_> = (0..p)
            .map(|j| Layout::RowWise.address(j, 3, p, n))
            .collect();
        assert_eq!(row, vec![3, 11, 19, 27]);
    }
}
