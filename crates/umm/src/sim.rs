//! The UMM simulator (paper §VI, Fig. 2).
//!
//! The UMM with width `w` and latency `l` partitions memory into *address
//! groups* `A[k] = {k·w, …, (k+1)·w − 1}` and serves requests through an
//! `l`-stage pipeline. Threads are grouped into warps of `w`; warps are
//! dispatched round-robin, and a dispatched warp's `w` requests occupy one
//! pipeline stage **per distinct address group touched**. A round of
//! dispatches that occupies `g` stages in total completes in `g + l − 1`
//! time units (the pipeline overlaps the latency of consecutive stages).
//!
//! Bulk executions here are *step-aligned*: at step `t` every still-running
//! thread issues its `t`-th logical access (this is exactly the lock-step
//! SIMT execution the paper's bulk model assumes; a thread whose trace has
//! ended issues nothing, and per the model a warp with no requests is not
//! dispatched).

use crate::layout::Layout;
use crate::trace::BulkTrace;

/// UMM machine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UmmConfig {
    /// Width `w`: threads per warp and words per address group.
    pub width: usize,
    /// Latency `l` of the memory pipeline, in time units.
    pub latency: usize,
}

impl UmmConfig {
    /// A new configuration. Both parameters must be at least 1.
    pub fn new(width: usize, latency: usize) -> Self {
        assert!(width >= 1 && latency >= 1);
        UmmConfig { width, latency }
    }
}

/// Outcome of simulating a bulk execution on the UMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UmmReport {
    /// Total simulated time units.
    pub time_units: u64,
    /// Steps executed (length of the longest thread trace).
    pub steps: u64,
    /// Total warp dispatches.
    pub warp_dispatches: u64,
    /// Total pipeline stages occupied (= Σ distinct address groups per
    /// dispatch). For perfectly coalesced traffic this equals
    /// `warp_dispatches`.
    pub stages_occupied: u64,
    /// Dispatches whose requests all fell in a single address group.
    pub coalesced_dispatches: u64,
}

impl UmmReport {
    /// Fraction of dispatches that were perfectly coalesced.
    pub fn coalesced_fraction(&self) -> f64 {
        if self.warp_dispatches == 0 {
            1.0
        } else {
            self.coalesced_dispatches as f64 / self.warp_dispatches as f64
        }
    }

    /// The Theorem 1 upper bound `(p/w + l − 1) · t` for a fully oblivious,
    /// column-wise bulk of `p` threads over `t` steps.
    pub fn theorem1_bound(p: usize, steps: u64, cfg: UmmConfig) -> u64 {
        let rounds_per_step = p.div_ceil(cfg.width) as u64;
        (rounds_per_step + cfg.latency as u64 - 1) * steps
    }
}

/// Simulate the bulk execution of `bulk` under `layout` on the UMM `cfg`.
///
/// Every step: all active threads issue one request; warps are dispatched
/// round-robin; each dispatch occupies one pipeline stage per distinct
/// address group among its live requests; the step completes after
/// `stages + l − 1` time units.
///
/// ```
/// use bulkgcd_umm::{simulate, BulkTrace, Layout, UmmConfig, UmmReport};
///
/// // An oblivious bulk: 64 threads each scanning offsets 0..8 in step.
/// let mut bulk = BulkTrace::with_threads(64);
/// for th in &mut bulk.threads {
///     for i in 0..8 {
///         th.read(i);
///     }
/// }
/// let cfg = UmmConfig::new(32, 16);
/// let col = simulate(&bulk, Layout::ColumnWise, cfg);
/// // Column-wise coalesces perfectly and meets Theorem 1 exactly.
/// assert_eq!(col.coalesced_fraction(), 1.0);
/// assert_eq!(col.time_units, UmmReport::theorem1_bound(64, 8, cfg));
/// // Row-wise scatters the same accesses across w-fold more groups.
/// assert!(simulate(&bulk, Layout::RowWise, cfg).time_units > col.time_units);
/// ```
pub fn simulate(bulk: &BulkTrace, layout: Layout, cfg: UmmConfig) -> UmmReport {
    let p = bulk.p();
    let n_words = bulk.words_required().max(1);
    let steps = bulk.steps();
    let mut report = UmmReport {
        time_units: 0,
        steps: steps as u64,
        warp_dispatches: 0,
        stages_occupied: 0,
        coalesced_dispatches: 0,
    };
    let mut groups = Vec::with_capacity(cfg.width);
    for t in 0..steps {
        let mut step_stages = 0u64;
        let mut any = false;
        for warp_start in (0..p).step_by(cfg.width) {
            groups.clear();
            for j in warp_start..(warp_start + cfg.width).min(p) {
                if let Some(Some(acc)) = bulk.threads[j].accesses.get(t) {
                    let addr = layout.address(j, acc.offset(), p, n_words);
                    let group = addr / cfg.width;
                    if !groups.contains(&group) {
                        groups.push(group);
                    }
                }
            }
            if groups.is_empty() {
                continue; // warp has no request: not dispatched (paper §VI)
            }
            any = true;
            report.warp_dispatches += 1;
            report.stages_occupied += groups.len() as u64;
            step_stages += groups.len() as u64;
            if groups.len() == 1 {
                report.coalesced_dispatches += 1;
            }
        }
        if any {
            report.time_units += step_stages + cfg.latency as u64 - 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a fully oblivious bulk: every thread performs the same `steps`
    /// sequential offsets.
    fn oblivious_bulk(p: usize, steps: usize) -> BulkTrace {
        let mut b = BulkTrace::with_threads(p);
        for th in &mut b.threads {
            for i in 0..steps {
                th.read(i);
            }
        }
        b
    }

    #[test]
    fn fig2_example_timing() {
        // Paper Fig. 2 walkthrough: w = 4, l = 5. W(0)'s four requests span
        // 3 address groups, W(1)'s span 1; all complete in
        // 3 + 1 + 5 − 1 = 8 time units.
        //
        // ColumnWise with p = 8 maps (thread j, offset o) to o·8 + j, so
        // offsets (0,0,1,2 | 1,1,1,1) give W(0) addresses {0,1,10,19}
        // (groups 0,2,4 — three groups) and W(1) addresses {12,13,14,15}
        // (group 3 — one group).
        let cfg = UmmConfig::new(4, 5);
        let mut b = BulkTrace::with_threads(8);
        let offsets = [0usize, 0, 1, 2, 1, 1, 1, 1];
        for (j, &o) in offsets.iter().enumerate() {
            b.threads[j].read(o);
        }
        let r = simulate(&b, Layout::ColumnWise, cfg);
        assert_eq!(r.warp_dispatches, 2);
        assert_eq!(r.stages_occupied, 3 + 1);
        assert_eq!(r.coalesced_dispatches, 1);
        assert_eq!(r.time_units, 3 + 1 + 5 - 1);
    }

    #[test]
    fn oblivious_column_wise_is_fully_coalesced() {
        let cfg = UmmConfig::new(32, 100);
        let r = simulate(&oblivious_bulk(128, 10), Layout::ColumnWise, cfg);
        assert_eq!(r.coalesced_fraction(), 1.0);
        // p/w = 4 dispatches per step, 1 stage each; per step 4 + 99.
        assert_eq!(r.time_units, 10 * (4 + 99));
        assert_eq!(r.time_units, UmmReport::theorem1_bound(128, 10, cfg));
    }

    #[test]
    fn row_wise_pays_width_factor() {
        let cfg = UmmConfig::new(32, 1);
        let p = 128;
        let steps = 8;
        // Make each thread's array at least w words so row-wise scatters
        // every warp across w distinct groups.
        let mut b = BulkTrace::with_threads(p);
        for th in &mut b.threads {
            for i in 0..steps {
                th.read(i * 5 % 40); // touches offsets < 40
            }
        }
        let col = simulate(&b, Layout::ColumnWise, cfg);
        let row = simulate(&b, Layout::RowWise, cfg);
        // With l = 1, time == stages; row-wise should be ~w times slower.
        assert_eq!(col.time_units * 32, row.time_units);
    }

    #[test]
    fn ragged_traces_stop_dispatching_finished_warps() {
        let cfg = UmmConfig::new(4, 2);
        let mut b = BulkTrace::with_threads(8);
        // Warp 0 threads run 3 steps; warp 1 threads run 1 step.
        for j in 0..4 {
            for i in 0..3 {
                b.threads[j].read(i);
            }
        }
        for j in 4..8 {
            b.threads[j].read(0);
        }
        let r = simulate(&b, Layout::ColumnWise, cfg);
        // step 0: both warps (2 stages); steps 1,2: warp 0 only (1 stage).
        assert_eq!(r.warp_dispatches, 4);
        assert_eq!(r.time_units, (2 + 1) + (1 + 1) + (1 + 1));
    }

    #[test]
    fn empty_bulk_costs_nothing() {
        let cfg = UmmConfig::new(8, 4);
        let r = simulate(&BulkTrace::with_threads(16), Layout::ColumnWise, cfg);
        assert_eq!(r.time_units, 0);
        assert_eq!(r.coalesced_fraction(), 1.0);
    }

    #[test]
    fn single_thread_bulk() {
        let cfg = UmmConfig::new(32, 10);
        let mut b = BulkTrace::with_threads(1);
        b.threads[0].read(0);
        b.threads[0].write(1);
        let r = simulate(&b, Layout::ColumnWise, cfg);
        assert_eq!(r.warp_dispatches, 2);
        assert_eq!(r.time_units, 2 * (1 + 9));
    }
}
