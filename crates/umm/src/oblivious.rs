//! Obliviousness analysis (paper §VI).
//!
//! A sequential algorithm is *oblivious* when the address it accesses at
//! each time unit is input-independent; a bulk of such an algorithm touches
//! one logical offset per step across all threads, which is what makes the
//! column-wise layout coalesce perfectly. The paper argues Approximate
//! Euclid is *semi-oblivious*: the bulk may diverge in "few time units".
//! This module quantifies that claim on real traces.

use crate::trace::BulkTrace;

/// Measured obliviousness of a bulk trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ObliviousReport {
    /// Aligned steps inspected (length of the longest thread trace).
    pub steps: usize,
    /// Steps where every active thread touched the **same logical offset**
    /// (the oblivious ideal; coalesced under column-wise layout).
    pub uniform_steps: usize,
    /// Steps where active threads touched at most two distinct offsets
    /// (e.g. the same word of either of the two swap buffers).
    pub near_uniform_steps: usize,
    /// Steps with at least one active thread.
    pub active_steps: usize,
}

impl ObliviousReport {
    /// Fraction of active steps that were perfectly uniform.
    pub fn uniform_fraction(&self) -> f64 {
        if self.active_steps == 0 {
            1.0
        } else {
            self.uniform_steps as f64 / self.active_steps as f64
        }
    }

    /// Fraction of active steps with at most two distinct offsets.
    pub fn near_uniform_fraction(&self) -> f64 {
        if self.active_steps == 0 {
            1.0
        } else {
            self.near_uniform_steps as f64 / self.active_steps as f64
        }
    }
}

/// Analyse how input-dependent the step-aligned addresses of `bulk` are.
pub fn analyze(bulk: &BulkTrace) -> ObliviousReport {
    let steps = bulk.steps();
    let mut uniform = 0;
    let mut near_uniform = 0;
    let mut active = 0;
    let mut offsets: Vec<usize> = Vec::with_capacity(4);
    for t in 0..steps {
        offsets.clear();
        let mut any = false;
        for th in &bulk.threads {
            if let Some(Some(acc)) = th.accesses.get(t) {
                any = true;
                let o = acc.offset();
                if !offsets.contains(&o) {
                    offsets.push(o);
                }
            }
        }
        if !any {
            continue;
        }
        active += 1;
        if offsets.len() == 1 {
            uniform += 1;
            near_uniform += 1;
        } else if offsets.len() == 2 {
            near_uniform += 1;
        }
    }
    ObliviousReport {
        steps,
        uniform_steps: uniform,
        near_uniform_steps: near_uniform,
        active_steps: active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::BulkTrace;

    #[test]
    fn fully_oblivious_bulk_is_uniform() {
        let mut b = BulkTrace::with_threads(4);
        for th in &mut b.threads {
            th.read(0);
            th.write(1);
            th.read(2);
        }
        let r = analyze(&b);
        assert_eq!(r.active_steps, 3);
        assert_eq!(r.uniform_steps, 3);
        assert_eq!(r.uniform_fraction(), 1.0);
    }

    #[test]
    fn divergent_step_detected() {
        let mut b = BulkTrace::with_threads(3);
        b.threads[0].read(0);
        b.threads[1].read(5);
        b.threads[2].read(9);
        let r = analyze(&b);
        assert_eq!(r.uniform_steps, 0);
        assert_eq!(r.near_uniform_steps, 0);
        assert_eq!(r.active_steps, 1);
    }

    #[test]
    fn two_offsets_counts_as_near_uniform() {
        let mut b = BulkTrace::with_threads(4);
        for (j, th) in b.threads.iter_mut().enumerate() {
            th.read(if j % 2 == 0 { 3 } else { 7 });
        }
        let r = analyze(&b);
        assert_eq!(r.uniform_steps, 0);
        assert_eq!(r.near_uniform_steps, 1);
    }

    #[test]
    fn idle_lanes_do_not_break_uniformity() {
        let mut b = BulkTrace::with_threads(3);
        b.threads[0].read(4);
        b.threads[1].idle();
        b.threads[2].read(4);
        let r = analyze(&b);
        assert_eq!(r.uniform_steps, 1);
    }

    #[test]
    fn empty_bulk() {
        let r = analyze(&BulkTrace::with_threads(2));
        assert_eq!(r.active_steps, 0);
        assert_eq!(r.uniform_fraction(), 1.0);
    }
}
