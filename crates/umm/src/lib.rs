//! # bulkgcd-umm
//!
//! The **Unified Memory Machine** (UMM) of Nakano et al. — the theoretical
//! machine the paper uses to reason about GPU global-memory performance
//! (§VI, Fig. 2/3, Theorem 1) — implemented as a discrete simulator.
//!
//! * [`sim`] — warps of width `w`, address groups, the `l`-stage memory
//!   pipeline, round-robin dispatch, and time-unit accounting; validated
//!   against the paper's Fig. 2 walkthrough and the Theorem 1 bound
//!   `O(pt/w + lt)`.
//! * [`layout`] — the column-wise arrangement of Fig. 3 (coalesced bulk
//!   access) versus the naive row-wise baseline.
//! * [`trace`] — step-aligned per-thread logical access traces with masked
//!   (idle) lanes, the SIMT execution shape.
//! * [`oblivious`] — quantifies the paper's "semi-oblivious" claim on real
//!   traces.
//! * [`gcd_trace`] — reconstructs warp-synchronized bulk traces of the five
//!   Euclidean variants from `bulkgcd-core` probes.

#![warn(missing_docs)]

pub mod dmm;
pub mod gcd_trace;
pub mod layout;
pub mod oblivious;
pub mod sim;
pub mod trace;

pub use dmm::{simulate_dmm, DmmReport};
pub use layout::Layout;
pub use oblivious::{analyze, ObliviousReport};
pub use sim::{simulate, UmmConfig, UmmReport};
pub use trace::{Access, BulkTrace, ThreadTrace};
