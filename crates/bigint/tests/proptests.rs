//! Property-based tests for the arithmetic substrate.
//!
//! Two independent oracles are used: `u128` built-in arithmetic for narrow
//! operands, and algebraic identities (reconstruction, inverses, roundtrips)
//! for wide ones.

use bulkgcd_bigint::nat::Nat;
use bulkgcd_bigint::{ops, Limb};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: an arbitrary Nat up to `max_limbs` limbs.
fn nat(max_limbs: usize) -> impl Strategy<Value = Nat> {
    vec(any::<Limb>(), 0..=max_limbs).prop_map(|v| Nat::from_limbs(&v))
}

/// Strategy: a non-zero Nat up to `max_limbs` limbs.
fn nat_nonzero(max_limbs: usize) -> impl Strategy<Value = Nat> {
    nat(max_limbs).prop_filter("non-zero", |n| !n.is_zero())
}

proptest! {
    // ---- u128 oracle ----

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let s = Nat::from_u64(a).add(&Nat::from_u64(b));
        prop_assert_eq!(s.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = Nat::from_u64(a).mul(&Nat::from_u64(b));
        prop_assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = Nat::from_u128(a).div_rem(&Nat::from_u128(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn shifts_match_u128(a in any::<u128>(), r in 0u64..127) {
        prop_assert_eq!(Nat::from_u128(a).shr(r).to_u128(), Some(a >> r));
        let masked = a >> r; // keep shl in range
        prop_assert_eq!(Nat::from_u128(masked).shl(r).to_u128(), Some(masked << r));
    }

    #[test]
    fn gcd_reference_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        fn gcd(mut a: u128, mut b: u128) -> u128 {
            while b != 0 { let t = a % b; a = b; b = t; }
            a
        }
        prop_assert_eq!(
            Nat::from_u128(a).gcd_reference(&Nat::from_u128(b)),
            Nat::from_u128(gcd(a, b))
        );
    }

    // ---- algebraic identities on wide operands ----

    #[test]
    fn add_sub_roundtrip(a in nat(24), b in nat(24)) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn add_commutes(a in nat(24), b in nat(24)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn mul_commutes_and_distributes(a in nat(12), b in nat(12), c in nat(12)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn division_reconstruction(a in nat(24), b in nat_nonzero(12)) {
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r < b);
    }

    #[test]
    fn exact_division_recovers_factor(a in nat_nonzero(12), b in nat_nonzero(12)) {
        let p = a.mul(&b);
        prop_assert_eq!(p.div(&b), a.clone());
        prop_assert!(p.rem(&b).is_zero());
        prop_assert_eq!(p.div(&a), b);
    }

    #[test]
    fn shl_shr_roundtrip(a in nat(16), r in 0u64..200) {
        prop_assert_eq!(a.shl(r).shr(r), a);
    }

    #[test]
    fn rshift_makes_odd(a in nat_nonzero(16)) {
        let (v, r) = a.rshift();
        prop_assert!(v.is_odd());
        prop_assert_eq!(v.shl(r), a);
    }

    #[test]
    fn hex_decimal_roundtrip(a in nat(20)) {
        prop_assert_eq!(Nat::from_hex(&a.to_hex()).unwrap(), a.clone());
        prop_assert_eq!(Nat::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    #[test]
    fn bit_len_bounds(a in nat_nonzero(16)) {
        let bits = a.bit_len();
        prop_assert!(a >= Nat::one().shl(bits - 1));
        prop_assert!(a < Nat::one().shl(bits));
    }

    // ---- slice kernels ----

    #[test]
    fn submul_assign_matches_composition(
        a in nat_nonzero(16), b in nat(8), alpha in any::<u32>()
    ) {
        let ab = b.mul_u32(alpha);
        prop_assume!(ab <= a && b.len() <= a.len());
        let mut x = a.limbs().to_vec();
        let borrow = ops::submul_assign(&mut x, b.limbs(), alpha);
        prop_assert_eq!(borrow, 0);
        prop_assert_eq!(Nat::from_limbs(&x), a.sub(&ab));
    }

    #[test]
    fn fused_submul_rshift_matches_composition(
        a in nat_nonzero(16), b in nat(8), alpha in any::<u32>()
    ) {
        let ab = b.mul_u32(alpha);
        prop_assume!(ab <= a && b.len() <= a.len());
        let mut x = a.limbs().to_vec();
        let (len, r) = ops::fused_submul_rshift(&mut x, b.limbs(), alpha);
        let expect = a.sub(&ab);
        let (expect_shifted, expect_r) = expect.rshift();
        prop_assert_eq!(r, expect_r);
        prop_assert_eq!(Nat::from_limbs(&x[..len]), expect_shifted);
    }

    // ---- modular arithmetic ----

    #[test]
    fn modpow_montgomery_matches_naive(
        b in nat(6), e in nat(2), m in nat_nonzero(6)
    ) {
        prop_assume!(m.is_odd() && !m.is_one());
        prop_assert_eq!(b.modpow(&e, &m), b.modpow_naive(&e, &m));
    }

    #[test]
    fn modpow_product_of_exponents(b in nat(4), m in nat_nonzero(4)) {
        prop_assume!(m.is_odd() && !m.is_one());
        // b^(2+3) == b^2 * b^3 (mod m)
        let lhs = b.modpow(&Nat::from(5u32), &m);
        let rhs = b
            .modpow(&Nat::from(2u32), &m)
            .mul(&b.modpow(&Nat::from(3u32), &m))
            .rem(&m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modinv_is_inverse(a in nat_nonzero(6), m in nat_nonzero(6)) {
        prop_assume!(!m.is_one());
        if let Some(inv) = a.modinv(&m) {
            prop_assert!(a.mul(&inv).rem(&m).is_one());
            prop_assert!(inv < m);
        } else {
            // No inverse means gcd(a, m) != 1.
            prop_assert!(!a.gcd_reference(&m).is_one());
        }
    }

    #[test]
    fn gcd_divides_both(a in nat_nonzero(10), b in nat_nonzero(10)) {
        let g = a.gcd_reference(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }
}

// ---- arithmetic dispatch ladder cross-checks ----
//
// The subquadratic rungs (Toom-3, NTT, Newton division, half-GCD) are
// checked against the quadratic oracles over operand shapes that straddle
// the default cutoffs, including unbalanced widths and unnormalized
// zero-limb tails. Tests call the algorithm entries directly (and
// `gcd_with_cutoff` with a tiny cutoff) rather than mutating the global
// threshold ladder, which would race concurrently running tests.

use bulkgcd_bigint::{div, hgcd, mul, newton, ntt, square, toom};

/// Schoolbook oracle over raw (possibly unnormalized) limb slices.
fn schoolbook_mul(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let mut out = vec![0; a.len() + b.len()];
    mul::mul_schoolbook(&mut out, a, b);
    out.truncate(ops::normalized_len(&out));
    out
}

/// Strategy: a limb vector of up to `max` limbs plus a zero tail of up to
/// 3 limbs (exercises the unnormalized-input contract of every entry).
fn limbs_with_tail(max: usize) -> impl Strategy<Value = Vec<Limb>> {
    (vec(any::<Limb>(), 0..=max), 0usize..4).prop_map(|(mut v, z)| {
        v.extend(core::iter::repeat_n(0, z));
        v
    })
}

proptest! {
    #[test]
    fn dispatch_mul_matches_schoolbook(
        a in limbs_with_tail(140), b in limbs_with_tail(140)
    ) {
        // 0..140 limbs straddles the Karatsuba (32) and Toom-3 (96) rungs.
        prop_assert_eq!(mul::mul_slices(&a, &b), schoolbook_mul(&a, &b));
    }

    #[test]
    fn dispatch_square_matches_schoolbook(a in limbs_with_tail(140)) {
        prop_assert_eq!(square::square_slices(&a), schoolbook_mul(&a, &a));
    }

    #[test]
    fn toom3_matches_schoolbook_any_shape(
        a in limbs_with_tail(200), b in limbs_with_tail(120)
    ) {
        prop_assert_eq!(toom::mul_toom3(&a, &b), schoolbook_mul(&a, &b));
    }

    #[test]
    fn ntt_matches_schoolbook_any_shape(
        a in limbs_with_tail(300), b in limbs_with_tail(260)
    ) {
        prop_assert_eq!(ntt::mul_ntt(&a, &b), schoolbook_mul(&a, &b));
        prop_assert_eq!(ntt::square_ntt(&a), schoolbook_mul(&a, &a));
    }

    #[test]
    fn newton_division_matches_knuth(
        a in limbs_with_tail(160), b in limbs_with_tail(80)
    ) {
        prop_assume!(ops::normalized_len(&b) > 0);
        let (qn, rn) = newton::div_rem_newton(&a, &b);
        let (qk, rk) = div::div_rem_knuth(&a, &b);
        prop_assert_eq!(qn, qk);
        prop_assert_eq!(rn, rk);
    }

    #[test]
    fn hgcd_driver_matches_reference(a in nat(18), b in nat(18)) {
        // Cutoff 2 forces the half-GCD recursion on operands small enough
        // for the Euclid reference to stay fast.
        prop_assert_eq!(hgcd::gcd_with_cutoff(&a, &b, 2), a.gcd_reference(&b));
    }

    #[test]
    fn nat_gcd_matches_reference(a in nat(12), b in nat(12)) {
        prop_assert_eq!(a.gcd(&b), a.gcd_reference(&b));
    }
}

/// Deterministic widths that cross the *real* default cutoffs, so the
/// dispatcher itself (not just the algorithm entries) is exercised on its
/// Newton-division and half-GCD rungs under `cargo test`.
#[test]
fn dispatcher_routes_above_default_cutoffs() {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Division: divisor above NEWTON_DIV (1536), quotient above half of it.
    let a: Vec<Limb> = (0..2500).map(|_| next() as u32).collect();
    let b: Vec<Limb> = (0..1600).map(|_| next() as u32).collect();
    let (qd, rd) = div::div_rem_slices(&a, &b);
    let (qk, rk) = div::div_rem_knuth(&a, &b);
    assert_eq!(qd, qk);
    assert_eq!(rd, rk);

    // GCD: operands above HGCD (192) with a planted common factor.
    let g = Nat::from_limbs(&(0..8).map(|_| next() as u32).collect::<Vec<_>>());
    let x = g.mul(&Nat::from_limbs(
        &(0..200).map(|_| next() as u32).collect::<Vec<_>>(),
    ));
    let y = g.mul(&Nat::from_limbs(
        &(0..198).map(|_| next() as u32).collect::<Vec<_>>(),
    ));
    let got = x.gcd(&y);
    assert_eq!(got, x.gcd_reference(&y));
    assert!(got.rem(&g).is_zero());
}
