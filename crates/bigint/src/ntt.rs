//! FFT-range multiplication: a number-theoretic transform over three
//! word-sized NTT-friendly primes, recombined by CRT.
//!
//! Limbs are the transform coefficients directly (base 2³², matching the
//! paper's d = 32 word size), so a product of `la + lb` limbs needs a
//! transform of `N = (la + lb).next_power_of_two()` points. Each pointwise
//! product coefficient is bounded by `min(la, lb) · (2³² − 1)²  <  2⁸⁹`
//! for operands up to 2²⁵ limbs, and the prime triple below has
//! `p₁·p₂·p₃ ≈ 2⁹²·⁶`, so the CRT reconstruction is exact.
//!
//! The primes are the classic Proth NTT triple with 2-adicity ≥ 2²⁵
//! (which also caps the transform size, see [`MAX_NTT_TOTAL_LIMBS`]):
//!
//! | p                    | factorization | primitive root |
//! |----------------------|---------------|----------------|
//! | 2013265921           | 15·2²⁷ + 1    | 31             |
//! | 1811939329           | 27·2²⁶ + 1    | 13             |
//! | 2113929217           | 63·2²⁵ + 1    | 5              |
//!
//! All butterflies run in Montgomery form (R = 2³²) so the inner loop is
//! two 64-bit multiplies and a shift — no 128-bit remainder in the hot
//! path. The occasional CRT/mixed-radix steps use plain `u128` reduction.

use crate::limb::{lo, Limb, LIMB_BITS};
use crate::ops;

/// Largest supported `a.len() + b.len()` (limbs): the transform size
/// `next_power_of_two(la + lb)` must not exceed the smallest 2-adicity
/// (2²⁵) of the prime triple. 2²⁵ limbs is a gigabit-scale product — far
/// beyond anything the product tree builds today; `mul_dispatch` routes
/// larger requests to Toom-Cook-3 instead.
pub const MAX_NTT_TOTAL_LIMBS: usize = 1 << 25;

/// The (prime, primitive root) triple.
const PRIMES: [(u64, u64); 3] = [(2_013_265_921, 31), (1_811_939_329, 13), (2_113_929_217, 5)];

/// Montgomery arithmetic mod one NTT prime, R = 2³².
struct Field {
    p: u64,
    /// `-p⁻¹ mod 2³²`.
    ninv32: u32,
    /// `R² mod p`, for entering Montgomery form.
    r2: u64,
}

impl Field {
    fn new(p: u64) -> Field {
        // Newton iteration for p⁻¹ mod 2³² (p odd): 5 doublings of precision.
        let plo = lo(p);
        let mut inv: u32 = plo;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(plo.wrapping_mul(inv)));
        }
        debug_assert_eq!(plo.wrapping_mul(inv), 1);
        let r2 = ((1u128 << 64) % p as u128) as u64;
        Field {
            p,
            ninv32: inv.wrapping_neg(),
            r2,
        }
    }

    /// Branchless select: `x − p` if that doesn't underflow, else `x`.
    /// For `x < 2p` this is exactly `x mod p`. Compiled as mask-and-add
    /// ALU ops — on random transform data the equivalent branch is a coin
    /// flip, and the mispredicts dominate the whole NTT.
    #[inline(always)]
    fn reduce_once(&self, x: u64) -> u64 {
        let d = x.wrapping_sub(self.p);
        d.wrapping_add(self.p & (((d as i64) >> 63) as u64))
    }

    /// Montgomery reduction of `t < p·2³²`: returns `t·R⁻¹ mod p`.
    #[inline(always)]
    fn redc(&self, t: u64) -> u64 {
        // m = (t mod R)·(-p⁻¹) mod R; then (t + m·p) is divisible by R.
        // t < p·2³² < 2⁶³ and m·p < 2³²·p < 2⁶³, so the sum cannot wrap.
        let m = lo(t).wrapping_mul(self.ninv32) as u64;
        self.reduce_once((t + m * self.p) >> LIMB_BITS)
    }

    /// Product of two Montgomery-form values.
    #[inline(always)]
    fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        self.redc(a * b)
    }

    #[inline(always)]
    fn add(&self, a: u64, b: u64) -> u64 {
        self.reduce_once(a + b)
    }

    #[inline(always)]
    fn sub(&self, a: u64, b: u64) -> u64 {
        // a − b ∈ (−p, p); the same mask-select folds the negative case.
        let d = a.wrapping_sub(b);
        d.wrapping_add(self.p & (((d as i64) >> 63) as u64))
    }

    /// `1` in Montgomery form (`R mod p`).
    #[inline]
    fn one(&self) -> u64 {
        self.redc(self.r2)
    }

    /// Enter Montgomery form.
    #[inline]
    fn to_mont(&self, x: u64) -> u64 {
        self.redc((x % self.p) * self.r2)
    }

    /// Leave Montgomery form.
    #[inline]
    fn unmont(&self, x: u64) -> u64 {
        self.redc(x)
    }

    /// `base^e` with `base` in Montgomery form; result in Montgomery form.
    fn pow(&self, mut base: u64, mut e: u64) -> u64 {
        let mut acc = self.one();
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }
}

/// In-place bit-reversal permutation.
fn bit_reverse(a: &mut [u64]) {
    let n = a.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            a.swap(i, j);
        }
    }
}

/// Flat per-level twiddle tables for a size-`n` transform with root `root`
/// (Montgomery form): the segment for the level with half-size `h`
/// (h = 1, 2, 4, ..., n/2) starts at offset `h - 1` and holds
/// `(w^{n/2h})^i` for `i < h`. Only the top segment is computed by a
/// serial product chain; every smaller level is a stride-2 subsample of
/// the level above, so the build is O(n) with a single length-n/2
/// dependency chain.
fn twiddles(field: &Field, root: u64, n: usize) -> Vec<u64> {
    let top = (n / 2).max(1);
    let mut flat = vec![0u64; 2 * top - 1];
    flat[top - 1] = field.one();
    for i in 1..top {
        flat[top - 1 + i] = field.mul(flat[top - 2 + i], root);
    }
    let mut h = top / 2;
    while h >= 1 {
        for i in 0..h {
            flat[h - 1 + i] = flat[2 * h - 1 + 2 * i];
        }
        h /= 2;
    }
    flat
}

/// Iterative radix-2 Cooley-Tukey NTT over `field`, values in Montgomery
/// form, with the precomputed twiddle tables of [`twiddles`] (built for
/// the matching root and direction). The butterfly loop runs over
/// disjoint sub-slices so it compiles without bounds checks.
fn transform(field: &Field, a: &mut [u64], tw: &[u64]) {
    let n = a.len();
    debug_assert!(n.is_power_of_two());
    debug_assert!(tw.len() >= n - 1);
    bit_reverse(a);
    let mut half = 1usize;
    while half < n {
        let seg = &tw[half - 1..2 * half - 1];
        for chunk in a.chunks_exact_mut(2 * half) {
            let (us, vs) = chunk.split_at_mut(half);
            for ((u, v), &w) in us.iter_mut().zip(vs.iter_mut()).zip(seg) {
                let t = field.mul(*v, w);
                let x = *u;
                *u = field.add(x, t);
                *v = field.sub(x, t);
            }
        }
        half <<= 1;
    }
}

/// Plain (non-Montgomery) modular helpers for the CRT recombination.
#[inline]
fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn powmod(mut base: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        e >>= 1;
    }
    acc
}

/// Residues of one pointwise-product vector for all three primes.
struct Residues {
    per_prime: [Vec<u64>; 3],
    n: usize,
}

/// One prime's residue vector of the product: forward-transform the
/// operand(s) sharing one forward twiddle table, pointwise-multiply (or
/// square when `b` is `None`, saving the second forward transform),
/// inverse-transform with the conjugate table, and scale by `n⁻¹` folded
/// into the Montgomery exit — the result is in normal form.
fn residues_mod_prime(k: usize, a: &[Limb], b: Option<&[Limb]>, n: usize) -> Vec<u64> {
    let (p, g) = PRIMES[k];
    let field = Field::new(p);
    let load = |x: &[Limb]| {
        let mut f = vec![0u64; n];
        for (f, &w) in f.iter_mut().zip(x.iter()) {
            *f = field.to_mont(w as u64);
        }
        f
    };
    let root = field.pow(field.to_mont(g), (p - 1) / n as u64);
    let fwd = twiddles(&field, root, n);
    let mut fa = load(a);
    transform(&field, &mut fa, &fwd);
    match b {
        Some(b) => {
            let mut fb = load(b);
            transform(&field, &mut fb, &fwd);
            for (x, y) in fa.iter_mut().zip(fb) {
                *x = field.mul(*x, y);
            }
        }
        None => {
            for x in fa.iter_mut() {
                *x = field.mul(*x, *x);
            }
        }
    }
    let inv = twiddles(&field, field.pow(root, p - 2), n);
    transform(&field, &mut fa, &inv);
    let n_inv = field.pow(field.to_mont(n as u64), p - 2);
    for x in fa.iter_mut() {
        *x = field.unmont(field.mul(*x, n_inv));
    }
    fa
}

/// CRT-recombine the residues and propagate carries, writing the low
/// `out.len()` limbs of the product into `out` (which must be exactly the
/// product length; the final carry must be zero and is debug-asserted).
fn recombine(res: &Residues, out: &mut [Limb]) {
    let [p1, p2, p3] = [PRIMES[0].0, PRIMES[1].0, PRIMES[2].0];
    let inv_p1_mod_p2 = powmod(p1, p2 - 2, p2);
    let p1p2 = p1 * p2; // < 2⁶², exact in u64
    let inv_p1p2_mod_p3 = powmod(p1p2, p3 - 2, p3);
    let [r1v, r2v, r3v] = &res.per_prime;

    let mut carry: u128 = 0;
    for i in 0..res.n {
        let (r1, r2, r3) = (r1v[i], r2v[i], r3v[i]);
        // Garner's mixed-radix CRT: v = r1 + p1·t2 + p1·p2·t3.
        let d2 = if r2 >= r1 % p2 {
            r2 - r1 % p2
        } else {
            r2 + p2 - r1 % p2
        };
        let t2 = mulmod(d2, inv_p1_mod_p2, p2);
        let v12 = r1 + p1 * t2; // < p1·p2 < 2⁶²
        let v12m = v12 % p3;
        let d3 = if r3 >= v12m {
            r3 - v12m
        } else {
            r3 + p3 - v12m
        };
        let t3 = mulmod(d3, inv_p1p2_mod_p3, p3);
        let v = v12 as u128 + p1p2 as u128 * t3 as u128; // < p1·p2·p3 < 2⁹³

        let acc = carry + v;
        if i < out.len() {
            out[i] = lo(acc as u64);
        } else {
            debug_assert_eq!(lo(acc as u64), 0, "NTT product overflows result");
        }
        carry = acc >> LIMB_BITS;
    }
    debug_assert_eq!(carry, 0, "NTT carry must be consumed by the result");
}

/// NTT product `a · b` into `out` (zeroed, `out.len() >= la + lb` where
/// `la`/`lb` are the normalized lengths). Panics (assert) if the product
/// exceeds [`MAX_NTT_TOTAL_LIMBS`]; `mul_dispatch` never routes such
/// operands here.
pub fn mul_ntt_into(out: &mut [Limb], a: &[Limb], b: &[Limb]) {
    let la = ops::normalized_len(a);
    let lb = ops::normalized_len(b);
    if la == 0 || lb == 0 {
        return;
    }
    let rl = la + lb;
    assert!(
        rl <= MAX_NTT_TOTAL_LIMBS,
        "NTT product of {rl} limbs exceeds the prime triple's 2-adicity"
    );
    debug_assert!(out.len() >= rl);
    let n = rl.next_power_of_two().max(2);
    let square = core::ptr::eq(a, b) || (la == lb && a[..la] == b[..lb]);
    let bb = if square { None } else { Some(&b[..lb]) };
    let res = Residues {
        per_prime: core::array::from_fn(|k| residues_mod_prime(k, &a[..la], bb, n)),
        n,
    };
    recombine(&res, &mut out[..rl]);
}

/// Allocating wrapper around [`mul_ntt_into`], normalized result.
pub fn mul_ntt(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let la = ops::normalized_len(a);
    let lb = ops::normalized_len(b);
    if la == 0 || lb == 0 {
        return Vec::new();
    }
    let mut out = vec![0; la + lb];
    mul_ntt_into(&mut out, &a[..la], &b[..lb]);
    out.truncate(ops::normalized_len(&out));
    out
}

/// NTT squaring: one forward transform instead of two.
pub fn square_ntt(a: &[Limb]) -> Vec<Limb> {
    let la = ops::normalized_len(a);
    if la == 0 {
        return Vec::new();
    }
    let mut out = vec![0; 2 * la];
    mul_ntt_into(&mut out, &a[..la], &a[..la]);
    out.truncate(ops::normalized_len(&out));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mul::mul_schoolbook;

    fn schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        let mut out = vec![0; a.len() + b.len()];
        mul_schoolbook(&mut out, a, b);
        out.truncate(ops::normalized_len(&out));
        out
    }

    #[test]
    fn primes_and_roots_are_sound() {
        for (p, g) in PRIMES {
            let field = Field::new(p);
            // Montgomery roundtrip.
            for x in [0u64, 1, 2, p - 1, 0x1234_5678] {
                assert_eq!(field.unmont(field.to_mont(x)), x % p);
            }
            // g has full order: g^((p-1)/2) == -1 for the largest transform.
            let gm = field.to_mont(g);
            assert_eq!(field.unmont(field.pow(gm, (p - 1) / 2)), p - 1);
            // The 2^25-th root of unity exists and squares down correctly.
            let w = field.pow(gm, (p - 1) / (1 << 25));
            assert_eq!(field.unmont(field.pow(w, 1 << 24)), p - 1);
        }
    }

    #[test]
    fn tiny_products_match_schoolbook() {
        let cases: [(&[Limb], &[Limb]); 6] = [
            (&[1], &[1]),
            (&[0xffff_ffff], &[0xffff_ffff]),
            (&[1, 2, 3], &[4, 5]),
            (&[0xffff_ffff; 4], &[0xffff_ffff; 4]),
            (&[0, 0, 1], &[7]),
            (&[0x8000_0000, 1], &[0x8000_0000, 1]),
        ];
        for (a, b) in cases {
            assert_eq!(mul_ntt(a, b), schoolbook(a, b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn pseudorandom_products_match_schoolbook() {
        let mut state = 0x0135_79bd_f246_8ace_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (la, lb) in [(1, 64), (17, 31), (64, 64), (100, 3), (129, 128)] {
            let a: Vec<Limb> = (0..la).map(|_| lo(next())).collect();
            let b: Vec<Limb> = (0..lb).map(|_| lo(next())).collect();
            assert_eq!(mul_ntt(&a, &b), schoolbook(&a, &b), "la={la} lb={lb}");
        }
    }

    #[test]
    fn square_matches_mul() {
        let a: Vec<Limb> = (0..77)
            .map(|i| (i as u32).wrapping_mul(0x9e37_79b9))
            .collect();
        assert_eq!(square_ntt(&a), mul_ntt(&a, &a));
        assert_eq!(square_ntt(&a), schoolbook(&a, &a));
    }

    #[test]
    fn zero_and_unnormalized_tails() {
        assert!(mul_ntt(&[], &[1, 2]).is_empty());
        assert!(mul_ntt(&[0, 0], &[1, 2]).is_empty());
        // High zero limbs must not change the product.
        let a = [3u32, 0, 0, 0];
        let b = [5u32, 7, 0];
        assert_eq!(mul_ntt(&a, &b), schoolbook(&a[..1], &b[..2]));
    }

    #[test]
    #[ignore = "manual timing probe"]
    fn timing_probe() {
        use std::time::Instant;
        let n = 16384usize;
        let field = Field::new(PRIMES[0].0);
        let mut v: Vec<u64> = (0..n)
            .map(|i| (i as u64).wrapping_mul(2654435761) % field.p)
            .collect();
        let root = field.pow(field.to_mont(PRIMES[0].1), (field.p - 1) / n as u64);
        let tw = twiddles(&field, root, n);
        let t0 = Instant::now();
        for _ in 0..100 {
            transform(&field, &mut v, &tw);
            std::hint::black_box(&v);
        }
        eprintln!("transform n={n}: {:?}/iter", t0.elapsed() / 100);

        // Pseudorandom operands: constant fill transforms to a near-delta
        // vector, which makes every data-dependent path look artificially
        // cheap and once hid a 2.5x gap to real workloads.
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        let mut rnd = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 32) as u32
        };
        let a: Vec<Limb> = (0..8192).map(|_| rnd()).collect();
        let b: Vec<Limb> = (0..8191).map(|_| rnd()).collect();
        let t0 = Instant::now();
        for _ in 0..20 {
            std::hint::black_box(mul_ntt(&a, &b));
        }
        eprintln!("mul_ntt 8192x8191: {:?}/iter", t0.elapsed() / 20);

        let res = Residues {
            per_prime: core::array::from_fn(|k| residues_mod_prime(k, &a, None, n)),
            n,
        };
        let mut out = vec![0u32; 16384];
        let t0 = Instant::now();
        for _ in 0..100 {
            recombine(&res, &mut out);
            std::hint::black_box(&out);
        }
        eprintln!("recombine n={n}: {:?}/iter", t0.elapsed() / 100);
    }

    #[test]
    fn worst_case_coefficient_bound() {
        // All-0xffffffff operands maximize every convolution coefficient:
        // the CRT range proof in the module docs must hold in practice.
        let a = vec![u32::MAX; 96];
        let b = vec![u32::MAX; 96];
        assert_eq!(mul_ntt(&a, &b), schoolbook(&a, &b));
    }
}
