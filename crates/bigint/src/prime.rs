//! Primality testing and random prime generation.
//!
//! This replaces the paper's use of the OpenSSL toolkit for generating RSA
//! moduli (§V, §VII): trial division by a small-prime table followed by
//! Miller–Rabin with random bases (plus base 2).

use crate::modular::Montgomery;
use crate::nat::Nat;
use crate::random::{random_below, random_odd_bits};
use rand::Rng;

/// Number of Miller–Rabin rounds. 32 random bases gives a composite-escape
/// probability below 4^-32, far below the hardware error rate.
pub const MILLER_RABIN_ROUNDS: usize = 32;

/// Small primes for trial division, generated once by a sieve.
fn small_primes() -> &'static [u32] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<u32>> = OnceLock::new();
    TABLE.get_or_init(|| sieve(8192))
}

/// Simple sieve of Eratosthenes up to `limit` (exclusive).
pub fn sieve(limit: u32) -> Vec<u32> {
    let limit = limit as usize;
    let mut is_comp = vec![false; limit];
    let mut primes = Vec::new();
    for i in 2..limit {
        if !is_comp[i] {
            primes.push(i as u32);
            let mut j = i * i;
            while j < limit {
                is_comp[j] = true;
                j += i;
            }
        }
    }
    primes
}

/// Outcome of trial division.
enum TrialDivision {
    /// Divisible by the contained small prime (0 when `n < 2`).
    Composite(u32),
    /// Equal to a small prime.
    IsSmallPrime,
    /// No small factor found.
    Unknown,
}

fn trial_division(n: &Nat) -> TrialDivision {
    for &p in small_primes() {
        let pn = Nat::from(p);
        match n.cmp(&pn) {
            core::cmp::Ordering::Equal => return TrialDivision::IsSmallPrime,
            core::cmp::Ordering::Less => return TrialDivision::Composite(0),
            core::cmp::Ordering::Greater => {}
        }
        if n.rem_u32(p) == 0 {
            return TrialDivision::Composite(p);
        }
    }
    TrialDivision::Unknown
}

/// The smallest prime factor of `n` below the trial-division bound, if any.
/// Returns `None` both for primes and for composites whose factors are all
/// larger than the table.
pub fn small_factor(n: &Nat) -> Option<u32> {
    match trial_division(n) {
        TrialDivision::Composite(p) if p != 0 => Some(p),
        _ => None,
    }
}

/// One Miller–Rabin round for witness `a` against odd `n > 2`,
/// with `n - 1 = 2^s * d` precomputed. Returns true if `n` passes.
fn miller_rabin_round(
    mont: &Montgomery,
    n: &Nat,
    n_minus_1: &Nat,
    d: &Nat,
    s: u64,
    a: &Nat,
) -> bool {
    let mut x = mont.pow(a, d);
    if x.is_one() || x == *n_minus_1 {
        return true;
    }
    for _ in 1..s {
        x = x.mul(&x).rem(n);
        if x == *n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false; // non-trivial sqrt of 1 found
        }
    }
    false
}

/// Probabilistic primality test: trial division + Miller–Rabin.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &Nat, rng: &mut R) -> bool {
    is_probable_prime_rounds(n, rng, MILLER_RABIN_ROUNDS)
}

/// As [`is_probable_prime`] with an explicit round count.
pub fn is_probable_prime_rounds<R: Rng + ?Sized>(n: &Nat, rng: &mut R, rounds: usize) -> bool {
    if n.cmp(&Nat::from(2u32)) == core::cmp::Ordering::Less {
        return false;
    }
    if n == &Nat::from(2u32) {
        return true;
    }
    if n.is_even() {
        return false;
    }
    match trial_division(n) {
        TrialDivision::Composite(_) => return false,
        TrialDivision::IsSmallPrime => return true,
        TrialDivision::Unknown => {}
    }
    let n_minus_1 = n.sub(&Nat::one());
    let Some(s) = n_minus_1.trailing_zeros() else {
        // Unreachable: n odd and > 2 implies n-1 > 0. Treating the
        // impossible case as "composite" keeps the prime test sound.
        return false;
    };
    let d = n_minus_1.shr(s);
    let mont = Montgomery::new(n);

    // Base 2 first (cheap, catches most composites), then random bases
    // in [2, n-2].
    if !miller_rabin_round(&mont, n, &n_minus_1, &d, s, &Nat::from(2u32)) {
        return false;
    }
    let span = n.sub(&Nat::from(3u32)); // witnesses drawn from [2, n-2]
    for _ in 1..rounds {
        let a = random_below(rng, &span).add(&Nat::from(2u32));
        if !miller_rabin_round(&mont, n, &n_minus_1, &d, s, &a) {
            return false;
        }
    }
    true
}

/// Generate a random probable prime with exactly `bits` significant bits.
///
/// Uses the usual generate-and-test loop over random odd candidates; the
/// prime density theorem makes the expected number of candidates ~ bits·ln 2 / 2.
pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Nat {
    assert!(bits >= 2, "no primes below 2 bits");
    loop {
        let cand = random_odd_bits(rng, bits);
        if is_probable_prime(&cand, rng) {
            return cand;
        }
    }
}

/// Generate a random probable prime with its **two** top bits set — the
/// convention RSA key generators use so that the product of two such
/// `bits`-bit primes always has exactly `2·bits` bits.
pub fn random_rsa_prime<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Nat {
    assert!(bits >= 3, "need room for two forced top bits");
    let top2 = Nat::one().shl(bits - 2);
    loop {
        let mut cand = random_odd_bits(rng, bits);
        if !cand.bit(bits - 2) {
            cand = cand.add(&top2);
        }
        if is_probable_prime(&cand, rng) {
            return cand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn sieve_matches_known_primes() {
        assert_eq!(sieve(30), vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert_eq!(sieve(2), Vec::<u32>::new());
    }

    #[test]
    fn small_numbers_classified() {
        let mut r = rng();
        let primes = [2u32, 3, 5, 7, 11, 97, 7919, 65537];
        let composites = [
            0u32, 1, 4, 9, 15, 91, 561, /* Carmichael */
            6601, 62745,
        ];
        for p in primes {
            assert!(is_probable_prime(&Nat::from(p), &mut r), "{p} is prime");
        }
        for c in composites {
            assert!(
                !is_probable_prime(&Nat::from(c), &mut r),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn large_known_prime_and_composite() {
        let mut r = rng();
        // 2^89 - 1 is a Mersenne prime.
        let m89 = Nat::from_u128((1u128 << 89) - 1);
        assert!(is_probable_prime(&m89, &mut r));
        // 2^89 + 1 is divisible by 3? 2 mod 3 = 2, 2^89 mod 3 = 2, +1 = 0: composite.
        let c = Nat::from_u128((1u128 << 89) + 1);
        assert!(!is_probable_prime(&c, &mut r));
    }

    #[test]
    fn product_of_two_primes_rejected() {
        let mut r = rng();
        let p = random_prime(&mut r, 48);
        let q = random_prime(&mut r, 48);
        assert!(!is_probable_prime(&p.mul(&q), &mut r));
    }

    #[test]
    fn random_prime_has_requested_width() {
        let mut r = rng();
        for bits in [16u64, 33, 64, 128] {
            let p = random_prime(&mut r, bits);
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd() || p == Nat::from(2u32));
        }
    }

    #[test]
    fn strong_pseudoprime_to_base_2_caught() {
        // 3215031751 is a strong pseudoprime to bases 2, 3, 5, 7? It is a
        // well-known Carmichael-like case: 3215031751 = 151 * 751 * 28351.
        let n = Nat::from(3_215_031_751u32);
        let mut r = rng();
        assert!(!is_probable_prime(&n, &mut r));
    }
}
