//! Barrett reduction — the division-free modular reduction that works for
//! *any* modulus (Montgomery needs an odd one). Used as an alternative
//! backend for modular exponentiation and as an ablation target: the
//! benches compare Montgomery vs Barrett vs plain division.

use crate::limb::LIMB_BITS;
use crate::nat::Nat;

/// Precomputed Barrett context for a fixed modulus `n > 1`.
///
/// With `k = limbs(n)` and `b = 2^32`, stores `mu = floor(b^(2k) / n)`.
/// [`Barrett::reduce`] then reduces any `x < n²` with two multiplications
/// and at most two subtractions (Handbook of Applied Cryptography 14.42).
#[derive(Debug, Clone)]
pub struct Barrett {
    n: Nat,
    mu: Nat,
    k: usize,
}

impl Barrett {
    /// Build a context for `n > 1` (any parity).
    pub fn new(n: &Nat) -> Self {
        assert!(!n.is_zero() && !n.is_one(), "modulus must be > 1");
        let k = n.len();
        let b2k = Nat::one().shl(2 * k as u64 * LIMB_BITS as u64);
        Barrett {
            n: n.clone(),
            mu: b2k.div(n),
            k,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Nat {
        &self.n
    }

    /// Reduce `x mod n`. Requires `x < n²` (the product of two reduced
    /// operands always qualifies).
    pub fn reduce(&self, x: &Nat) -> Nat {
        debug_assert!(x < &self.n.square(), "Barrett requires x < n^2");
        let shift_k_minus_1 = (self.k as u64 - 1) * LIMB_BITS as u64;
        let shift_k_plus_1 = (self.k as u64 + 1) * LIMB_BITS as u64;
        // q = floor(floor(x / b^(k-1)) * mu / b^(k+1))
        let q = x.shr(shift_k_minus_1).mul(&self.mu).shr(shift_k_plus_1);
        // r = x - q*n; r < 3n, so at most two corrective subtractions.
        let mut r = x.sub(&q.mul(&self.n));
        while r >= self.n {
            r = r.sub(&self.n);
        }
        r
    }

    /// `a * b mod n` for reduced operands.
    pub fn mul_mod(&self, a: &Nat, b: &Nat) -> Nat {
        debug_assert!(a < &self.n && b < &self.n);
        self.reduce(&a.mul(b))
    }

    /// `base^exp mod n` by square-and-multiply over Barrett reduction.
    pub fn pow(&self, base: &Nat, exp: &Nat) -> Nat {
        let mut acc = Nat::one().rem(&self.n);
        let base = base.rem(&self.n);
        for i in (0..exp.bit_len()).rev() {
            acc = self.mul_mod(&acc, &acc);
            if exp.bit(i) {
                acc = self.mul_mod(&acc, &base);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_matches_rem_small() {
        let n = Nat::from(1_000_003u32);
        let ctx = Barrett::new(&n);
        for x in [
            0u128,
            1,
            999_999,
            1_000_003,
            123_456_789_012,
            1_000_002u128 * 1_000_002,
        ] {
            let xn = Nat::from_u128(x);
            assert_eq!(ctx.reduce(&xn), xn.rem(&n), "x={x}");
        }
    }

    #[test]
    fn works_for_even_moduli() {
        // Montgomery cannot do this one.
        let n = Nat::from_u128(0x1_0000_0000_0000_0000u128 - 0x1234_5678);
        let ctx = Barrett::new(&n);
        let x = n.sub(&Nat::one()).square();
        assert_eq!(ctx.reduce(&x), x.rem(&n));
    }

    #[test]
    fn pow_matches_naive_and_montgomery() {
        let n = Nat::from_u128(0xffff_ffff_ffff_ffff_ffff_ffff_ffff_ff61);
        let b = Nat::from_u128(0x0123_4567_89ab_cdef);
        let e = Nat::from_u128(0xfedc_ba98);
        let ctx = Barrett::new(&n);
        assert_eq!(ctx.pow(&b, &e), b.modpow_naive(&e, &n));
        assert_eq!(ctx.pow(&b, &e), b.modpow(&e, &n));
    }

    #[test]
    fn pow_even_modulus_matches_naive() {
        let n = Nat::from_u128(1_000_000_000_000);
        let b = Nat::from_u128(987_654_321);
        let e = Nat::from_u128(1234);
        assert_eq!(Barrett::new(&n).pow(&b, &e), b.modpow_naive(&e, &n));
    }

    #[test]
    fn mul_mod_reduced_operands() {
        let n = Nat::from_u128((1u128 << 100) + 7);
        let ctx = Barrett::new(&n);
        let a = Nat::from_u128((1u128 << 99) + 12345);
        let b = Nat::from_u128((1u128 << 98) + 999);
        assert_eq!(ctx.mul_mod(&a, &b), a.mul(&b).rem(&n));
    }

    #[test]
    #[should_panic(expected = "> 1")]
    fn trivial_modulus_rejected() {
        let _ = Barrett::new(&Nat::one());
    }
}
