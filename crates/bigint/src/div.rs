//! Division: single-limb short division, Knuth Algorithm D for the general
//! multiword case (TAOCP vol. 2, §4.3.1 — the same reference the paper
//! cites for Euclidean algorithms), and a width dispatcher that routes
//! large divisors to the Newton reciprocal in [`crate::newton`].
//!
//! [`div_rem_slices`] is the dispatch entry every caller goes through;
//! [`div_rem_knuth`] pins the quadratic algorithm for oracles and for the
//! perf gate's legacy arm. The `_into` variant threads caller-owned
//! buffers ([`DivScratch`]) so the remainder-tree descent divides without
//! allocating per node.

use crate::limb::{div2by1, lo, sbb, Limb, LIMB_BITS};
use crate::nat::Nat;
use crate::newton;
use crate::ops;
use crate::thresholds;

/// Divide `a` by the single limb `d`. Returns `(quotient limbs, remainder)`.
/// Panics if `d == 0`.
pub fn div_rem_limb(a: &[Limb], d: Limb) -> (Vec<Limb>, Limb) {
    let mut q = Vec::new();
    let rem = div_rem_limb_into(a, d, &mut q);
    (q, rem)
}

/// [`div_rem_limb`] into a caller buffer; returns the remainder.
pub fn div_rem_limb_into(a: &[Limb], d: Limb, q: &mut Vec<Limb>) -> Limb {
    assert!(d != 0, "division by zero");
    let n = ops::normalized_len(a);
    q.clear();
    q.resize(n, 0);
    let mut rem: Limb = 0;
    for i in (0..n).rev() {
        let (qi, r) = div2by1(rem, a[i], d);
        q[i] = qi;
        rem = r;
    }
    q.truncate(ops::normalized_len(q));
    rem
}

/// Caller-owned working memory for [`div_rem_knuth_into`]: the shifted
/// dividend and divisor of Knuth's D1 normalization step. Reusing one
/// scratch across a remainder-tree descent removes every per-node
/// allocation of the hot loop.
#[derive(Default)]
pub struct DivScratch {
    u: Vec<Limb>,
    v: Vec<Limb>,
}

impl DivScratch {
    pub fn new() -> Self {
        DivScratch::default()
    }
}

/// True when the dispatcher routes `(la, lb)`-limb division to the Newton
/// reciprocal: the divisor must clear the cutoff *and* the quotient must be
/// wide enough (≥ half the cutoff) to amortize the fixed reciprocal cost.
pub(crate) fn newton_applies(la: usize, lb: usize) -> bool {
    let cut = thresholds::NEWTON_DIV.get();
    lb >= cut && la >= lb + cut / 2
}

/// Divide `a` by `b` (both little-endian limb slices).
/// Returns `(quotient, remainder)` as normalized limb vectors.
/// Panics if `b == 0`.
///
/// This is the dispatch entry: Knuth Algorithm D below the
/// [`thresholds::NEWTON_DIV`] cutoff, Newton reciprocal division above it.
pub fn div_rem_slices(a: &[Limb], b: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    let la = ops::normalized_len(a);
    let lb = ops::normalized_len(b);
    if newton_applies(la, lb) {
        return newton::div_rem_newton(a, b);
    }
    div_rem_knuth(a, b)
}

/// Knuth Algorithm D, unconditionally (no dispatch). The oracle for the
/// Newton cross-checks and the perf gate's legacy arm; also the base case
/// of the Newton recursion itself.
pub fn div_rem_knuth(a: &[Limb], b: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    let mut q = Vec::new();
    let mut r = Vec::new();
    let mut scratch = DivScratch::new();
    div_rem_knuth_into(a, b, &mut q, &mut r, &mut scratch);
    (q, r)
}

/// Knuth Algorithm D into caller buffers. `q` and `r` are cleared and
/// left normalized; `scratch` holds the shifted operands between calls.
pub fn div_rem_knuth_into(
    a: &[Limb],
    b: &[Limb],
    q: &mut Vec<Limb>,
    r: &mut Vec<Limb>,
    scratch: &mut DivScratch,
) {
    let la = ops::normalized_len(a);
    let lb = ops::normalized_len(b);
    assert!(lb != 0, "division by zero");
    q.clear();
    r.clear();
    if la < lb || ops::cmp(a, b) == core::cmp::Ordering::Less {
        r.extend_from_slice(&a[..la]);
        return;
    }
    if lb == 1 {
        let rem = div_rem_limb_into(&a[..la], b[0], q);
        if rem != 0 {
            r.push(rem);
        }
        return;
    }

    // Knuth Algorithm D.
    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = b[lb - 1].leading_zeros();
    let u = &mut scratch.u;
    u.clear();
    u.extend_from_slice(&a[..la]);
    u.push(0);
    if shift > 0 {
        ops::shl_in_place(u, shift as u64);
    }
    let v = &mut scratch.v;
    v.clear();
    v.extend_from_slice(&b[..lb]);
    if shift > 0 {
        v.push(0);
        let n = ops::shl_in_place(v, shift as u64);
        v.truncate(n);
    }
    debug_assert_eq!(v.len(), lb, "normalizing shift must not change length");
    let n = lb;
    let m = la - lb;
    q.resize(m + 1, 0);
    let v_hi = v[n - 1];
    let v_next = v[n - 2];

    // D2-D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top three limbs of the current window.
        let u2 = u[j + n] as u64;
        let u1 = u[j + n - 1] as u64;
        let u0 = u[j + n - 2] as u64;
        let num = (u2 << LIMB_BITS) | u1;
        // Knuth D3: if the top limbs are equal the naive estimate would be
        // >= D (and qhat * v_next could overflow u64), so clamp to D - 1.
        let (mut qhat, mut rhat) = if u2 == v_hi as u64 {
            ((1u64 << LIMB_BITS) - 1, u1 + v_hi as u64)
        } else {
            (num / v_hi as u64, num % v_hi as u64)
        };
        // qhat can overestimate by at most 2; fix it here.
        while rhat < 1 << LIMB_BITS && qhat * v_next as u64 > ((rhat << LIMB_BITS) | u0) {
            qhat -= 1;
            rhat += v_hi as u64;
        }

        // D4: multiply and subtract u[j..j+n+1] -= qhat * v.
        let mut carry: u64 = 0; // high part of product + borrow chain
        let mut borrow: Limb = 0;
        for i in 0..n {
            let p = qhat * v[i] as u64 + carry;
            carry = p >> LIMB_BITS;
            let (d, bo) = sbb(u[j + i], lo(p), borrow);
            u[j + i] = d;
            borrow = bo;
        }
        let (d, bo) = sbb(u[j + n], lo(carry), borrow);
        u[j + n] = d;

        // qhat fits in one limb by the D3 estimate's clamp to D - 1.
        let mut qj = lo(qhat);
        if bo != 0 {
            // D6: qhat was one too large (probability ~ 2/D); add v back.
            qj -= 1;
            let mut carry: Limb = 0;
            for i in 0..n {
                let (s, c) = crate::limb::adc(u[j + i], v[i], carry);
                u[j + i] = s;
                carry = c;
            }
            u[j + n] = u[j + n].wrapping_add(carry);
        }
        q[j] = qj;
    }

    // D8: denormalize the remainder.
    r.extend_from_slice(&u[..n]);
    if shift > 0 {
        ops::shr_in_place(r, shift as u64);
    }
    q.truncate(ops::normalized_len(q));
    r.truncate(ops::normalized_len(r));
}

impl Nat {
    /// Quotient and remainder: `(self div other, self mod other)`.
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Nat) -> (Nat, Nat) {
        let (q, r) = div_rem_slices(self.limbs(), other.limbs());
        (Nat::from_vec(q), Nat::from_vec(r))
    }

    /// [`Nat::div_rem`] into caller-owned `Nat`s plus division scratch —
    /// the remainder-tree descent's zero-allocation steady state. `q` and
    /// `r` are overwritten (their buffers reused); the Newton path above
    /// the cutoff still allocates internally, which the tree amortizes
    /// over the huge operand widths that reach it.
    pub fn div_rem_into(&self, other: &Nat, q: &mut Nat, r: &mut Nat, scratch: &mut DivScratch) {
        let la = self.len();
        let lb = other.len();
        if newton_applies(la, lb) {
            let (qq, rr) = newton::div_rem_newton(self.limbs(), other.limbs());
            q.assign_limbs(&qq);
            r.assign_limbs(&rr);
            return;
        }
        // The slice kernel cannot alias `self`/`other` with `q`/`r`, so
        // split the borrows by taking the raw buffers first.
        let (a, b) = (self.limbs(), other.limbs());
        div_rem_knuth_into(a, b, q.limbs_mut(), r.limbs_mut(), scratch);
    }

    /// Rounded-down quotient (the paper's `div` operator).
    pub fn div(&self, other: &Nat) -> Nat {
        self.div_rem(other).0
    }

    /// Remainder `self mod other`.
    pub fn rem(&self, other: &Nat) -> Nat {
        self.div_rem(other).1
    }

    /// `self mod d` for a single limb.
    pub fn rem_u32(&self, d: Limb) -> Limb {
        div_rem_limb(self.limbs(), d).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: u128, b: u128) {
        let (q, r) = Nat::from_u128(a).div_rem(&Nat::from_u128(b));
        assert_eq!(q.to_u128(), Some(a / b), "quotient a={a:#x} b={b:#x}");
        assert_eq!(r.to_u128(), Some(a % b), "remainder a={a:#x} b={b:#x}");
    }

    #[test]
    fn single_limb_divisor() {
        check(0xdead_beef_cafe_babe_0123_4567, 7);
        check(0xdead_beef_cafe_babe_0123_4567, u32::MAX as u128);
        check(42, 43);
        check(42, 42);
    }

    #[test]
    fn multi_limb_divisor() {
        check(u128::MAX, 0x1_0000_0001);
        check(u128::MAX, 0xffff_ffff_ffff_ffff);
        check(
            0x0123_4567_89ab_cdef_0123_4567_89ab_cdef,
            0x1111_1111_1111_1111,
        );
        check(1 << 127, (1 << 96) + 12345);
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let a = Nat::from_u128(100);
        let b = Nat::from_u128(1 << 90);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn exact_division() {
        let b = Nat::from_u128(0x1_0000_0000_0001);
        let a = b.mul(&Nat::from_u128(0xabcdef));
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.to_u128(), Some(0xabcdef));
        assert!(r.is_zero());
    }

    #[test]
    fn knuth_d6_addback_case() {
        // Classic add-back trigger: dividend with max top limbs over a
        // divisor slightly below a power of D.
        let a_limbs = [0u32, 0, 0x8000_0000, 0x7fff_ffff, 0xffff_fffe];
        let b_limbs = [1u32, 0, 0x8000_0000];
        let a = Nat::from_limbs(&a_limbs);
        let b = Nat::from_limbs(&b_limbs);
        let (q, r) = a.div_rem(&b);
        // Verify via reconstruction rather than a precomputed constant.
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp(&b) == core::cmp::Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Nat::from(1u32).div_rem(&Nat::zero());
    }

    #[test]
    fn reconstruction_randomish() {
        // Deterministic pseudo-random cross-check without pulling in rand.
        let mut state = 0x853c_49e6_748f_ea9bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let a = Nat::from_u128(((next() as u128) << 64) | next() as u128);
            let b = Nat::from_u128((next() as u128) >> (next() % 64) | 1);
            let (q, r) = a.div_rem(&b);
            assert_eq!(q.mul(&b).add(&r), a);
            assert!(r.cmp(&b) == core::cmp::Ordering::Less);
        }
    }

    #[test]
    fn into_variant_reuses_buffers_and_matches() {
        let mut state = 0xc0ff_ee00_dead_0042u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut q = Nat::default();
        let mut r = Nat::default();
        let mut scratch = DivScratch::new();
        for _ in 0..50 {
            let a = Nat::from_u128(((next() as u128) << 64) | next() as u128);
            let b = Nat::from_u128((next() as u128 | 1) >> (next() % 100));
            if b.is_zero() {
                continue;
            }
            a.div_rem_into(&b, &mut q, &mut r, &mut scratch);
            let (qe, re) = a.div_rem(&b);
            assert_eq!(q, qe);
            assert_eq!(r, re);
        }
    }
}
