//! Slice-level arithmetic kernels.
//!
//! These operate on raw little-endian limb slices so that both the
//! heap-allocated [`crate::Nat`] type and the fixed pre-allocated GCD operand
//! buffers of `bulkgcd-core` (paper Fig. 1) can share one implementation.
//!
//! Unless stated otherwise, slices need not be normalized (they may carry
//! high zero limbs); functions that return a length always return the
//! *normalized* length of the result.

use crate::limb::{adc, lo, sbb, Limb, LIMB_BITS};

/// Length of `a` with high zero limbs stripped.
#[inline]
pub fn normalized_len(a: &[Limb]) -> usize {
    let mut n = a.len();
    while n > 0 && a[n - 1] == 0 {
        n -= 1;
    }
    n
}

/// Compare two little-endian limb slices as natural numbers.
pub fn cmp(a: &[Limb], b: &[Limb]) -> core::cmp::Ordering {
    use core::cmp::Ordering;
    let la = normalized_len(a);
    let lb = normalized_len(b);
    match la.cmp(&lb) {
        Ordering::Equal => {}
        ord => return ord,
    }
    for i in (0..la).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Number of significant bits of `a` (0 for the value zero).
#[inline]
pub fn bit_len(a: &[Limb]) -> u64 {
    let n = normalized_len(a);
    if n == 0 {
        0
    } else {
        n as u64 * LIMB_BITS as u64 - a[n - 1].leading_zeros() as u64
    }
}

/// Number of trailing zero bits of `a`. Returns `None` for the value zero.
pub fn trailing_zeros(a: &[Limb]) -> Option<u64> {
    for (i, &w) in a.iter().enumerate() {
        if w != 0 {
            return Some(i as u64 * LIMB_BITS as u64 + w.trailing_zeros() as u64);
        }
    }
    None
}

/// Test bit `i` (little-endian bit order; bit 0 is the least significant).
#[inline]
pub fn bit(a: &[Limb], i: u64) -> bool {
    let limb = (i / LIMB_BITS as u64) as usize;
    if limb >= a.len() {
        return false;
    }
    (a[limb] >> (i % LIMB_BITS as u64)) & 1 == 1
}

/// `a += b`, returning the final carry (0 or 1). Requires `a.len() >= b.len()`;
/// the carry propagates through the high limbs of `a`.
pub fn add_assign(a: &mut [Limb], b: &[Limb]) -> Limb {
    debug_assert!(a.len() >= b.len());
    let mut carry = 0;
    for (ai, &bi) in a.iter_mut().zip(b.iter()) {
        let (s, c) = adc(*ai, bi, carry);
        *ai = s;
        carry = c;
    }
    if carry != 0 {
        for ai in a.iter_mut().skip(b.len()) {
            let (s, c) = adc(*ai, 0, carry);
            *ai = s;
            carry = c;
            if carry == 0 {
                break;
            }
        }
    }
    carry
}

/// `a -= b`, returning the final borrow (0 or 1). Requires `a.len() >= b.len()`.
/// A non-zero return means `b > a` and `a` now holds the wrapped difference.
pub fn sub_assign(a: &mut [Limb], b: &[Limb]) -> Limb {
    debug_assert!(a.len() >= b.len());
    let mut borrow = 0;
    for (ai, &bi) in a.iter_mut().zip(b.iter()) {
        let (d, bo) = sbb(*ai, bi, borrow);
        *ai = d;
        borrow = bo;
    }
    if borrow != 0 {
        for ai in a.iter_mut().skip(b.len()) {
            let (d, bo) = sbb(*ai, 0, borrow);
            *ai = d;
            borrow = bo;
            if borrow == 0 {
                break;
            }
        }
    }
    borrow
}

/// `a -= alpha * b`, returning the final borrow limb.
///
/// This is the multiply-subtract at the heart of the paper's
/// `X ← X − Y·α` update (§IV): one pass over the operands with a 64-bit
/// accumulator. Requires `a.len() >= b.len()`. If `alpha * b <= a` the
/// returned borrow is zero.
pub fn submul_assign(a: &mut [Limb], b: &[Limb], alpha: Limb) -> Limb {
    debug_assert!(a.len() >= b.len());
    // carry holds the high part of alpha*b[i] plus the subtraction borrow;
    // it always fits in a u64 because alpha*b[i] + carry <= D^2 - 1.
    let mut carry: u64 = 0;
    for (ai, &bi) in a.iter_mut().zip(b.iter()) {
        let p = alpha as u64 * bi as u64 + carry;
        let (d, bo) = sbb(*ai, lo(p), 0);
        *ai = d;
        carry = (p >> LIMB_BITS) + bo as u64;
    }
    let mut i = b.len();
    while carry != 0 && i < a.len() {
        let (d, bo) = sbb(a[i], lo(carry), 0);
        a[i] = d;
        carry = (carry >> LIMB_BITS) + bo as u64;
        i += 1;
    }
    lo(carry)
}

/// Shift `a` right by `r` bits in place. Bits shifted out are discarded.
/// Returns the normalized length of the result.
pub fn shr_in_place(a: &mut [Limb], r: u64) -> usize {
    let n = normalized_len(a);
    if n == 0 {
        return 0;
    }
    let limb_shift = (r / LIMB_BITS as u64) as usize;
    let bit_shift = (r % LIMB_BITS as u64) as u32;
    if limb_shift >= n {
        a[..n].fill(0);
        return 0;
    }
    if bit_shift == 0 {
        a.copy_within(limb_shift..n, 0);
    } else {
        for i in 0..n - limb_shift {
            let lo = a[i + limb_shift] >> bit_shift;
            let hi = if i + limb_shift + 1 < n {
                a[i + limb_shift + 1] << (LIMB_BITS - bit_shift)
            } else {
                0
            };
            a[i] = lo | hi;
        }
    }
    a[n - limb_shift..n].fill(0);
    normalized_len(&a[..n - limb_shift])
}

/// Shift `a` left by `r` bits in place. Requires the slice to be long enough
/// to hold the result. Returns the normalized length of the result.
pub fn shl_in_place(a: &mut [Limb], r: u64) -> usize {
    let n = normalized_len(a);
    if n == 0 {
        return 0;
    }
    let limb_shift = (r / LIMB_BITS as u64) as usize;
    let bit_shift = (r % LIMB_BITS as u64) as u32;
    let new_hi = n + limb_shift + usize::from(bit_shift != 0);
    assert!(
        new_hi <= a.len(),
        "shl_in_place overflow: need {new_hi} limbs, have {}",
        a.len()
    );
    // Anything above the source digits is treated as garbage and cleared.
    a[n..].fill(0);
    if bit_shift == 0 {
        a.copy_within(0..n, limb_shift);
    } else {
        // Highest destination limb first to avoid clobbering sources.
        for i in (0..n).rev() {
            let hi = a[i] >> (LIMB_BITS - bit_shift);
            let lo = a[i] << bit_shift;
            a[i + limb_shift + 1] |= hi;
            a[i + limb_shift] = lo;
        }
    }
    if limb_shift > 0 {
        a[..limb_shift].fill(0);
    }
    normalized_len(a)
}

/// The paper's `rshift(X)` (§II): remove all trailing zero bits, in place.
/// Returns `(normalized length, number of bits removed)`.
/// `rshift(0)` is defined as `(0, 0)`.
pub fn rshift_in_place(a: &mut [Limb]) -> (usize, u64) {
    match trailing_zeros(a) {
        None => (0, 0),
        Some(0) => (normalized_len(a), 0),
        Some(r) => (shr_in_place(a, r), r),
    }
}

/// Fused `X ← rshift(X − α·Y)` in a single pass (paper §IV).
///
/// Computes the difference limb-by-limb from the least significant end while
/// simultaneously emitting the right-shifted result, exactly as the paper's
/// register-pipelined loop does (one read of X, one read of Y, one write of
/// X per limb). The shift amount is determined from the low 64 bits of the
/// difference; if the difference has 64 or more trailing zero bits (vanishingly
/// rare for random inputs) we fall back to the two-pass path.
///
/// Requirements: `α·Y ≤ X`, `x.len() >= y.len()`.
/// Returns `(normalized length of X, bits shifted)`.
pub fn fused_submul_rshift(x: &mut [Limb], y: &[Limb], alpha: Limb) -> (usize, u64) {
    debug_assert!(x.len() >= y.len());
    let yl = y.len();
    let xl = x.len();

    // Compute the two lowest difference limbs to find the shift amount.
    let get_y = |i: usize| -> Limb {
        if i < yl {
            y[i]
        } else {
            0
        }
    };
    let mut carry: u64 = 0; // combined mul-high + borrow chain, as in submul_assign
    let mut d0 = 0;
    let mut d1 = 0;
    #[allow(clippy::needless_range_loop)] // i indexes two arrays in lockstep
    for i in 0..2.min(xl) {
        let p = alpha as u64 * get_y(i) as u64 + carry;
        let (d, bo) = sbb(x[i], lo(p), 0);
        if i == 0 {
            d0 = d;
        } else {
            d1 = d;
        }
        carry = (p >> LIMB_BITS) + bo as u64;
    }
    let low = (d1 as u64) << LIMB_BITS | d0 as u64;
    if low == 0 {
        // >= 64 trailing zero bits (or tiny operand): two-pass fallback.
        let borrow = submul_assign(x, y, alpha);
        debug_assert_eq!(borrow, 0, "fused_submul_rshift requires alpha*y <= x");
        let (len, r) = rshift_in_place(x);
        return (len, r);
    }
    let r = low.trailing_zeros() as u64;
    if r >= LIMB_BITS as u64 {
        // Shift crosses a limb boundary; take the simple path.
        let borrow = submul_assign(x, y, alpha);
        debug_assert_eq!(borrow, 0);
        let (len, r2) = rshift_in_place(x);
        return (len, r2);
    }
    let rs = r as u32;
    // Single fused pass: recompute the difference limb stream, emitting each
    // output limb as soon as its high bits are known.
    let mut carry: u64 = 0;
    let mut prev: Limb = 0; // difference limb i-1, not yet emitted
    for i in 0..xl {
        let p = alpha as u64 * get_y(i) as u64 + carry;
        let (d, bo) = sbb(x[i], lo(p), 0);
        carry = (p >> LIMB_BITS) + bo as u64;
        if i > 0 {
            x[i - 1] = if rs == 0 {
                prev
            } else {
                (prev >> rs) | (d << (LIMB_BITS - rs))
            };
        }
        prev = d;
    }
    debug_assert_eq!(carry, 0, "fused_submul_rshift requires alpha*y <= x");
    x[xl - 1] = prev >> rs;
    (normalized_len(x), r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_u128(mut v: u128) -> Vec<Limb> {
        let mut out = vec![];
        while v != 0 {
            out.push(v as Limb);
            v >>= 32;
        }
        out
    }

    fn to_u128(a: &[Limb]) -> u128 {
        a.iter()
            .enumerate()
            .fold(0u128, |acc, (i, &w)| acc | (w as u128) << (32 * i))
    }

    #[test]
    fn normalized_len_strips_high_zeros() {
        assert_eq!(normalized_len(&[1, 2, 0, 0]), 2);
        assert_eq!(normalized_len(&[0, 0]), 0);
        assert_eq!(normalized_len(&[]), 0);
    }

    #[test]
    fn cmp_handles_unnormalized() {
        use core::cmp::Ordering::*;
        assert_eq!(cmp(&[1, 0, 0], &[1]), Equal);
        assert_eq!(cmp(&[0, 1], &[5]), Greater);
        assert_eq!(cmp(&[5], &[0, 1]), Less);
        assert_eq!(cmp(&[2, 1], &[3, 1]), Less);
    }

    #[test]
    fn bit_len_cases() {
        assert_eq!(bit_len(&[]), 0);
        assert_eq!(bit_len(&[0]), 0);
        assert_eq!(bit_len(&[1]), 1);
        assert_eq!(bit_len(&[0, 1]), 33);
        assert_eq!(bit_len(&[u32::MAX, u32::MAX]), 64);
    }

    #[test]
    fn trailing_zeros_cases() {
        assert_eq!(trailing_zeros(&[]), None);
        assert_eq!(trailing_zeros(&[0, 0]), None);
        assert_eq!(trailing_zeros(&[8]), Some(3));
        assert_eq!(trailing_zeros(&[0, 2]), Some(33));
    }

    #[test]
    fn add_sub_roundtrip_u128() {
        let a = 0x0123_4567_89ab_cdef_1122_3344u128;
        let b = 0x0fed_cba9_8765_4321u128;
        let mut x = from_u128(a);
        x.push(0); // headroom
        assert_eq!(add_assign(&mut x, &from_u128(b)), 0);
        assert_eq!(to_u128(&x), a + b);
        assert_eq!(sub_assign(&mut x, &from_u128(b)), 0);
        assert_eq!(to_u128(&x), a);
    }

    #[test]
    fn sub_underflow_reports_borrow() {
        let mut x = from_u128(5);
        assert_eq!(sub_assign(&mut x, &from_u128(7)), 1);
    }

    #[test]
    fn submul_matches_u128() {
        let a = 0xffff_ffff_ffff_ffff_ffffu128;
        let b = 0x1234_5678u128;
        let alpha = 0x9abc_def0u32;
        let mut x = from_u128(a);
        assert_eq!(submul_assign(&mut x, &from_u128(b), alpha), 0);
        assert_eq!(to_u128(&x), a - b * alpha as u128);
    }

    #[test]
    fn submul_carry_propagates_past_b() {
        // Force borrow propagation through high limbs of x.
        let a = (1u128 << 96) | 1;
        let b = 2u128;
        let alpha = 1u32;
        let mut x = from_u128(a);
        assert_eq!(submul_assign(&mut x, &from_u128(b), alpha), 0);
        assert_eq!(to_u128(&x), a - 2);
    }

    #[test]
    fn shr_various() {
        let v = 0x0123_4567_89ab_cdef_0011_2233u128;
        for r in [0u64, 1, 31, 32, 33, 63, 64, 65, 95] {
            let mut x = from_u128(v);
            let len = shr_in_place(&mut x, r);
            assert_eq!(to_u128(&x[..len]), v >> r, "r={r}");
        }
    }

    #[test]
    fn shr_to_zero() {
        let mut x = from_u128(0xff);
        assert_eq!(shr_in_place(&mut x, 8), 0);
        assert_eq!(shr_in_place(&mut x, 1000), 0);
    }

    #[test]
    fn shl_various() {
        let v = 0x0123_4567_89abu128;
        for r in [0u64, 1, 31, 32, 33, 63, 64] {
            let mut x = from_u128(v);
            x.resize(x.len() + 3, 0);
            let len = shl_in_place(&mut x, r);
            assert_eq!(to_u128(&x[..len]), v << r, "r={r}");
        }
    }

    #[test]
    fn rshift_strips_exactly_trailing_zeros() {
        let mut x = from_u128(0b1101_0100 << 40);
        let (len, r) = rshift_in_place(&mut x);
        assert_eq!(r, 42);
        assert_eq!(to_u128(&x[..len]), 0b11_0101);
    }

    #[test]
    fn fused_matches_two_pass() {
        let xs: [u128; 5] = [
            0xffff_ffff_ffff_ffff_ffff_ffffu128,
            0x0123_4567_89ab_cdef_0123_4567u128,
            (1u128 << 100) + (1 << 50),
            u128::MAX >> 1,
            0x1_0000_0000u128,
        ];
        let ys: [u128; 3] = [0x89ab_cdefu128, 0x1_0000_0001u128, 3];
        for &a in &xs {
            for &b in &ys {
                for alpha in [1u32, 3, 0x7fff_ffff] {
                    if b * alpha as u128 > a {
                        continue;
                    }
                    let mut x = from_u128(a);
                    let y = from_u128(b);
                    if y.len() > x.len() {
                        continue;
                    }
                    let (len, r) = fused_submul_rshift(&mut x, &y, alpha);
                    let expect = a - b * alpha as u128;
                    let tz = if expect == 0 {
                        0
                    } else {
                        expect.trailing_zeros() as u64
                    };
                    assert_eq!(r, tz, "a={a:#x} b={b:#x} alpha={alpha:#x}");
                    assert_eq!(to_u128(&x[..len]), expect >> tz);
                }
            }
        }
    }

    #[test]
    fn fused_handles_zero_result() {
        let mut x = from_u128(21);
        let y = from_u128(7);
        let (len, _) = fused_submul_rshift(&mut x, &y, 3);
        assert_eq!(len, 0);
    }

    #[test]
    fn fused_handles_many_trailing_zeros() {
        // difference = 2^96: forces the fallback path.
        let a = (1u128 << 96) + 5;
        let mut x = from_u128(a);
        let y = from_u128(5);
        let (len, r) = fused_submul_rshift(&mut x, &y, 1);
        assert_eq!(r, 96);
        assert_eq!(to_u128(&x[..len]), 1);
    }
}
