//! Newton–Raphson reciprocal division for large divisors.
//!
//! The classical Knuth Algorithm D costs O((la−lb)·lb) limb operations —
//! quadratic at the remainder tree's million-bit nodes. This module
//! computes a scaled reciprocal `I = ⌊β^{2n}/v⌋` (β = 2³², `n = lb`) by
//! precision-doubling Newton iteration and divides block by block, so
//! division rides the same subquadratic multiply ladder as everything
//! else.
//!
//! Three structural choices keep the constant factor low enough to beat
//! Knuth near the crossover:
//!
//! * **Implicit leading limb.** `I ∈ [β^n, 2β^n]`, so we store only
//!   `x = I − β^n` (exactly `n` limbs). Every product involving the
//!   reciprocal splits as `F·w = w·β^n + x·w`, keeping the multiply at
//!   `n×n` — an `(n+1)`-limb operand would push the NTT to the next
//!   power-of-two transform and double its cost.
//! * **Approximate recursion, one exact fixup.** Inner levels run the
//!   plain Newton step with the halves overlapping by one limb
//!   (`h = n/2 + 1`), which bounds the error to a few units at *every*
//!   level without any per-level exactness pass (the squared error of
//!   the half-size reciprocal is scaled by `β^{n−2h} ≤ β^{−2}`). A
//!   single residue computation at the top turns the approximation into
//!   the exact floor.
//! * **Limb peeling.** Where an operand unavoidably carries one or two
//!   limbs past a power-of-two width, those limbs are applied as O(n)
//!   scalar rows and only the power-of-two core goes through the
//!   dispatched multiply.
//!
//! Per quotient digit the estimate `q̂ = R_h + ⌊R_h·x/β^n⌋` (using only
//! the top `n` limbs of the partial remainder) **never overshoots** the
//! true digit and undershoots by a small constant, so the correction
//! loop is O(1) subtractions. A counter-guarded fallback to Knuth keeps
//! even a broken bound from affecting correctness.

use crate::div::{div_rem_knuth, div_rem_limb};
use crate::limb::{lo, Limb, LIMB_BITS};
use crate::mul::mul_slices;
use crate::ops;
use core::cmp::Ordering;

/// Below this divisor width the reciprocal comes straight from Knuth
/// division of `β^{2n}` — the Newton recursion's base case.
const INV_BASE_LIMBS: usize = 16;

/// Upper bound on exact-correction iterations before falling back to
/// Knuth (analysis says ≤ ~8 at the reciprocal, ≤ ~5 per digit).
const MAX_CORRECTIONS: usize = 256;

/// `v += 1` with carry, growing by one limb if needed.
fn inc(v: &mut Vec<Limb>) {
    for w in v.iter_mut() {
        let (s, overflow) = w.overflowing_add(1);
        *w = s;
        if !overflow {
            return;
        }
    }
    v.push(1);
}

/// `v -= 1`; `v` must be non-zero.
fn dec(v: &mut [Limb]) {
    for w in v.iter_mut() {
        let (d, underflow) = w.overflowing_sub(1);
        *w = d;
        if !underflow {
            return;
        }
    }
    debug_assert!(false, "dec underflow");
}

/// `x += 1` within its fixed width; saturates to all-ones and returns
/// `true` on overflow (the `v = β^n/2` edge where `I = 2β^n` does not
/// fit `n` limbs — understating by one keeps the no-overshoot invariant).
fn inc_clamped(x: &mut [Limb]) -> bool {
    for w in x.iter_mut() {
        let (s, overflow) = w.overflowing_add(1);
        *w = s;
        if !overflow {
            return false;
        }
    }
    for w in x.iter_mut() {
        *w = Limb::MAX;
    }
    true
}

/// `acc += a·l` as one schoolbook row. `acc` must be long enough to
/// absorb the product and its carry.
fn addmul_limb(acc: &mut [Limb], a: &[Limb], l: Limb) {
    let mut carry: u64 = 0;
    let (low, high) = acc.split_at_mut(a.len());
    for (ai, &w) in low.iter_mut().zip(a.iter()) {
        let t = (w as u64) * (l as u64) + (*ai as u64) + carry;
        *ai = lo(t);
        carry = t >> LIMB_BITS;
    }
    for ai in high.iter_mut() {
        if carry == 0 {
            return;
        }
        let t = (*ai as u64) + carry;
        *ai = lo(t);
        carry = t >> LIMB_BITS;
    }
    debug_assert_eq!(carry, 0, "addmul_limb carry past buffer");
}

/// Full product `a·b` where only the `k×k` low cores go through the
/// dispatched multiply; the few limbs past `k` in either operand are
/// applied as scalar rows. Keeps the big multiply at a power-of-two
/// shape when `a`/`b` barely exceed it. Returns a normalized vector.
fn mul_peel(a: &[Limb], b: &[Limb], k: usize) -> Vec<Limb> {
    let ka = k.min(a.len());
    let kb = k.min(b.len());
    let mut out: Vec<Limb> = vec![0; a.len() + b.len() + 1];
    let core = mul_slices(&a[..ka], &b[..kb]);
    out[..core.len()].copy_from_slice(&core);
    for (i, &l) in a[ka..].iter().enumerate() {
        if l != 0 {
            addmul_limb(&mut out[ka + i..], b, l);
        }
    }
    for (j, &l) in b[kb..].iter().enumerate() {
        if l != 0 {
            addmul_limb(&mut out[kb + j..], &a[..ka], l);
        }
    }
    out.truncate(ops::normalized_len(&out));
    out
}

/// `(sign, |a − b|)` with `sign = true` when `a < b`. Consumes `a`.
fn signed_diff(mut a: Vec<Limb>, b: &[Limb]) -> (bool, Vec<Limb>) {
    match ops::cmp(&a, b) {
        Ordering::Less => {
            let la = ops::normalized_len(&a);
            let mut d = b.to_vec();
            let borrow = ops::sub_assign(&mut d, &a[..la]);
            debug_assert_eq!(borrow, 0);
            d.truncate(ops::normalized_len(&d));
            (true, d)
        }
        _ => {
            let lb = ops::normalized_len(b);
            let borrow = ops::sub_assign(&mut a, &b[..lb]);
            debug_assert_eq!(borrow, 0);
            a.truncate(ops::normalized_len(&a));
            (false, a)
        }
    }
}

/// Exact base case: `x = ⌊β^{2n}/v⌋ − β^n` by Knuth division, clamped to
/// all-ones when the true reciprocal is exactly `2β^n`.
fn invert_knuth(v: &[Limb]) -> Vec<Limb> {
    let n = v.len();
    let i = div_rem_knuth(&beta2n_of(n), v).0;
    debug_assert_eq!(i.len(), n + 1);
    if i.len() > n && i[n] >= 2 {
        return vec![Limb::MAX; n];
    }
    let mut x = i;
    x.truncate(n);
    x
}

/// Approximate reciprocal: `n` limbs `x` with `β^n + x` within a few
/// units (either side) of `⌊β^{2n}/v⌋`. `v` must be normalized (top bit
/// of `v[n−1]` set).
fn approx_recip(v: &[Limb]) -> Vec<Limb> {
    let n = v.len();
    debug_assert!(n >= 1 && v[n - 1] >> (LIMB_BITS - 1) == 1);
    if n <= INV_BASE_LIMBS {
        return invert_knuth(v);
    }

    // Recurse on the top h limbs with a one-limb overlap past the
    // midpoint: the half-size error δ contributes δ²·β^{n−2h} ≤ δ²/β²
    // after the Newton step, so the error stays O(1) at every level.
    let h = n / 2 + 1;
    let xh = approx_recip(&v[n - h..]);

    // e = β^{n+h} − (β^h + xh)·v, signed; |e| ≲ 6β^n.
    let xv = mul_slices(&xh, v);
    let mut acc: Vec<Limb> = vec![0; n + h + 1];
    acc[n + h] = 1;
    let borrow = ops::sub_assign(&mut acc[h..], v);
    debug_assert_eq!(borrow, 0);
    let (e_neg, e) = signed_diff(acc, &xv);

    // x = xh·β^{n−h} ± ⌊e_k·(β^h + xh)/β^{3h−n}⌋ with e_k = ⌊|e|/β^{n−h}⌋;
    // dropping e's low limbs perturbs the correction by < β^{n−2h} ≤ β^{−2}.
    let mut x: Vec<Limb> = vec![0; n - h];
    x.extend_from_slice(&xh);
    if e.len() > n - h {
        let ek = &e[n - h..];
        let p = mul_peel(ek, &xh, n / 2);
        let mut corr: Vec<Limb> = vec![0; (h + ek.len()).max(p.len()) + 1];
        corr[h..h + ek.len()].copy_from_slice(ek);
        let carry = ops::add_assign(&mut corr, &p);
        debug_assert_eq!(carry, 0);
        let s = (3 * h - n).min(corr.len());
        let d = &corr[s..];
        let ld = ops::normalized_len(d);
        if e_neg {
            if ld > n || ops::cmp(&x, &d[..ld]) == Ordering::Less {
                x.iter_mut().for_each(|w| *w = 0);
            } else {
                let borrow = ops::sub_assign(&mut x, &d[..ld]);
                debug_assert_eq!(borrow, 0);
            }
        } else if ld > n || ops::add_assign(&mut x, &d[..ld]) != 0 {
            x.iter_mut().for_each(|w| *w = Limb::MAX);
        }
    }
    x
}

/// Exact scaled reciprocal of a normalized divisor as `n` limbs `x` with
/// `β^n + x = ⌊β^{2n}/v⌋` (understated by one in the `v = β^n/2` edge
/// case, which preserves the digit estimator's no-overshoot invariant).
fn invert(v: &[Limb]) -> Vec<Limb> {
    let n = v.len();
    debug_assert!(n >= 1 && v[n - 1] >> (LIMB_BITS - 1) == 1);
    if n <= INV_BASE_LIMBS {
        return invert_knuth(v);
    }

    let mut x = approx_recip(v);

    // Exact residue e = β^{2n} − (β^n + x)·v = (β^n − v)·β^n − x·v,
    // then walk x until 0 ≤ e < v. The approximation error is O(1), so
    // the loop runs a handful of O(n) steps.
    let xv = mul_slices(&x, v);
    let mut acc: Vec<Limb> = vec![0; 2 * n + 1];
    acc[2 * n] = 1;
    let borrow = ops::sub_assign(&mut acc[n..], v);
    debug_assert_eq!(borrow, 0);
    let (e_neg, mut e) = signed_diff(acc, &xv);

    let mut guard = 0usize;
    if e_neg {
        // Overshoot: each decrement of x adds v back into the residue;
        // stop once the deficit fits inside one divisor.
        loop {
            guard += 1;
            if guard > MAX_CORRECTIONS || x.iter().all(|&w| w == 0) {
                return invert_knuth(v);
            }
            dec(&mut x);
            if ops::cmp(&e, v) != Ordering::Greater {
                break;
            }
            let borrow = ops::sub_assign(&mut e, v);
            debug_assert_eq!(borrow, 0);
        }
    } else {
        while ops::cmp(&e, v) != Ordering::Less {
            guard += 1;
            if guard > MAX_CORRECTIONS {
                return invert_knuth(v);
            }
            if inc_clamped(&mut x) {
                break;
            }
            let borrow = ops::sub_assign(&mut e, v);
            debug_assert_eq!(borrow, 0);
        }
    }
    x
}

/// `β^{2n}` as a limb vector (fallback paths).
fn beta2n_of(n: usize) -> Vec<Limb> {
    let mut num = vec![0; 2 * n + 1];
    num[2 * n] = 1;
    num
}

/// Divide `a` by `b` via the scaled reciprocal. Same contract as
/// [`crate::div::div_rem_slices`]: normalized `(quotient, remainder)`,
/// panics (assert) on a zero divisor. Correct for every operand shape;
/// the dispatcher only routes large divisors here because the reciprocal
/// has a fixed O(M(lb)) cost that narrow divisions would not amortize.
pub fn div_rem_newton(a: &[Limb], b: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    let la = ops::normalized_len(a);
    let lb = ops::normalized_len(b);
    assert!(lb != 0, "division by zero");
    if la < lb || ops::cmp(a, b) == Ordering::Less {
        return (Vec::new(), a[..la].to_vec());
    }
    if lb == 1 {
        let (q, r) = div_rem_limb(&a[..la], b[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }

    // Normalize exactly like Knuth D1 so the reciprocal precondition holds.
    let shift = b[lb - 1].leading_zeros();
    let mut u = a[..la].to_vec();
    u.push(0);
    if shift > 0 {
        ops::shl_in_place(&mut u, shift as u64);
    }
    let mut v = b[..lb].to_vec();
    if shift > 0 {
        v.push(0);
        let nv = ops::shl_in_place(&mut v, shift as u64);
        v.truncate(nv);
    }
    let n = v.len();
    debug_assert_eq!(n, lb);
    let lu = ops::normalized_len(&u);
    u.truncate(lu);

    let x = invert(&v);

    // Long division with n-limb "digits", most significant chunk first.
    // Invariant: r < v before each chunk, so R = r·β^t + chunk < v·β^n and
    // every digit fits n limbs.
    let mut q: Vec<Limb> = vec![0; lu];
    let mut r: Vec<Limb> = Vec::new();
    let mut j = lu;
    while j > 0 {
        let t = if j.is_multiple_of(n) { n } else { j % n };
        j -= t;
        let mut rn: Vec<Limb> = Vec::with_capacity(t + r.len());
        rn.extend_from_slice(&u[j..j + t]);
        rn.extend_from_slice(&r);
        rn.truncate(ops::normalized_len(&rn));
        if ops::cmp(&rn, &v) == Ordering::Less {
            r = rn;
            continue;
        }

        let mut rem = rn;
        let mut qd: Vec<Limb>;
        if rem.len() <= n {
            // R < β^n ≤ 2v, so the digit is exactly 1: let the
            // correction loop below perform the single subtraction.
            qd = Vec::new();
        } else {
            // q̂ = R_h + ⌊R_h·x/β^n⌋ with R_h = ⌊R/β^n⌋ (= the carried
            // remainder). q̂ ≤ true digit ≤ q̂ + O(1): each dropped term
            // (R's low half against x, the floors, I's understatement)
            // is non-negative and worth under a few units.
            let s = mul_slices(&rem[n..], &x);
            let mut est = rem[n..].to_vec();
            est.resize(n + 1, 0);
            if s.len() > n {
                let carry = ops::add_assign(&mut est, &s[n..]);
                debug_assert_eq!(carry, 0);
            }
            est.truncate(ops::normalized_len(&est));
            let pb = mul_slices(&est, &v);
            // q̂ never overshoots, so the subtraction cannot borrow.
            debug_assert!(pb.len() <= rem.len());
            let borrow = ops::sub_assign(&mut rem, &pb);
            debug_assert_eq!(borrow, 0);
            qd = est;
        }
        let mut guard = 0usize;
        while ops::cmp(&rem, &v) != Ordering::Less {
            inc(&mut qd);
            let borrow = ops::sub_assign(&mut rem, &v);
            debug_assert_eq!(borrow, 0);
            guard += 1;
            if guard > MAX_CORRECTIONS {
                // Defensive: exact but quadratic.
                return div_rem_knuth(a, b);
            }
        }
        qd.truncate(ops::normalized_len(&qd));
        if !qd.is_empty() {
            let carry = ops::add_assign(&mut q[j..], &qd);
            debug_assert_eq!(carry, 0, "digit exceeds its quotient slot");
        }
        rem.truncate(ops::normalized_len(&rem));
        r = rem;
    }

    if shift > 0 {
        let nr = ops::shr_in_place(&mut r, shift as u64);
        r.truncate(nr);
    }
    q.truncate(ops::normalized_len(&q));
    r.truncate(ops::normalized_len(&r));
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn rand_vec(state: &mut u64, len: usize) -> Vec<Limb> {
        (0..len).map(|_| crate::limb::lo(xorshift(state))).collect()
    }

    /// `β^n + x` reconstructed as an `n+1`-limb vector.
    fn materialize(x: &[Limb], n: usize) -> Vec<Limb> {
        let mut i = x.to_vec();
        i.resize(n, 0);
        i.push(1);
        i
    }

    #[test]
    fn invert_is_exact_floor_small_and_recursive() {
        let mut state = 0x0bad_cafe_dead_beefu64;
        for n in [1usize, 2, 3, 8, 16, 17, 24, 40, 70, 100, 130, 200, 257] {
            let mut v = rand_vec(&mut state, n);
            v[n - 1] |= 0x8000_0000; // normalized
            let x = invert(&v);
            assert_eq!(x.len(), n, "n={n}");
            let (q, _r) = div_rem_knuth(&beta2n_of(n), &v);
            assert_eq!(materialize(&x, n), q, "n={n}");
        }
    }

    #[test]
    fn invert_power_of_two_divisor_clamps() {
        // v = β^n/2 ⇒ I = 2β^n does not fit; invert must understate by 1.
        for n in [4usize, 20, 40] {
            let mut v: Vec<Limb> = vec![0; n];
            v[n - 1] = 0x8000_0000;
            let x = invert(&v);
            assert_eq!(x, vec![Limb::MAX; n], "n={n}");
        }
    }

    #[test]
    fn approx_recip_error_is_small() {
        let mut state = 0x5eed_5eed_5eed_5eedu64;
        for n in [17usize, 33, 64, 100, 150, 256, 300] {
            let mut v = rand_vec(&mut state, n);
            v[n - 1] |= 0x8000_0000;
            let x = approx_recip(&v);
            assert_eq!(x.len(), n, "n={n}");
            let (exact, _) = div_rem_knuth(&beta2n_of(n), &v);
            let (_, diff) = signed_diff(materialize(&x, n), &exact);
            assert!(
                ops::normalized_len(&diff) <= 1 && diff.first().map_or(0, |&w| w) <= 8,
                "n={n} diff={diff:?}"
            );
        }
    }

    #[test]
    fn matches_knuth_pseudorandom() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for (la, lb) in [
            (4, 2),
            (8, 3),
            (20, 10),
            (33, 17),
            (40, 40),
            (64, 20),
            (80, 33),
            (100, 48),
        ] {
            let a = rand_vec(&mut state, la);
            let mut b = rand_vec(&mut state, lb);
            if ops::normalized_len(&b) == 0 {
                b = vec![1];
            }
            let (qn, rn) = div_rem_newton(&a, &b);
            let (qk, rk) = div_rem_knuth(&a, &b);
            assert_eq!(qn, qk, "quotient la={la} lb={lb}");
            assert_eq!(rn, rk, "remainder la={la} lb={lb}");
        }
    }

    #[test]
    fn exact_and_edge_divisions() {
        // a == b, a < b, exact multiples, power-of-two divisors.
        let b: Vec<Limb> = (1..40u32).collect();
        let (q, r) = div_rem_newton(&b, &b);
        assert_eq!(q, vec![1]);
        assert!(r.is_empty());

        let small = [5u32, 6];
        let (q, r) = div_rem_newton(&small, &b);
        assert!(q.is_empty());
        assert_eq!(r, small.to_vec());

        let m = mul_slices(&b, &[0xdead_beef, 0x1234]);
        let (q, r) = div_rem_newton(&m, &b);
        assert_eq!(q, vec![0xdead_beef, 0x1234]);
        assert!(r.is_empty());

        let mut pow2 = vec![0u32; 37];
        pow2.push(0x8000_0000);
        let a = rand_vec(&mut 0x42u64.wrapping_mul(0x9e37_79b9), 80);
        let (qn, rn) = div_rem_newton(&a, &pow2);
        let (qk, rk) = div_rem_knuth(&a, &pow2);
        assert_eq!((qn, rn), (qk, rk));
    }

    #[test]
    fn worst_case_limbs() {
        // All-max dividends stress the correction loop.
        let a = vec![u32::MAX; 90];
        let b = vec![u32::MAX; 30];
        let (qn, rn) = div_rem_newton(&a, &b);
        let (qk, rk) = div_rem_knuth(&a, &b);
        assert_eq!((qn, rn), (qk, rk));
    }
}
