//! # bulkgcd-bigint
//!
//! Multiword natural-number arithmetic on 32-bit limbs — the substrate for
//! the reproduction of *"Bulk GCD Computation Using a GPU to Break Weak RSA
//! Keys"* (Fujita, Nakano, Ito; IPDPSW 2015).
//!
//! The paper fixes the word size at `d = 32` bits with 64-bit temporaries
//! (§V), and this crate follows suit: numbers are little-endian `u32` limb
//! vectors. Everything the reproduction needs from GMP/OpenSSL is
//! implemented here from scratch:
//!
//! * [`Nat`] — the owner type with comparison, add/sub, shifts and the
//!   paper's `rshift` (trailing-zero strip);
//! * [`ops`] — slice-level kernels shared with the fixed-buffer GCD operands
//!   of `bulkgcd-core`, including the fused `X ← rshift(X − α·Y)` single-pass
//!   update of paper §IV;
//! * a width-dispatched multiplication ladder — schoolbook, Karatsuba,
//!   Toom-Cook-3 ([`toom`]) and a 3-prime CRT NTT ([`ntt`]) — with cutoffs
//!   in [`thresholds`] (env-overridable for tuning);
//! * division by Knuth Algorithm D, switching to Newton–Raphson reciprocal
//!   division ([`newton`]) for large divisors;
//! * GCD by binary/Lehmer loops below [`thresholds::HGCD`] limbs and
//!   subquadratic half-GCD ([`hgcd`]) above it;
//! * Montgomery modular exponentiation and modular inverse (for recovering
//!   RSA private keys);
//! * Miller–Rabin primality testing and random prime generation (replacing
//!   the paper's use of the OpenSSL toolkit to produce RSA moduli).

pub mod barrett;
pub mod bytes;
pub mod convert;
pub mod div;
pub mod extgcd;
pub mod gcd_ref;
pub mod hgcd;
pub mod limb;
pub mod modular;
pub mod mul;
pub mod nat;
pub mod newton;
pub mod ntt;
pub mod ops;
pub mod prime;
pub mod random;
pub mod square;
pub mod thresholds;
pub mod toom;

pub use barrett::Barrett;
pub use extgcd::{ext_gcd, ExtGcd, SignedNat};
pub use limb::{Limb, Wide, D, LIMB_BITS};
pub use modular::Montgomery;
pub use nat::Nat;
