//! Extended Euclidean algorithm with Bézout coefficients — the §I tool
//! ("d = e⁻¹ (mod (p−1)(q−1)) can be computed very easily by extended
//! Euclidean algorithm"), here in full signed form. `Nat::modinv` tracks
//! its coefficient modulo m and never needs signs; this module computes
//! the actual identity `a·x + b·y = gcd(a, b)` and doubles as an
//! independent oracle for `modinv`.

use crate::nat::Nat;
use core::cmp::Ordering;

/// A signed arbitrary-precision integer, just big enough for Bézout
/// coefficients. Zero is always stored non-negative.
#[derive(Clone, PartialEq, Eq)]
pub struct SignedNat {
    /// Absolute value.
    pub magnitude: Nat,
    /// Sign (false = non-negative).
    pub negative: bool,
}

impl SignedNat {
    /// Non-negative value.
    pub fn from_nat(n: Nat) -> Self {
        SignedNat {
            magnitude: n,
            negative: false,
        }
    }

    /// Zero.
    pub fn zero() -> Self {
        Self::from_nat(Nat::zero())
    }

    /// One.
    pub fn one() -> Self {
        Self::from_nat(Nat::one())
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    fn normalized(mut self) -> Self {
        if self.magnitude.is_zero() {
            self.negative = false;
        }
        self
    }

    /// Negation.
    pub fn neg(&self) -> SignedNat {
        SignedNat {
            magnitude: self.magnitude.clone(),
            negative: !self.negative && !self.is_zero(),
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &SignedNat) -> SignedNat {
        self.add(&other.neg())
    }

    /// `self + other`.
    pub fn add(&self, other: &SignedNat) -> SignedNat {
        if self.negative == other.negative {
            return SignedNat {
                magnitude: self.magnitude.add(&other.magnitude),
                negative: self.negative,
            }
            .normalized();
        }
        match self.magnitude.cmp(&other.magnitude) {
            Ordering::Equal => SignedNat::zero(),
            Ordering::Greater => SignedNat {
                magnitude: self.magnitude.sub(&other.magnitude),
                negative: self.negative,
            }
            .normalized(),
            Ordering::Less => SignedNat {
                magnitude: other.magnitude.sub(&self.magnitude),
                negative: other.negative,
            }
            .normalized(),
        }
    }

    /// `self * n` for an unsigned multiplier.
    pub fn mul_nat(&self, n: &Nat) -> SignedNat {
        SignedNat {
            magnitude: self.magnitude.mul(n),
            negative: self.negative && !n.is_zero(),
        }
        .normalized()
    }

    /// Canonical representative of `self mod m` in `[0, m)`.
    pub fn rem_euclid(&self, m: &Nat) -> Nat {
        let r = self.magnitude.rem(m);
        if self.negative && !r.is_zero() {
            m.sub(&r)
        } else {
            r
        }
    }
}

impl core::fmt::Debug for SignedNat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.negative {
            write!(f, "-{:?}", self.magnitude)
        } else {
            write!(f, "{:?}", self.magnitude)
        }
    }
}

/// The Bézout identity `a·x + b·y = gcd(a, b)`.
#[derive(Debug, Clone)]
pub struct ExtGcd {
    /// `gcd(a, b)`.
    pub gcd: Nat,
    /// Coefficient of `a`.
    pub x: SignedNat,
    /// Coefficient of `b`.
    pub y: SignedNat,
}

/// Extended Euclidean algorithm. `ext_gcd(0, 0)` returns gcd 0 with
/// zero coefficients.
pub fn ext_gcd(a: &Nat, b: &Nat) -> ExtGcd {
    let mut old_r = a.clone();
    let mut r = b.clone();
    let mut old_x = SignedNat::one();
    let mut x = SignedNat::zero();
    let mut old_y = SignedNat::zero();
    let mut y = SignedNat::one();
    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = core::mem::replace(&mut r, rem);
        let nx = old_x.sub(&x.mul_nat(&q));
        old_x = core::mem::replace(&mut x, nx);
        let ny = old_y.sub(&y.mul_nat(&q));
        old_y = core::mem::replace(&mut y, ny);
    }
    if a.is_zero() && b.is_zero() {
        return ExtGcd {
            gcd: Nat::zero(),
            x: SignedNat::zero(),
            y: SignedNat::zero(),
        };
    }
    ExtGcd {
        gcd: old_r,
        x: old_x,
        y: old_y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_identity(a: u128, b: u128) {
        let an = Nat::from_u128(a);
        let bn = Nat::from_u128(b);
        let e = ext_gcd(&an, &bn);
        assert_eq!(e.gcd, an.gcd_reference(&bn), "gcd a={a} b={b}");
        // a*x + b*y == g, evaluated in signed arithmetic.
        let ax = SignedNat::from_nat(an.clone()).mul_nat(&e.x.magnitude);
        let ax = if e.x.negative { ax.neg() } else { ax };
        let by = SignedNat::from_nat(bn.clone()).mul_nat(&e.y.magnitude);
        let by = if e.y.negative { by.neg() } else { by };
        let sum = ax.add(&by);
        assert!(!sum.negative, "a={a} b={b}");
        assert_eq!(sum.magnitude, e.gcd, "identity a={a} b={b}");
    }

    #[test]
    fn identity_on_sample_pairs() {
        for (a, b) in [
            (240u128, 46u128),
            (46, 240),
            (1_043_915, 768_955),
            (17, 0),
            (0, 17),
            (1, 1),
            (u64::MAX as u128, 3),
            ((1 << 89) - 1, (1 << 61) - 1),
        ] {
            check_identity(a, b);
        }
    }

    #[test]
    fn zero_zero() {
        let e = ext_gcd(&Nat::zero(), &Nat::zero());
        assert!(e.gcd.is_zero());
    }

    #[test]
    fn known_coefficients() {
        // gcd(240, 46) = 2 = 240*(-9) + 46*47.
        let e = ext_gcd(&Nat::from(240u32), &Nat::from(46u32));
        assert_eq!(e.gcd, Nat::from(2u32));
        assert_eq!(e.x.magnitude, Nat::from(9u32));
        assert!(e.x.negative);
        assert_eq!(e.y.magnitude, Nat::from(47u32));
        assert!(!e.y.negative);
    }

    #[test]
    fn recovers_modular_inverse() {
        // When gcd(a, m) = 1, x mod m is a^{-1} mod m: must agree with
        // Nat::modinv.
        let m = Nat::from(1_000_003u32);
        for a in [2u32, 3, 65537, 999_999] {
            let a = Nat::from(a);
            let e = ext_gcd(&a, &m);
            assert!(e.gcd.is_one());
            let inv = e.x.rem_euclid(&m);
            assert_eq!(Some(inv), a.modinv(&m));
        }
    }

    #[test]
    fn signed_arithmetic_basics() {
        let five = SignedNat::from_nat(Nat::from(5u32));
        let three = SignedNat::from_nat(Nat::from(3u32));
        assert_eq!(three.sub(&five), five.sub(&three).neg());
        assert!(five.sub(&five).is_zero());
        assert!(!five.sub(&five).negative, "zero is non-negative");
        let neg2 = three.sub(&five);
        assert_eq!(neg2.rem_euclid(&Nat::from(7u32)), Nat::from(5u32));
        assert_eq!(
            neg2.mul_nat(&Nat::from(3u32)).rem_euclid(&Nat::from(7u32)),
            Nat::from(1u32)
        );
    }

    #[test]
    fn pseudorandom_identity_sweep() {
        let mut state = 0x7777_1234_dead_beefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..100 {
            let a = ((next() as u128) << 64 | next() as u128) >> (next() % 64);
            let b = ((next() as u128) << 64 | next() as u128) >> (next() % 64);
            check_identity(a, b);
        }
    }
}
