//! A deliberately simple reference GCD used as a test oracle for the five
//! optimized Euclidean variants in `bulkgcd-core`. Kept here (in the
//! substrate crate) so every higher crate can cross-check against it without
//! a dependency cycle.

use crate::nat::Nat;

impl Nat {
    /// Reference GCD via the plain modulo-based Euclidean algorithm.
    /// `gcd(0, y) = y` and `gcd(x, 0) = x`.
    pub fn gcd_reference(&self, other: &Nat) -> Nat {
        let mut x = self.clone();
        let mut y = other.clone();
        while !y.is_zero() {
            let r = x.rem(&y);
            x = core::mem::replace(&mut y, r);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_cases() {
        assert_eq!(Nat::zero().gcd_reference(&Nat::zero()), Nat::zero());
        assert_eq!(Nat::from(5u32).gcd_reference(&Nat::zero()), Nat::from(5u32));
        assert_eq!(Nat::zero().gcd_reference(&Nat::from(5u32)), Nat::from(5u32));
    }

    #[test]
    fn matches_u128_gcd() {
        fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
            while b != 0 {
                let r = a % b;
                a = b;
                b = r;
            }
            a
        }
        let pairs = [
            (12u128, 18u128),
            (1_043_915, 768_955), // the paper's running example: gcd = 5
            (u128::MAX, 12345),
            (1 << 100, 1 << 37),
            (600, 600),
        ];
        for (a, b) in pairs {
            assert_eq!(
                Nat::from_u128(a).gcd_reference(&Nat::from_u128(b)),
                Nat::from_u128(gcd_u128(a, b)),
                "a={a} b={b}"
            );
        }
    }

    #[test]
    fn paper_example_gcd_is_5() {
        // Table I: X = 1043915, Y = 768955, GCD = 5.
        let g = Nat::from(1_043_915u32).gcd_reference(&Nat::from(768_955u32));
        assert_eq!(g, Nat::from(5u32));
    }
}
