//! Dedicated squaring: the cross products `a_i·a_j` (i ≠ j) appear twice
//! in a square, so schoolbook squaring does ~half the single-limb
//! multiplications of a general product. Matters for the product tree
//! (batch GCD squares at every remainder-tree level) and for the modpow
//! square chain.

use crate::limb::{mac, mul_wide, Limb, LIMB_BITS};
use crate::mul::KARATSUBA_CUTOFF;
use crate::nat::Nat;
use crate::ops;

/// Schoolbook squaring of `a` into `out` (zeroed, length >= 2·a.len()).
pub fn square_schoolbook(out: &mut [Limb], a: &[Limb]) {
    let n = a.len();
    debug_assert!(out.len() >= 2 * n);
    debug_assert!(out[..2 * n].iter().all(|&w| w == 0));
    if n == 0 {
        return;
    }
    // Off-diagonal products, each once: out += sum_{i<j} a_i a_j B^{i+j}.
    for i in 0..n {
        let ai = a[i];
        if ai == 0 {
            continue;
        }
        let mut carry = 0;
        for j in i + 1..n {
            let (lo, hi) = mac(out[i + j], ai, a[j], carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + n] = carry;
    }
    // Double them: out <<= 1.
    let mut prev_hi = 0;
    for w in out[..2 * n].iter_mut() {
        let hi = *w >> (LIMB_BITS - 1);
        *w = (*w << 1) | prev_hi;
        prev_hi = hi;
    }
    // Add the diagonal a_i^2 terms.
    let mut carry: Limb = 0;
    for i in 0..n {
        let (lo, hi) = mul_wide(a[i], a[i]);
        let (s, c1) = crate::limb::adc(out[2 * i], lo, carry);
        out[2 * i] = s;
        let (s, c2) = crate::limb::adc(out[2 * i + 1], hi, c1);
        out[2 * i + 1] = s;
        carry = c2;
    }
    debug_assert_eq!(carry, 0, "square fits in 2n limbs");
}

/// Square of a limb slice, allocating the result.
pub fn square_slices(a: &[Limb]) -> Vec<Limb> {
    let n = ops::normalized_len(a);
    if n == 0 {
        return Vec::new();
    }
    if n >= KARATSUBA_CUTOFF {
        // Karatsuba multiplication already splits well; reuse it above the
        // cutoff (its subproducts are squares again only on the diagonal,
        // so a dedicated Karatsuba-square gains little here).
        return crate::mul::mul_slices(a, a);
    }
    let mut out = vec![0; 2 * n];
    square_schoolbook(&mut out, &a[..n]);
    out.truncate(ops::normalized_len(&out));
    out
}

/// `n²` via dedicated squaring below the Karatsuba cutoff (the
/// implementation behind [`Nat::square`]).
pub fn square_nat(n: &Nat) -> Nat {
    Nat::from_limbs(&square_slices(n.limbs()))
}

impl Nat {
    /// `self²` via dedicated squaring below the Karatsuba cutoff.
    pub fn square_fast(&self) -> Nat {
        square_nat(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_mul_small() {
        for v in [0u128, 1, 2, 0xffff_ffff, 0x1_0000_0000, u64::MAX as u128] {
            let n = Nat::from_u128(v);
            assert_eq!(n.square_fast(), n.mul(&n), "v={v:#x}");
            assert_eq!(n.square_fast().to_u128(), Some(v * v));
        }
    }

    #[test]
    fn matches_mul_wide_pseudorandom() {
        let mut state = 0xabcd_ef01_2345_6789u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [1usize, 3, 7, 15, 31, 40, 80] {
            let limbs: Vec<Limb> = (0..len).map(|_| next() as u32).collect();
            let n = Nat::from_limbs(&limbs);
            assert_eq!(n.square_fast(), n.mul(&n), "len={len}");
        }
    }

    #[test]
    fn all_max_limbs() {
        // Worst case carries everywhere.
        let n = Nat::from_limbs(&[u32::MAX; 12]);
        assert_eq!(n.square_fast(), n.mul(&n));
    }

    #[test]
    fn square_method_now_uses_fast_path() {
        let n = Nat::from_u128(0x0123_4567_89ab_cdef_0011_2233);
        assert_eq!(n.square(), n.square_fast());
    }
}
