//! Dedicated squaring: the cross products `a_i·a_j` (i ≠ j) appear twice
//! in a square, so schoolbook squaring does ~half the single-limb
//! multiplications of a general product. Matters for the product tree
//! (batch GCD squares at every remainder-tree level) and for the modpow
//! square chain. Above the Karatsuba cutoff squaring re-enters
//! [`crate::mul::mul_dispatch`] with aliased operands — the NTT rung
//! detects the aliasing and saves one forward transform.

use crate::limb::{mac, mul_wide, Limb, LIMB_BITS};
use crate::nat::Nat;
use crate::ops;
use crate::thresholds;

/// Schoolbook squaring of `a` into `out` (zeroed, length >= 2·a.len()).
pub fn square_schoolbook(out: &mut [Limb], a: &[Limb]) {
    let n = a.len();
    debug_assert!(out.len() >= 2 * n);
    debug_assert!(out[..2 * n].iter().all(|&w| w == 0));
    if n == 0 {
        return;
    }
    // Off-diagonal products, each once: out += sum_{i<j} a_i a_j B^{i+j}.
    for i in 0..n {
        let ai = a[i];
        if ai == 0 {
            continue;
        }
        let mut carry = 0;
        for j in i + 1..n {
            let (lo, hi) = mac(out[i + j], ai, a[j], carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + n] = carry;
    }
    // Double them: out <<= 1.
    let mut prev_hi = 0;
    for w in out[..2 * n].iter_mut() {
        let hi = *w >> (LIMB_BITS - 1);
        *w = (*w << 1) | prev_hi;
        prev_hi = hi;
    }
    // Add the diagonal a_i^2 terms.
    let mut carry: Limb = 0;
    for i in 0..n {
        let (lo, hi) = mul_wide(a[i], a[i]);
        let (s, c1) = crate::limb::adc(out[2 * i], lo, carry);
        out[2 * i] = s;
        let (s, c2) = crate::limb::adc(out[2 * i + 1], hi, c1);
        out[2 * i + 1] = s;
        carry = c2;
    }
    debug_assert_eq!(carry, 0, "square fits in 2n limbs");
}

/// Width-dispatched squaring into `out` (zeroed, length >= 2·a.len() for
/// the normalized length): dedicated schoolbook below the Karatsuba
/// cutoff, the multiply ladder (with aliased operands) above it.
pub fn square_dispatch(out: &mut [Limb], a: &[Limb]) {
    let n = ops::normalized_len(a);
    if n == 0 {
        return;
    }
    let a = &a[..n];
    if n < thresholds::KARATSUBA.get() {
        square_schoolbook(out, a);
    } else {
        crate::mul::mul_dispatch(out, a, a);
    }
}

/// Square of a limb slice, allocating the result.
pub fn square_slices(a: &[Limb]) -> Vec<Limb> {
    let n = ops::normalized_len(a);
    if n == 0 {
        return Vec::new();
    }
    let mut out = vec![0; 2 * n];
    square_dispatch(&mut out, &a[..n]);
    out.truncate(ops::normalized_len(&out));
    out
}

/// `n²` via the squaring dispatch (the implementation behind
/// [`Nat::square`]).
pub fn square_nat(n: &Nat) -> Nat {
    let mut out = Nat::default();
    square_into(n, &mut out);
    out
}

/// `n²` into a caller-owned `Nat`, reusing its allocation.
pub fn square_into(n: &Nat, out: &mut Nat) {
    let len = n.len();
    let buf = out.limbs_mut();
    buf.clear();
    if len == 0 {
        return;
    }
    buf.resize(2 * len, 0);
    square_dispatch(buf, n.limbs());
    let nl = ops::normalized_len(buf);
    buf.truncate(nl);
}

impl Nat {
    /// `self²` via the squaring dispatch.
    pub fn square_fast(&self) -> Nat {
        square_nat(self)
    }

    /// `self²` into a caller-owned `Nat` (the product-tree build path).
    pub fn square_into(&self, out: &mut Nat) {
        square_into(self, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_mul_small() {
        for v in [0u128, 1, 2, 0xffff_ffff, 0x1_0000_0000, u64::MAX as u128] {
            let n = Nat::from_u128(v);
            assert_eq!(n.square_fast(), n.mul(&n), "v={v:#x}");
            assert_eq!(n.square_fast().to_u128(), Some(v * v));
        }
    }

    #[test]
    fn matches_mul_wide_pseudorandom() {
        let mut state = 0xabcd_ef01_2345_6789u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [1usize, 3, 7, 15, 31, 40, 80] {
            let limbs: Vec<Limb> = (0..len).map(|_| next() as u32).collect();
            let n = Nat::from_limbs(&limbs);
            assert_eq!(n.square_fast(), n.mul(&n), "len={len}");
        }
    }

    #[test]
    fn all_max_limbs() {
        // Worst case carries everywhere.
        let n = Nat::from_limbs(&[u32::MAX; 12]);
        assert_eq!(n.square_fast(), n.mul(&n));
    }

    #[test]
    fn square_method_now_uses_fast_path() {
        let n = Nat::from_u128(0x0123_4567_89ab_cdef_0011_2233);
        assert_eq!(n.square(), n.square_fast());
    }

    #[test]
    fn square_into_reuses_buffer() {
        let mut state = 0x5a5a_a5a5_1234_4321u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Nat::default();
        for len in [5usize, 33, 100] {
            let limbs: Vec<Limb> = (0..len).map(|_| next() as u32).collect();
            let n = Nat::from_limbs(&limbs);
            n.square_into(&mut out);
            assert_eq!(out, n.mul(&n), "len={len}");
        }
        Nat::zero().square_into(&mut out);
        assert!(out.is_zero());
    }
}
