//! Half-GCD: binary-recursive GCD reduction for huge operands.
//!
//! The classical Euclid/Lehmer loops cost O(n²) limb work on the
//! million-bit `gcd(N_i, z_i)` steps at the bottom of the remainder tree.
//! This module reduces a pair by recursing on the operands' *top halves*:
//! a half-GCD call on `(a >> p, b >> p)` yields a 2×2 quotient-product
//! matrix `M` that usually reduces the full pair too. We *validate* every
//! speculative reduction — apply `M⁻¹` to the full operands with checked
//! subtraction and require strictly smaller non-negative results — so
//! correctness never leans on the truncation theorems: an accepted matrix
//! is unimodular with non-negative entries, hence
//! `gcd(a, b) = gcd(a', b')` unconditionally, and a rejected one just
//! falls back to a single exact division step (which dispatches to Newton
//! division at these widths). All the multiplies ride `mul_dispatch`, so
//! the whole GCD inherits the subquadratic multiply ladder.
//!
//! `Nat::gcd` is the public driver: binary GCD below
//! [`crate::thresholds::HGCD`], half-GCD rounds above it.

use crate::limb::{Limb, LIMB_BITS};
use crate::nat::Nat;
use crate::ops;
use crate::thresholds;
use core::cmp::Ordering;
use core::mem;

/// Below this operand width (limbs) the recursion bottoms out into
/// batched Lehmer rounds; recursing further costs more than it saves.
const HGCD_BASE_LIMBS: usize = 48;

/// Speculative top-half reductions stop this many bits *before* the
/// theoretical validity boundary. Quotients derived from truncated
/// operands only start disagreeing with the full sequence within a few
/// steps of the boundary, so stopping early makes validation failures
/// rare instead of near-certain — a failed validation throws away the
/// whole recursive reduction for one bit of Euclid progress. The margin
/// also absorbs the base case overshooting `stop` by up to one Lehmer
/// round (~47 bits).
const SPEC_MARGIN_BITS: u64 = 96;

/// A product of Euclid-step matrices `[[q,1],[1,0]]`, tracking
/// `(a, b)ᵀ = M · (a', b')ᵀ`. The determinant is `(−1)^steps`, tracked as
/// `parity` (`false` = even = +1). All entries are non-negative.
#[derive(Clone, Debug)]
pub struct Mat {
    m00: Nat,
    m01: Nat,
    m10: Nat,
    m11: Nat,
    parity: bool,
}

impl Mat {
    pub fn identity() -> Mat {
        Mat {
            m00: Nat::from_limbs(&[1]),
            m01: Nat::default(),
            m10: Nat::default(),
            m11: Nat::from_limbs(&[1]),
            parity: false,
        }
    }

    pub fn is_identity(&self) -> bool {
        !self.parity
            && self.m01.is_zero()
            && self.m10.is_zero()
            && self.m00.is_one()
            && self.m11.is_one()
    }

    /// Append one Euclid step with quotient `q`: `M ← M·[[q,1],[1,0]]`.
    /// A zero quotient appends the pure swap matrix `[[0,1],[1,0]]`.
    fn push_step(&mut self, q: &Nat) {
        let n00 = self.m00.mul(q).add(&self.m01);
        let n10 = self.m10.mul(q).add(&self.m11);
        self.m01 = mem::replace(&mut self.m00, n00);
        self.m11 = mem::replace(&mut self.m10, n10);
        self.parity = !self.parity;
    }

    /// `M ← M·other` (2×2 matrix product; parity adds).
    fn compose(&mut self, o: &Mat) {
        let n00 = self.m00.mul(&o.m00).add(&self.m01.mul(&o.m10));
        let n01 = self.m00.mul(&o.m01).add(&self.m01.mul(&o.m11));
        let n10 = self.m10.mul(&o.m00).add(&self.m11.mul(&o.m10));
        let n11 = self.m10.mul(&o.m01).add(&self.m11.mul(&o.m11));
        self.m00 = n00;
        self.m01 = n01;
        self.m10 = n10;
        self.m11 = n11;
        self.parity ^= o.parity;
    }

    /// Recover `(a', b') = M⁻¹·(a, b)` exactly, or `None` if either
    /// component would go negative (the speculative matrix does not apply
    /// to these operands). Since `det M = ±1`:
    /// even parity → `a' = m11·a − m01·b`, `b' = m00·b − m10·a`;
    /// odd parity  → `a' = m01·b − m11·a`, `b' = m10·a − m00·b`.
    fn apply_inverse(&self, a: &Nat, b: &Nat) -> Option<(Nat, Nat)> {
        let (x0, x1) = (self.m11.mul(a), self.m01.mul(b));
        let (y0, y1) = (self.m00.mul(b), self.m10.mul(a));
        if self.parity {
            Some((x1.checked_sub(&x0)?, y1.checked_sub(&y0)?))
        } else {
            Some((x0.checked_sub(&x1)?, y0.checked_sub(&y1)?))
        }
    }
}

/// One exact Euclid step: `(a, b) ← (b, a mod b)`, recording the quotient.
/// Requires `b` non-zero. Division dispatches through `div_rem_slices`, so
/// huge steps use the Newton reciprocal.
fn euclid_step(a: &mut Nat, b: &mut Nat, m: &mut Mat) {
    debug_assert!(!b.is_zero());
    let (q, r) = a.div_rem(b);
    m.push_step(&q);
    *a = mem::replace(b, r);
}

/// Order a recovered pair so `a >= b`, folding any swap into the matrix.
fn order(mut a: Nat, mut b: Nat, m: &mut Mat) -> (Nat, Nat) {
    if ops::cmp(a.limbs(), b.limbs()) == Ordering::Less {
        mem::swap(&mut a, &mut b);
        m.push_step(&Nat::default());
    }
    (a, b)
}

/// `⌊n/2^k⌋` truncated to its low 64 bits — the leading window of an
/// operand when the caller picks `k = bit_len − 64`.
fn window(n: &Nat, k: u64) -> u64 {
    let limbs = n.limbs();
    let li = (k / LIMB_BITS as u64) as usize;
    let sh = (k % LIMB_BITS as u64) as u32;
    let w0 = limbs.get(li).copied().unwrap_or(0) as u64;
    let w1 = limbs.get(li + 1).copied().unwrap_or(0) as u64;
    let w2 = limbs.get(li + 2).copied().unwrap_or(0) as u64;
    let lo64 = w0 | (w1 << LIMB_BITS);
    if sh == 0 {
        lo64
    } else {
        (lo64 >> sh) | (w2 << (64 - sh))
    }
}

/// Euclid quotients provably shared by every pair whose leading windows
/// are `(x, y)` (Lehmer's double-sided test, HAC 14.57): a quotient is
/// kept only if it comes out identical under both extreme completions of
/// the truncated operands. Typically ~30 quotients per 64-bit window.
fn lehmer_quotients(x0: u64, y0: u64) -> Vec<u64> {
    let (mut x, mut y) = (x0 as i128, y0 as i128);
    let (mut ma, mut mb, mut mc, mut md) = (1i128, 0i128, 0i128, 1i128);
    let mut qs = Vec::new();
    loop {
        if y + mc <= 0 || y + md <= 0 {
            break;
        }
        let q1 = (x + ma) / (y + mc);
        let q2 = (x + mb) / (y + md);
        if q1 != q2 || q1 < 0 {
            break;
        }
        let q = q1;
        let na = mc;
        let nc = ma - q * mc;
        let nb = md;
        let nd = mb - q * md;
        (ma, mb, mc, md) = (na, nb, nc, nd);
        let ny = x - q * y;
        x = y;
        y = ny;
        qs.push(q as u64);
    }
    qs
}

/// Half-GCD: reduce `(a, b)` with `a >= b` until `b` has at most
/// `bit_len(a)/2 + 1` bits, returning the reduced pair (still ordered
/// `a' >= b'`) and the matrix with `(a, b)ᵀ = M·(a', b')ᵀ`. Every step is
/// exact (validated or a true division), so
/// `gcd(a, b) = gcd(a', b')` always.
pub fn hgcd(a0: &Nat, b0: &Nat) -> (Nat, Nat, Mat) {
    let stop = a0.bit_len().max(b0.bit_len()) / 2 + 1;
    hgcd_to(a0, b0, stop)
}

/// [`hgcd`] generalized to an explicit reduction target: shrink `b` to at
/// most `stop` bits (never above the inputs' own bound). Speculative
/// callers pass a target [`SPEC_MARGIN_BITS`] shy of the validity
/// boundary so the reduction they splice in almost always validates.
fn hgcd_to(a0: &Nat, b0: &Nat, stop: u64) -> (Nat, Nat, Mat) {
    let mut m = Mat::identity();
    let (mut a, mut b) = order(a0.clone(), b0.clone(), &mut m);
    loop {
        if b.is_zero() || b.bit_len() <= stop {
            return (a, b, m);
        }
        if a.len() <= HGCD_BASE_LIMBS {
            lehmer_reduce(&mut a, &mut b, &mut m, stop);
            return (a, b, m);
        }

        // Speculate: run half-GCD on the top halves (stopping a margin
        // short of the boundary) and check whether the same quotient
        // sequence reduces the full pair.
        let p = a.bit_len() / 2;
        let ah = a.shr(p);
        let bh = b.shr(p);
        // A splice lands the full pair's `b` at roughly `p + (inner
        // endpoint bits)`, so the inner target must respect BOTH the
        // transfer-validity boundary (`p/2`-ish, kept at a margin) and
        // the caller's own `stop` — without the second bound a single
        // splice can overshoot `stop` by hundreds of bits, pushing the
        // accumulated matrix past the boundary where it stops applying
        // to the caller's *own* parent pair.
        let inner_stop = (ah.bit_len() / 2 + SPEC_MARGIN_BITS).max(stop.saturating_sub(p));
        let mut progressed = false;
        if !bh.is_zero() && bh.bit_len() > inner_stop {
            let (_, _, mh) = hgcd_to(&ah, &bh, inner_stop);
            progressed = try_apply(&mh, &mut a, &mut b, &mut m);
        }
        if !progressed {
            euclid_step(&mut a, &mut b, &mut m);
        }
    }
}

/// Validate a speculative reduction `mh` against the full pair: recover
/// `M⁻¹·(a, b)` with checked subtraction, re-order, and require strict
/// progress. On success splice `mh` into `m` and replace the pair.
fn try_apply(mh: &Mat, a: &mut Nat, b: &mut Nat, m: &mut Mat) -> bool {
    if mh.is_identity() {
        return false;
    }
    if let Some((a2, b2)) = mh.apply_inverse(a, b) {
        let mut swapm = Mat::identity();
        let (a2, b2) = order(a2, b2, &mut swapm);
        // Strict progress keeps the loop well-founded; the checked
        // subtraction already proved exactness.
        if ops::cmp(a2.limbs(), a.limbs()) == Ordering::Less {
            m.compose(mh);
            m.compose(&swapm);
            *a = a2;
            *b = b2;
            return true;
        }
    }
    false
}

/// Base-case reduction: batched Lehmer rounds. Each round derives up to
/// ~30 Euclid quotients from the operands' 64-bit leading windows,
/// rebuilds them as a (structurally unimodular) step matrix, and applies
/// it with the same checked validation as the speculative path — one
/// O(len) pass per ~31 bits of progress instead of per bit. Rounds the
/// windows cannot certify fall back to a single exact division step.
fn lehmer_reduce(a: &mut Nat, b: &mut Nat, m: &mut Mat, stop: u64) {
    while !b.is_zero() && b.bit_len() > stop {
        // The window needs headroom below it for the quotients to be
        // meaningful; tiny tails are cheapest as exact steps.
        if a.bit_len() < 80 {
            euclid_step(a, b, m);
            continue;
        }
        let k = a.bit_len() - 64;
        let qs = lehmer_quotients(window(a, k), window(b, k));
        let mut applied = false;
        if !qs.is_empty() {
            let mut part = Mat::identity();
            let mut q = Nat::default();
            for &qi in &qs {
                q.assign_limbs(&[crate::limb::lo(qi), crate::limb::hi(qi)]);
                part.push_step(&q);
            }
            applied = try_apply(&part, a, b, m);
        }
        if !applied {
            euclid_step(a, b, m);
        }
    }
}

/// Binary GCD over two scratch vectors; the result is left in `sa`
/// (normalized). No allocation beyond growing the caller's buffers.
pub fn gcd_binary_in_place(sa: &mut Vec<Limb>, sb: &mut Vec<Limb>) {
    sa.truncate(ops::normalized_len(sa));
    sb.truncate(ops::normalized_len(sb));
    if sa.is_empty() {
        mem::swap(sa, sb);
        return;
    }
    if sb.is_empty() {
        return;
    }
    let ka = ops::trailing_zeros(sa).unwrap_or(0);
    let kb = ops::trailing_zeros(sb).unwrap_or(0);
    let k = ka.min(kb);
    let na = ops::shr_in_place(sa, ka);
    sa.truncate(na);
    let nb = ops::shr_in_place(sb, kb);
    sb.truncate(nb);
    // Both odd from here on; each round strictly shrinks the larger.
    loop {
        match ops::cmp(sa, sb) {
            Ordering::Equal => break,
            Ordering::Less => mem::swap(sa, sb),
            Ordering::Greater => {}
        }
        let borrow = ops::sub_assign(sa, sb);
        debug_assert_eq!(borrow, 0);
        sa.truncate(ops::normalized_len(sa));
        let tz = ops::trailing_zeros(sa).unwrap_or(0);
        let n = ops::shr_in_place(sa, tz);
        sa.truncate(n);
    }
    if k > 0 {
        let extra = (k / LIMB_BITS as u64) as usize + 1;
        sa.resize(sa.len() + extra, 0);
        let n = ops::shl_in_place(sa, k);
        sa.truncate(n);
    }
}

/// GCD with an explicit half-GCD cutoff (limbs). `Nat::gcd` passes the
/// tuned [`thresholds::HGCD`]; tests pass small cutoffs to exercise the
/// half-GCD machinery on fast operands without touching the global ladder.
pub fn gcd_with_cutoff(x: &Nat, y: &Nat, hgcd_cutoff: usize) -> Nat {
    let mut m = Mat::identity();
    let (mut a, mut b) = order(x.clone(), y.clone(), &mut m);
    loop {
        if b.is_zero() {
            return a;
        }
        if a.len() < hgcd_cutoff {
            let mut sa = a.limbs().to_vec();
            let mut sb = b.limbs().to_vec();
            gcd_binary_in_place(&mut sa, &mut sb);
            return Nat::from_limbs(&sa);
        }
        let (a2, b2, mh) = hgcd(&a, &b);
        if mh.is_identity() {
            // b is already far below a: one exact division step.
            let r = a.rem(&b);
            a = mem::replace(&mut b, r);
        } else {
            a = a2;
            b = b2;
        }
    }
}

/// GCD into a caller-owned `Nat`, with caller scratch for the binary path
/// so the steady-state batch loop performs no allocations. Falls back to
/// the (allocating) half-GCD driver above the cutoff — findings at those
/// widths are rare enough that the allocation is irrelevant.
pub fn gcd_into(x: &Nat, y: &Nat, sa: &mut Vec<Limb>, sb: &mut Vec<Limb>, out: &mut Nat) {
    let min_len = x.len().min(y.len()).max(1);
    if min_len >= thresholds::HGCD.get() {
        *out = gcd_with_cutoff(x, y, thresholds::HGCD.get());
        return;
    }
    sa.clear();
    sa.extend_from_slice(x.limbs());
    sb.clear();
    sb.extend_from_slice(y.limbs());
    gcd_binary_in_place(sa, sb);
    out.assign_limbs(sa);
}

impl Nat {
    /// Greatest common divisor: binary GCD below the
    /// [`thresholds::HGCD`] cutoff, validated half-GCD rounds above it.
    pub fn gcd(&self, other: &Nat) -> Nat {
        let min_len = self.len().min(other.len()).max(1);
        let cutoff = thresholds::HGCD.get();
        if min_len < cutoff {
            let mut sa = self.limbs().to_vec();
            let mut sb = other.limbs().to_vec();
            gcd_binary_in_place(&mut sa, &mut sb);
            return Nat::from_limbs(&sa);
        }
        gcd_with_cutoff(self, other, cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn rand_nat(state: &mut u64, len: usize) -> Nat {
        let limbs: Vec<Limb> = (0..len).map(|_| crate::limb::lo(xorshift(state))).collect();
        Nat::from_limbs(&limbs)
    }

    #[test]
    fn lehmer_window_quotients_are_canonical_prefix() {
        // The certified double-sided window quotients must form a prefix
        // of the true Euclid quotient sequence -- this is what makes the
        // Lehmer base case's accumulated matrix a canonical-prefix matrix
        // that transfers to the full-width pair.
        let mut state = 0xabad_1dea_0000_4242u64;
        for t in 0..200 {
            let x = rand_nat(&mut state, 10);
            let y = rand_nat(&mut state, 9 + (t % 2));
            let (x, y) = if ops::cmp(x.limbs(), y.limbs()) == Ordering::Less {
                (y, x)
            } else {
                (x, y)
            };
            if y.is_zero() || x.bit_len() < 80 {
                continue;
            }
            let k = x.bit_len() - 64;
            let qs = lehmer_quotients(window(&x, k), window(&y, k));
            let (mut a, mut b) = (x, y);
            for (i, &q) in qs.iter().enumerate() {
                let (tq, r) = a.div_rem(&b);
                assert_eq!(
                    Nat::from_limbs(&[crate::limb::lo(q), crate::limb::hi(q)]),
                    tq,
                    "window quotient {i} diverges from the true sequence at trial {t}"
                );
                a = mem::replace(&mut b, r);
            }
        }
    }

    #[test]
    #[ignore = "manual timing probe"]
    fn timing_probe() {
        let mut state = 0x7777_1234_5678_9abcu64;
        for n in [96usize, 192, 384] {
            let g = rand_nat(&mut state, 16);
            let a = g.mul(&rand_nat(&mut state, n - 16));
            let b = g.mul(&rand_nat(&mut state, n - 16));
            let t = std::time::Instant::now();
            let got = gcd_with_cutoff(&a, &b, 2);
            let dt = t.elapsed();
            let t2 = std::time::Instant::now();
            let want = a.gcd_reference(&b);
            let dt2 = t2.elapsed();
            assert_eq!(got, want);
            eprintln!("gcd_with_cutoff n={n}: {dt:?} (euclid reference {dt2:?})");
        }
        let a = rand_nat(&mut state, 192);
        let b = rand_nat(&mut state, 190);
        let t = std::time::Instant::now();
        let (_, _, m) = hgcd(&a, &b);
        eprintln!(
            "hgcd n=192: {:?} (matrix entries {} limbs)",
            t.elapsed(),
            m.m00.len().max(m.m01.len())
        );
    }

    #[test]
    fn binary_gcd_matches_reference() {
        let mut state = 0x5eed_5eed_5eed_5eedu64;
        for (la, lb) in [(1, 1), (2, 1), (4, 4), (7, 3), (12, 12), (20, 9)] {
            let a = rand_nat(&mut state, la);
            let b = rand_nat(&mut state, lb);
            let mut sa = a.limbs().to_vec();
            let mut sb = b.limbs().to_vec();
            gcd_binary_in_place(&mut sa, &mut sb);
            assert_eq!(Nat::from_limbs(&sa), a.gcd_reference(&b), "la={la} lb={lb}");
        }
    }

    #[test]
    fn binary_gcd_common_power_of_two() {
        // gcd(2^75·x, 2^40·y) keeps the common 2^40.
        let x = rand_nat(&mut 0xabcdu64.wrapping_mul(0x9e37_79b9_7f4a_7c15), 3);
        let a = x.shl(75);
        let b = x.shl(40);
        let mut sa = a.limbs().to_vec();
        let mut sb = b.limbs().to_vec();
        gcd_binary_in_place(&mut sa, &mut sb);
        assert_eq!(Nat::from_limbs(&sa), a.gcd_reference(&b));
    }

    #[test]
    fn gcd_zero_and_identity_cases() {
        let a = rand_nat(&mut 0x77u64.wrapping_mul(0x2545_f491_4f6c_dd1d), 6);
        assert_eq!(a.gcd(&Nat::default()), a);
        assert_eq!(Nat::default().gcd(&a), a);
        assert_eq!(a.gcd(&a), a);
        assert!(Nat::default().gcd(&Nat::default()).is_zero());
    }

    #[test]
    fn hgcd_driver_matches_reference_small_cutoff() {
        // Cutoff 2 forces the half-GCD machinery on small operands where
        // the Euclid reference is still fast.
        let mut state = 0xdead_1234_beef_5678u64;
        for (la, lb) in [(8, 8), (12, 5), (16, 16), (24, 23), (32, 32), (40, 11)] {
            let a = rand_nat(&mut state, la);
            let b = rand_nat(&mut state, lb);
            let got = gcd_with_cutoff(&a, &b, 2);
            let want = a.gcd_reference(&b);
            assert_eq!(got, want, "la={la} lb={lb}");
        }
    }

    #[test]
    fn hgcd_driver_with_planted_common_factor() {
        let mut state = 0x0123_4567_89ab_cdefu64;
        let g = rand_nat(&mut state, 6);
        let a = g.mul(&rand_nat(&mut state, 10));
        let b = g.mul(&rand_nat(&mut state, 9));
        let got = gcd_with_cutoff(&a, &b, 2);
        let want = a.gcd_reference(&b);
        assert_eq!(got, want);
        // The planted factor divides the gcd.
        assert!(got.rem(&g).is_zero());
    }

    #[test]
    fn hgcd_reduction_is_consistent() {
        // (a,b) = M·(a',b') must hold exactly for the returned matrix.
        let mut state = 0xfeed_beef_0bad_f00du64;
        let a = rand_nat(&mut state, 30);
        let b = rand_nat(&mut state, 28);
        let (ar, br, m) = hgcd(&a, &b);
        let ra = m.m00.mul(&ar).add(&m.m01.mul(&br));
        let rb = m.m10.mul(&ar).add(&m.m11.mul(&br));
        assert_eq!(ra, a);
        assert_eq!(rb, b);
        assert!(br.bit_len() <= a.bit_len() / 2 + 1);
    }

    #[test]
    fn gcd_into_reuses_buffers() {
        let mut state = 0x1111_2222_3333_4444u64;
        let a = rand_nat(&mut state, 8);
        let b = rand_nat(&mut state, 8);
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        let mut out = Nat::default();
        gcd_into(&a, &b, &mut sa, &mut sb, &mut out);
        assert_eq!(out, a.gcd_reference(&b));
        // Second call with warm buffers.
        gcd_into(&b, &a, &mut sa, &mut sb, &mut out);
        assert_eq!(out, a.gcd_reference(&b));
    }
}
