//! Multiplication: the dispatch entry of the arithmetic ladder.
//!
//! [`mul_dispatch`] routes by the *shorter* operand's width: schoolbook →
//! Karatsuba → Toom-Cook-3 → 3-prime NTT, with unbalanced products chopped
//! into balanced chunks first. All cutoffs live in [`crate::thresholds`]
//! (env-overridable); correctness never depends on them. Every recursion —
//! Karatsuba's halves, Toom's pointwise products, the unbalanced chop —
//! re-enters the dispatcher, so each sub-product independently picks the
//! right rung for its own width.

use crate::limb::{mac, Limb};
use crate::nat::Nat;
use crate::ntt;
use crate::ops;
use crate::thresholds;
use crate::toom;

/// Schoolbook product `a * b` into `out`. `out` must be zeroed and have
/// length at least `a.len() + b.len()`.
pub fn mul_schoolbook(out: &mut [Limb], a: &[Limb], b: &[Limb]) {
    debug_assert!(out.len() >= a.len() + b.len());
    debug_assert!(out[..a.len() + b.len()].iter().all(|&w| w == 0));
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = mac(out[i + j], ai, bj, carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + b.len()] = carry;
    }
}

/// `a * b` by one multiplication limb: `out = a * m`, returns carry limb.
/// `out.len() == a.len()`; the returned carry is the limb above the top.
pub fn mul_limb(out: &mut [Limb], a: &[Limb], m: Limb) -> Limb {
    debug_assert_eq!(out.len(), a.len());
    let mut carry = 0;
    for (o, &ai) in out.iter_mut().zip(a.iter()) {
        let (lo, hi) = mac(0, ai, m, carry);
        *o = lo;
        carry = hi;
    }
    carry
}

/// Width-dispatched product into `out` (zeroed, `len >= a.len()+b.len()`).
/// The single entry point of the multiply ladder; see the module docs.
pub fn mul_dispatch(out: &mut [Limb], a: &[Limb], b: &[Limb]) {
    let (a, b) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    // a is the longer operand.
    if b.is_empty() {
        return;
    }
    if b.len() < thresholds::KARATSUBA.get() {
        mul_schoolbook(out, a, b);
        return;
    }
    if a.len() > 2 * b.len() {
        // Unbalanced: chop `a` into b.len()-sized chunks, each near-balanced.
        let chunk = b.len();
        let mut tmp = vec![0; chunk + b.len()];
        let mut off = 0;
        while off < a.len() {
            let hi = (off + chunk).min(a.len());
            let part = &a[off..hi];
            tmp.truncate(0);
            tmp.resize(part.len() + b.len(), 0);
            mul_dispatch(&mut tmp, part, b);
            let carry = ops::add_assign(&mut out[off..], &tmp);
            debug_assert_eq!(carry, 0);
            off = hi;
        }
        return;
    }
    if b.len() >= thresholds::NTT.get() && a.len() + b.len() <= ntt::MAX_NTT_TOTAL_LIMBS {
        ntt::mul_ntt_into(out, a, b);
        return;
    }
    if b.len() >= thresholds::TOOM3.get() {
        toom::mul_toom3_into(out, a, b);
        return;
    }
    mul_karatsuba(out, a, b);
}

/// Balanced Karatsuba product into `out` (zeroed, len >= a.len()+b.len()).
/// Requires `a.len() >= b.len()` and `a.len() <= 2·b.len()` (the dispatcher
/// guarantees both); sub-products re-enter [`mul_dispatch`].
fn mul_karatsuba(out: &mut [Limb], a: &[Limb], b: &[Limb]) {
    debug_assert!(a.len() >= b.len() && a.len() <= 2 * b.len());
    // Split at m = ceil(a.len()/2).
    let m = a.len().div_ceil(2);
    let (a0, a1) = a.split_at(m.min(a.len()));
    let (b0, b1) = if b.len() > m {
        b.split_at(m)
    } else {
        (b, &[][..])
    };

    // z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1) - z0 - z2.
    let mut z0 = vec![0; a0.len() + b0.len()];
    mul_dispatch(&mut z0, a0, b0);
    z0.truncate(ops::normalized_len(&z0));
    let mut z2 = vec![0; a1.len() + b1.len().max(1)];
    if !a1.is_empty() && !b1.is_empty() {
        mul_dispatch(&mut z2, a1, b1);
    }
    z2.truncate(ops::normalized_len(&z2));

    // sa = a0 + a1, sb = b0 + b1 (each at most m+1 limbs).
    let mut sa = vec![0; m + 1];
    sa[..a0.len()].copy_from_slice(a0);
    ops::add_assign(&mut sa, a1);
    let mut sb = vec![0; m + 1];
    sb[..b0.len()].copy_from_slice(b0);
    ops::add_assign(&mut sb, b1);
    let la = ops::normalized_len(&sa);
    let lb = ops::normalized_len(&sb);
    let mut z1 = vec![0; la + lb];
    mul_dispatch(&mut z1, &sa[..la], &sb[..lb]);
    let borrow = ops::sub_assign(&mut z1, &z0);
    debug_assert_eq!(borrow, 0);
    let borrow = ops::sub_assign(&mut z1, &z2);
    debug_assert_eq!(borrow, 0);
    // The middle term a0*b1 + a1*b0 always fits in out[m..]; its *slice* may
    // be one limb longer than that, so drop the (provably zero) high limbs.
    z1.truncate(ops::normalized_len(&z1));

    // out = z0 + z1 << (32*m) + z2 << (64*m)
    out[..z0.len()].copy_from_slice(&z0);
    let carry = ops::add_assign(&mut out[m..], &z1);
    debug_assert_eq!(carry, 0);
    let z2n = ops::normalized_len(&z2);
    if z2n > 0 {
        let carry = ops::add_assign(&mut out[2 * m..], &z2[..z2n]);
        debug_assert_eq!(carry, 0);
    }
}

/// Full product of two limb slices, allocating the result.
pub fn mul_slices(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let la = ops::normalized_len(a);
    let lb = ops::normalized_len(b);
    if la == 0 || lb == 0 {
        return Vec::new();
    }
    let mut out = vec![0; la + lb];
    mul_dispatch(&mut out, &a[..la], &b[..lb]);
    out.truncate(ops::normalized_len(&out));
    out
}

impl Nat {
    /// `self * other`.
    pub fn mul(&self, other: &Nat) -> Nat {
        let mut out = Nat::default();
        self.mul_into(other, &mut out);
        out
    }

    /// `self * other` into a caller-owned `Nat`, reusing its allocation.
    pub fn mul_into(&self, other: &Nat, out: &mut Nat) {
        let la = self.len();
        let lb = other.len();
        let buf = out.limbs_mut();
        buf.clear();
        if la == 0 || lb == 0 {
            return;
        }
        buf.resize(la + lb, 0);
        mul_dispatch(buf, self.limbs(), other.limbs());
        let n = ops::normalized_len(buf);
        buf.truncate(n);
    }

    /// `self * m` for a single limb `m`.
    pub fn mul_u32(&self, m: Limb) -> Nat {
        if m == 0 || self.is_zero() {
            return Nat::zero();
        }
        let mut out = vec![0; self.len() + 1];
        let carry = mul_limb(&mut out[..self.len()], self.limbs(), m);
        out[self.len()] = carry;
        Nat::from_limbs(&out)
    }

    /// `self * self` (delegates to the dedicated squaring path).
    pub fn square(&self) -> Nat {
        crate::square::square_nat(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schoolbook_matches_u128() {
        let a = 0xffff_ffff_ffffu128;
        let b = 0x1234_5678_9abcu128;
        let prod = Nat::from_u128(a).mul(&Nat::from_u128(b));
        assert_eq!(prod.to_u128(), Some(a * b));
    }

    #[test]
    fn mul_by_zero_and_one() {
        let a = Nat::from_u128(0xdead_beef_cafe);
        assert!(a.mul(&Nat::zero()).is_zero());
        assert_eq!(a.mul(&Nat::one()), a);
        assert_eq!(a.mul_u32(0), Nat::zero());
        assert_eq!(a.mul_u32(1), a);
    }

    #[test]
    fn mul_u32_matches_mul() {
        let a = Nat::from_u128(u128::MAX / 7);
        assert_eq!(a.mul_u32(12345), a.mul(&Nat::from(12345u32)));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands long enough to take the Karatsuba path.
        let n = thresholds::KARATSUBA.default_value() * 3 + 5;
        let a: Vec<Limb> = (0..n)
            .map(|i| (i as u32).wrapping_mul(0x9e37_79b9) | 1)
            .collect();
        let b: Vec<Limb> = (0..n - 7)
            .map(|i| (i as u32).wrapping_mul(0x85eb_ca6b) ^ 0xdead)
            .collect();
        let mut expect = vec![0; a.len() + b.len()];
        mul_schoolbook(&mut expect, &a, &b);
        expect.truncate(ops::normalized_len(&expect));
        assert_eq!(mul_slices(&a, &b), expect);
    }

    #[test]
    fn karatsuba_unbalanced() {
        let k = thresholds::KARATSUBA.default_value();
        let a: Vec<Limb> = (0..k * 8).map(|i| i as u32 | 1).collect();
        let b: Vec<Limb> = (0..k).map(|i| !(i as u32)).collect();
        let mut expect = vec![0; a.len() + b.len()];
        mul_schoolbook(&mut expect, &a, &b);
        expect.truncate(ops::normalized_len(&expect));
        assert_eq!(mul_slices(&a, &b), expect);
    }

    #[test]
    fn dispatch_covers_toom_and_ntt_widths() {
        // One deterministic product wide enough for each upper rung, checked
        // against the direct algorithm entries (which the proptests in turn
        // check against schoolbook).
        let mut state = 0x00dd_ba11_5eed_f00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [
            thresholds::TOOM3.default_value() + 5,
            thresholds::NTT.default_value() + 9,
        ] {
            let a: Vec<Limb> = (0..n).map(|_| crate::limb::lo(next())).collect();
            let b: Vec<Limb> = (0..n - 3).map(|_| crate::limb::lo(next())).collect();
            assert_eq!(mul_slices(&a, &b), toom::mul_toom3(&a, &b), "n={n}");
        }
    }

    #[test]
    fn mul_into_reuses_and_matches() {
        let a = Nat::from_u128(u128::MAX - 12345);
        let b = Nat::from_u128(0xfeed_f00d_dead_beef);
        let mut out = Nat::default();
        a.mul_into(&b, &mut out);
        assert_eq!(out, a.mul(&b));
        // Overwrite with a smaller product; buffer shrinks logically.
        a.mul_into(&Nat::one(), &mut out);
        assert_eq!(out, a);
        a.mul_into(&Nat::zero(), &mut out);
        assert!(out.is_zero());
    }

    #[test]
    fn square_is_mul_self() {
        let a = Nat::from_u128(0x0123_4567_89ab_cdef);
        assert_eq!(a.square(), a.mul(&a));
    }
}
