//! Multiplication: schoolbook for short operands, Karatsuba above a cutoff.
//!
//! Karatsuba is needed by the batch-GCD baseline (`bulkgcd-bulk`), whose
//! product tree multiplies thousands of RSA moduli into million-bit numbers;
//! schoolbook would make that quadratic wall-clock.

use crate::limb::{mac, Limb};
use crate::nat::Nat;
use crate::ops;

/// Operand length (in limbs) above which Karatsuba is used.
/// Tuned coarsely; correctness does not depend on the value.
pub const KARATSUBA_CUTOFF: usize = 32;

/// Schoolbook product `a * b` into `out`. `out` must be zeroed and have
/// length at least `a.len() + b.len()`.
pub fn mul_schoolbook(out: &mut [Limb], a: &[Limb], b: &[Limb]) {
    debug_assert!(out.len() >= a.len() + b.len());
    debug_assert!(out[..a.len() + b.len()].iter().all(|&w| w == 0));
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = mac(out[i + j], ai, bj, carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + b.len()] = carry;
    }
}

/// `a * b` by one multiplication limb: `out = a * m`, returns carry limb.
/// `out.len() == a.len()`; the returned carry is the limb above the top.
pub fn mul_limb(out: &mut [Limb], a: &[Limb], m: Limb) -> Limb {
    debug_assert_eq!(out.len(), a.len());
    let mut carry = 0;
    for (o, &ai) in out.iter_mut().zip(a.iter()) {
        let (lo, hi) = mac(0, ai, m, carry);
        *o = lo;
        carry = hi;
    }
    carry
}

/// Karatsuba product into `out` (zeroed, len >= a.len()+b.len()), with
/// `scratch` workspace. Falls back to schoolbook below the cutoff.
fn mul_karatsuba(out: &mut [Limb], a: &[Limb], b: &[Limb]) {
    let (a, b) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    // a is the longer operand.
    if b.is_empty() {
        return;
    }
    if b.len() < KARATSUBA_CUTOFF {
        mul_schoolbook(out, a, b);
        return;
    }
    if a.len() > 2 * b.len() {
        // Unbalanced: chop `a` into b.len()-sized chunks.
        let chunk = b.len();
        let mut tmp = vec![0; chunk + b.len()];
        let mut off = 0;
        while off < a.len() {
            let hi = (off + chunk).min(a.len());
            let part = &a[off..hi];
            tmp.truncate(0);
            tmp.resize(part.len() + b.len(), 0);
            mul_karatsuba(&mut tmp, part, b);
            let carry = ops::add_assign(&mut out[off..], &tmp);
            debug_assert_eq!(carry, 0);
            off = hi;
        }
        return;
    }

    // Balanced Karatsuba: split at m = ceil(a.len()/2).
    let m = a.len().div_ceil(2);
    let (a0, a1) = a.split_at(m.min(a.len()));
    let (b0, b1) = if b.len() > m {
        b.split_at(m)
    } else {
        (b, &[][..])
    };

    // z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1) - z0 - z2.
    let mut z0 = vec![0; a0.len() + b0.len()];
    mul_karatsuba(&mut z0, a0, b0);
    z0.truncate(ops::normalized_len(&z0));
    let mut z2 = vec![0; a1.len() + b1.len().max(1)];
    if !a1.is_empty() && !b1.is_empty() {
        mul_karatsuba(&mut z2, a1, b1);
    }
    z2.truncate(ops::normalized_len(&z2));

    // sa = a0 + a1, sb = b0 + b1 (each at most m+1 limbs).
    let mut sa = vec![0; m + 1];
    sa[..a0.len()].copy_from_slice(a0);
    ops::add_assign(&mut sa, a1);
    let mut sb = vec![0; m + 1];
    sb[..b0.len()].copy_from_slice(b0);
    ops::add_assign(&mut sb, b1);
    let la = ops::normalized_len(&sa);
    let lb = ops::normalized_len(&sb);
    let mut z1 = vec![0; la + lb];
    mul_karatsuba(&mut z1, &sa[..la], &sb[..lb]);
    let borrow = ops::sub_assign(&mut z1, &z0);
    debug_assert_eq!(borrow, 0);
    let borrow = ops::sub_assign(&mut z1, &z2);
    debug_assert_eq!(borrow, 0);
    // The middle term a0*b1 + a1*b0 always fits in out[m..]; its *slice* may
    // be one limb longer than that, so drop the (provably zero) high limbs.
    z1.truncate(ops::normalized_len(&z1));

    // out = z0 + z1 << (32*m) + z2 << (64*m)
    out[..z0.len()].copy_from_slice(&z0);
    let carry = ops::add_assign(&mut out[m..], &z1);
    debug_assert_eq!(carry, 0);
    let z2n = ops::normalized_len(&z2);
    if z2n > 0 {
        let carry = ops::add_assign(&mut out[2 * m..], &z2[..z2n]);
        debug_assert_eq!(carry, 0);
    }
}

/// Full product of two limb slices, allocating the result.
pub fn mul_slices(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let la = ops::normalized_len(a);
    let lb = ops::normalized_len(b);
    if la == 0 || lb == 0 {
        return Vec::new();
    }
    let mut out = vec![0; la + lb];
    mul_karatsuba(&mut out, &a[..la], &b[..lb]);
    out.truncate(ops::normalized_len(&out));
    out
}

impl Nat {
    /// `self * other`.
    pub fn mul(&self, other: &Nat) -> Nat {
        Nat::from_limbs(&mul_slices(self.limbs(), other.limbs()))
    }

    /// `self * m` for a single limb `m`.
    pub fn mul_u32(&self, m: Limb) -> Nat {
        if m == 0 || self.is_zero() {
            return Nat::zero();
        }
        let mut out = vec![0; self.len() + 1];
        let carry = mul_limb(&mut out[..self.len()], self.limbs(), m);
        out[self.len()] = carry;
        Nat::from_limbs(&out)
    }

    /// `self * self` (delegates to the dedicated squaring path).
    pub fn square(&self) -> Nat {
        crate::square::square_nat(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schoolbook_matches_u128() {
        let a = 0xffff_ffff_ffffu128;
        let b = 0x1234_5678_9abcu128;
        let prod = Nat::from_u128(a).mul(&Nat::from_u128(b));
        assert_eq!(prod.to_u128(), Some(a * b));
    }

    #[test]
    fn mul_by_zero_and_one() {
        let a = Nat::from_u128(0xdead_beef_cafe);
        assert!(a.mul(&Nat::zero()).is_zero());
        assert_eq!(a.mul(&Nat::one()), a);
        assert_eq!(a.mul_u32(0), Nat::zero());
        assert_eq!(a.mul_u32(1), a);
    }

    #[test]
    fn mul_u32_matches_mul() {
        let a = Nat::from_u128(u128::MAX / 7);
        assert_eq!(a.mul_u32(12345), a.mul(&Nat::from(12345u32)));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands long enough to take the Karatsuba path.
        let n = KARATSUBA_CUTOFF * 3 + 5;
        let a: Vec<Limb> = (0..n)
            .map(|i| (i as u32).wrapping_mul(0x9e37_79b9) | 1)
            .collect();
        let b: Vec<Limb> = (0..n - 7)
            .map(|i| (i as u32).wrapping_mul(0x85eb_ca6b) ^ 0xdead)
            .collect();
        let mut expect = vec![0; a.len() + b.len()];
        mul_schoolbook(&mut expect, &a, &b);
        expect.truncate(ops::normalized_len(&expect));
        assert_eq!(mul_slices(&a, &b), expect);
    }

    #[test]
    fn karatsuba_unbalanced() {
        let a: Vec<Limb> = (0..KARATSUBA_CUTOFF * 8).map(|i| i as u32 | 1).collect();
        let b: Vec<Limb> = (0..KARATSUBA_CUTOFF).map(|i| !(i as u32)).collect();
        let mut expect = vec![0; a.len() + b.len()];
        mul_schoolbook(&mut expect, &a, &b);
        expect.truncate(ops::normalized_len(&expect));
        assert_eq!(mul_slices(&a, &b), expect);
    }

    #[test]
    fn square_is_mul_self() {
        let a = Nat::from_u128(0x0123_4567_89ab_cdef);
        assert_eq!(a.square(), a.mul(&a));
    }
}
