//! Big-endian byte-string conversions (the wire format of real RSA moduli:
//! DER/PEM keys carry big-endian magnitudes, so a corpus scanner needs
//! these to ingest harvested keys).

use crate::nat::Nat;

impl Nat {
    /// Big-endian bytes, minimal length (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let limbs = self.limbs();
        let mut out = Vec::with_capacity(limbs.len() * 4);
        // Top limb without leading zero bytes, the rest in full.
        let top = limbs[limbs.len() - 1];
        let top_bytes = 4 - (top.leading_zeros() / 8) as usize;
        for i in (0..top_bytes).rev() {
            out.push((top >> (8 * i)) as u8);
        }
        for &w in limbs[..limbs.len() - 1].iter().rev() {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Parse big-endian bytes (leading zero bytes allowed; empty = zero).
    pub fn from_bytes_be(bytes: &[u8]) -> Nat {
        let mut limbs = vec![0u32; bytes.len().div_ceil(4)];
        for (i, &b) in bytes.iter().rev().enumerate() {
            limbs[i / 4] |= (b as u32) << (8 * (i % 4));
        }
        Nat::from_limbs(&limbs)
    }

    /// Little-endian bytes, minimal length (empty for zero).
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut v = self.to_bytes_be();
        v.reverse();
        v
    }

    /// Parse little-endian bytes.
    pub fn from_bytes_le(bytes: &[u8]) -> Nat {
        let mut v = bytes.to_vec();
        v.reverse();
        Nat::from_bytes_be(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        assert_eq!(Nat::zero().to_bytes_be(), Vec::<u8>::new());
        assert_eq!(Nat::from(1u32).to_bytes_be(), vec![1]);
        assert_eq!(Nat::from(0x0102u32).to_bytes_be(), vec![1, 2]);
        assert_eq!(
            Nat::from_u128(0x0102_0304_0506).to_bytes_be(),
            vec![1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn roundtrip_be_and_le() {
        for v in [0u128, 1, 255, 256, 0xdead_beef, u128::MAX, 1 << 100] {
            let n = Nat::from_u128(v);
            assert_eq!(Nat::from_bytes_be(&n.to_bytes_be()), n, "be {v:#x}");
            assert_eq!(Nat::from_bytes_le(&n.to_bytes_le()), n, "le {v:#x}");
        }
    }

    #[test]
    fn leading_zeros_ignored_on_parse() {
        assert_eq!(Nat::from_bytes_be(&[0, 0, 1, 2]), Nat::from(0x0102u32));
        assert_eq!(Nat::from_bytes_be(&[0, 0]), Nat::zero());
        assert_eq!(Nat::from_bytes_be(&[]), Nat::zero());
    }

    #[test]
    fn minimality() {
        // No leading zero byte in output.
        for v in [1u128, 0x80, 0x1_00, 0xff_ff_ff, 1 << 31, 1 << 32] {
            let b = Nat::from_u128(v).to_bytes_be();
            assert_ne!(b[0], 0, "v={v:#x} -> {b:?}");
        }
    }
}
