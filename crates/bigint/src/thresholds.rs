//! The arithmetic dispatch ladder: operand-width cutoffs that decide which
//! algorithm `mul_dispatch`, `div_rem_slices` and `Nat::gcd` route to.
//!
//! Every cutoff is a limb count. The ladder (see DESIGN.md, "Arithmetic
//! dispatch ladder") is, from narrow to wide operands:
//!
//! | routine | below cutoff          | at/above cutoff          |
//! |---------|-----------------------|--------------------------|
//! | mul     | schoolbook            | Karatsuba (`karatsuba`)  |
//! | mul     | Karatsuba             | Toom-Cook-3 (`toom3`)    |
//! | mul     | Toom-Cook-3           | 3-prime NTT (`ntt`)      |
//! | div     | Knuth Algorithm D     | Newton reciprocal (`newton_div`) |
//! | gcd     | binary GCD            | half-GCD (`hgcd`)        |
//!
//! Defaults were tuned on the bench host from `BENCH_bigint.json` sweeps
//! (`bigint_bench`; ladder-vs-legacy medians per width). Measured
//! crossovers on the 1-core reference box: balanced mul beats Karatsuba
//! via NTT from ~1024 limbs (×1.2 at 1024, ×2.8 at 8192) while Toom-3 is
//! only at parity in the 256–512 window, so its rung opens at 512; Newton
//! division crosses Knuth between divisor 1024 (×0.75) and 2048 (×1.31),
//! so it opens at 1536; half-GCD beats binary GCD already at 192 limbs
//! (×1.16, growing to ×3.5 at 1536). Each cutoff can be overridden
//! for a sweep via its environment variable (read once, on first use), or
//! programmatically via `set()` — the latter is what the perf gate uses to
//! pit the new ladder against the legacy Karatsuba/Knuth-only configuration
//! inside one process. Correctness never depends on the values.

use core::sync::atomic::{AtomicUsize, Ordering};

/// One tunable cutoff: a limb count with an env-var override, cached in an
/// atomic so the hot dispatch paths pay a single relaxed load.
pub struct Threshold {
    env: &'static str,
    default: usize,
    /// Cached value; 0 means "not initialized yet" (no cutoff is ever 0:
    /// `set` clamps to >= 1, and `usize::MAX` disables a rung entirely).
    cached: AtomicUsize,
}

impl Threshold {
    const fn new(env: &'static str, default: usize) -> Self {
        Threshold {
            env,
            default,
            cached: AtomicUsize::new(0),
        }
    }

    /// Current cutoff in limbs.
    #[inline]
    pub fn get(&self) -> usize {
        let v = self.cached.load(Ordering::Relaxed);
        if v != 0 {
            return v;
        }
        self.init()
    }

    #[cold]
    fn init(&self) -> usize {
        let v = std::env::var(self.env)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(self.default)
            .max(1);
        self.cached.store(v, Ordering::Relaxed);
        v
    }

    /// Override the cutoff for this process (bench sweeps and the
    /// `--gate-subquadratic` legacy-vs-ladder comparison). Values are
    /// clamped to >= 1; `usize::MAX` disables the rung.
    pub fn set(&self, limbs: usize) {
        self.cached.store(limbs.max(1), Ordering::Relaxed);
    }

    /// The environment variable consulted on first use.
    pub fn env_var(&self) -> &'static str {
        self.env
    }

    /// The built-in default (what `get` returns absent overrides).
    pub fn default_value(&self) -> usize {
        self.default
    }
}

/// Operand length (limbs) at which multiplication switches schoolbook →
/// Karatsuba. Applied to the *shorter* operand of a balanced product.
pub static KARATSUBA: Threshold = Threshold::new("BULKGCD_KARATSUBA_CUTOFF", 32);

/// Shorter-operand length (limbs) at which a balanced product switches
/// Karatsuba → Toom-Cook-3. The window is narrow on this host (the NTT
/// takes over at 1024), and below 512 Toom's evaluation overhead loses
/// 7–14% to Karatsuba's power-of-two-friendly splits.
pub static TOOM3: Threshold = Threshold::new("BULKGCD_TOOM3_CUTOFF", 512);

/// Shorter-operand length (limbs) at which a balanced product switches
/// Toom-Cook-3 → the 3-prime CRT NTT. The NTT's cost is a step function
/// of `next_power_of_two(la + lb)`, so the crossover sits just above the
/// width where a 2048-point transform's flat cost undercuts Karatsuba.
pub static NTT: Threshold = Threshold::new("BULKGCD_NTT_CUTOFF", 1024);

/// Divisor length (limbs) at which division switches Knuth Algorithm D →
/// Newton reciprocal (the quotient must also be at least half this many
/// limbs; see `div::newton_applies`).
pub static NEWTON_DIV: Threshold = Threshold::new("BULKGCD_NEWTON_DIV_CUTOFF", 1536);

/// Operand length (limbs) at which `Nat::gcd` switches binary GCD →
/// the half-GCD driver.
pub static HGCD: Threshold = Threshold::new("BULKGCD_HGCD_CUTOFF", 192);

/// Snapshot of the whole ladder, for bench reports.
pub fn snapshot() -> [(&'static str, usize); 5] {
    [
        ("karatsuba", KARATSUBA.get()),
        ("toom3", TOOM3.get()),
        ("ntt", NTT.get()),
        ("newton_div", NEWTON_DIV.get()),
        ("hgcd", HGCD.get()),
    ]
}

/// Disable every subquadratic rung (Karatsuba and Knuth remain), restoring
/// the pre-ladder behaviour. Used by the perf gate's legacy arm.
pub fn set_legacy_ladder() {
    TOOM3.set(usize::MAX);
    NTT.set(usize::MAX);
    NEWTON_DIV.set(usize::MAX);
    HGCD.set(usize::MAX);
}

/// Restore every rung to its default (or env-overridden) value.
pub fn reset_ladder() {
    for t in [&KARATSUBA, &TOOM3, &NTT, &NEWTON_DIV, &HGCD] {
        t.cached.store(0, Ordering::Relaxed);
        t.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered() {
        // The mul ladder must be monotone: schoolbook < karatsuba < toom < ntt.
        assert!(KARATSUBA.default_value() < TOOM3.default_value());
        assert!(TOOM3.default_value() < NTT.default_value());
    }

    #[test]
    fn set_and_get_roundtrip() {
        // A private Threshold so we don't perturb the global ladder used by
        // concurrently running tests.
        static T: Threshold = Threshold::new("BULKGCD_TEST_CUTOFF_UNSET", 17);
        assert_eq!(T.get(), 17);
        T.set(99);
        assert_eq!(T.get(), 99);
        T.set(0); // clamped
        assert_eq!(T.get(), 1);
        assert_eq!(T.env_var(), "BULKGCD_TEST_CUTOFF_UNSET");
    }
}
