//! Modular arithmetic: Montgomery multiplication (CIOS), modular
//! exponentiation, and modular inverse.
//!
//! Montgomery form is used by Miller–Rabin (`crate::prime`), which dominates
//! RSA-modulus generation time; a division-based `modpow_naive` is kept as an
//! independently-implemented cross-check oracle.

use crate::limb::{adc, mac, Limb, LIMB_BITS};
use crate::nat::Nat;
use crate::ops;

/// Reusable context for arithmetic modulo a fixed odd modulus.
///
/// ```
/// use bulkgcd_bigint::{Montgomery, Nat};
///
/// let m = Nat::from_u64(1_000_003); // odd modulus
/// let mont = Montgomery::new(&m);
/// let r = mont.pow(&Nat::from_u64(2), &Nat::from_u64(1_000_002));
/// assert!(r.is_one()); // Fermat: 2^(p-1) = 1 (mod p)
/// ```
#[derive(Clone, Debug)]
pub struct Montgomery {
    /// The modulus `n` (odd, > 1).
    n: Vec<Limb>,
    /// `-n^{-1} mod 2^32`.
    n0inv: Limb,
    /// `R^2 mod n` where `R = 2^(32 * n.len())`, used to enter Montgomery form.
    r2: Vec<Limb>,
    /// `R mod n`: the Montgomery representation of 1.
    r1: Vec<Limb>,
}

/// Inverse of an odd limb modulo `2^32` via Newton iteration.
fn inv_limb(n: Limb) -> Limb {
    debug_assert!(n & 1 == 1);
    let mut x = n; // correct mod 2^3
    for _ in 0..4 {
        x = x.wrapping_mul(2u32.wrapping_sub(n.wrapping_mul(x)));
    }
    debug_assert_eq!(n.wrapping_mul(x), 1);
    x
}

impl Montgomery {
    /// Build a context for the odd modulus `n > 1`.
    ///
    /// # Panics
    /// Panics if `n` is even or `<= 1`.
    pub fn new(n: &Nat) -> Self {
        assert!(n.is_odd(), "Montgomery modulus must be odd");
        assert!(!n.is_one() && !n.is_zero(), "modulus must be > 1");
        let limbs = n.limbs().to_vec();
        let l = limbs.len();
        let n0inv = inv_limb(limbs[0]).wrapping_neg();
        // R mod n and R^2 mod n via plain division.
        let r = Nat::one().shl(l as u64 * LIMB_BITS as u64).rem(n);
        let r2 = r.mul(&r).rem(n);
        let mut r1v = r.into_limbs();
        r1v.resize(l, 0);
        let mut r2v = r2.into_limbs();
        r2v.resize(l, 0);
        Montgomery {
            n: limbs,
            n0inv,
            r2: r2v,
            r1: r1v,
        }
    }

    /// Number of limbs of the modulus.
    pub fn limbs(&self) -> usize {
        self.n.len()
    }

    /// The modulus as a `Nat`.
    pub fn modulus(&self) -> Nat {
        Nat::from_limbs(&self.n)
    }

    /// CIOS Montgomery product: `out = a * b * R^{-1} mod n`.
    /// All slices have exactly `n.len()` limbs.
    fn mont_mul(&self, a: &[Limb], b: &[Limb], out: &mut [Limb]) {
        let l = self.n.len();
        debug_assert!(a.len() == l && b.len() == l && out.len() == l);
        // t has l+2 limbs: the CIOS accumulator.
        let mut t: Vec<Limb> = vec![0; l + 2];
        for &bi in b.iter() {
            // t += a * b_i
            let mut carry = 0;
            for (ti, &ai) in t.iter_mut().zip(a.iter()) {
                let (lo, hi) = mac(*ti, ai, bi, carry);
                *ti = lo;
                carry = hi;
            }
            let (s, c) = adc(t[l], carry, 0);
            t[l] = s;
            t[l + 1] = t[l + 1].wrapping_add(c);

            // m = t[0] * n0inv mod D; t += m * n; t >>= 32
            let m = t[0].wrapping_mul(self.n0inv);
            let (_, mut carry) = mac(t[0], m, self.n[0], 0);
            for i in 1..l {
                let (lo, hi) = mac(t[i], m, self.n[i], carry);
                t[i - 1] = lo;
                carry = hi;
            }
            let (s, c) = adc(t[l], carry, 0);
            t[l - 1] = s;
            t[l] = t[l + 1].wrapping_add(c);
            t[l + 1] = 0;
        }
        // Final conditional subtraction: t may be in [0, 2n).
        if t[l] != 0 || ops::cmp(&t[..l], &self.n) != core::cmp::Ordering::Less {
            ops::sub_assign(&mut t[..l + 1], &self.n);
        }
        out.copy_from_slice(&t[..l]);
    }

    /// Bring `a < n` into Montgomery form.
    fn to_mont(&self, a: &[Limb], out: &mut [Limb]) {
        self.mont_mul(a, &self.r2, out);
    }

    /// Leave Montgomery form.
    fn unmont(&self, a: &[Limb], out: &mut [Limb]) {
        let l = self.n.len();
        let mut one = vec![0; l];
        one[0] = 1;
        self.mont_mul(a, &one, out);
    }

    /// `base^exp mod n`. Uses left-to-right binary exponentiation for
    /// short exponents and a fixed 4-bit window for long ones (fewer
    /// multiplications per exponent bit; matters for the keygen-heavy
    /// Table IV experiments).
    pub fn pow(&self, base: &Nat, exp: &Nat) -> Nat {
        if exp.bit_len() >= 64 {
            self.pow_window(base, exp)
        } else {
            self.pow_binary(base, exp)
        }
    }

    /// Plain left-to-right binary exponentiation in Montgomery form.
    pub fn pow_binary(&self, base: &Nat, exp: &Nat) -> Nat {
        let l = self.n.len();
        if exp.is_zero() {
            return Nat::one().rem(&self.modulus());
        }
        let mut b = base.rem(&self.modulus()).into_limbs();
        b.resize(l, 0);
        let mut bm = vec![0; l];
        self.to_mont(&b, &mut bm);

        let mut acc = self.r1.clone(); // Montgomery form of 1
        let mut tmp = vec![0; l];
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            self.mont_mul(&acc.clone(), &acc, &mut tmp);
            core::mem::swap(&mut acc, &mut tmp);
            if exp.bit(i) {
                self.mont_mul(&acc.clone(), &bm, &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
            }
        }
        let mut out = vec![0; l];
        self.unmont(&acc, &mut out);
        Nat::from_limbs(&out)
    }

    /// Fixed 4-bit-window exponentiation in Montgomery form: 16-entry
    /// table, four squarings plus at most one multiplication per window.
    pub fn pow_window(&self, base: &Nat, exp: &Nat) -> Nat {
        const WINDOW: u64 = 4;
        let l = self.n.len();
        if exp.is_zero() {
            return Nat::one().rem(&self.modulus());
        }
        let mut b = base.rem(&self.modulus()).into_limbs();
        b.resize(l, 0);
        // table[i] = base^i in Montgomery form.
        let mut table: Vec<Vec<Limb>> = vec![vec![0; l]; 1 << WINDOW];
        table[0].copy_from_slice(&self.r1);
        self.to_mont(&b, &mut table[1]);
        for i in 2..1usize << WINDOW {
            let (lo, hi) = table.split_at_mut(i);
            self.mont_mul(&lo[i - 1], &lo[1], &mut hi[0]);
        }

        let bits = exp.bit_len();
        let windows = bits.div_ceil(WINDOW);
        let mut acc = self.r1.clone();
        let mut tmp = vec![0; l];
        for w in (0..windows).rev() {
            for _ in 0..WINDOW {
                self.mont_mul(&acc.clone(), &acc, &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
            }
            let mut digit = 0usize;
            for bit in (0..WINDOW).rev() {
                digit = (digit << 1) | usize::from(exp.bit(w * WINDOW + bit));
            }
            if digit != 0 {
                self.mont_mul(&acc.clone(), &table[digit], &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
            }
        }
        let mut out = vec![0; l];
        self.unmont(&acc, &mut out);
        Nat::from_limbs(&out)
    }

    /// Montgomery product of two ordinary (non-Montgomery) residues:
    /// `a * b mod n`. Convenience for callers that do isolated products.
    pub fn mul_mod(&self, a: &Nat, b: &Nat) -> Nat {
        a.mul(b).rem(&self.modulus())
    }
}

impl Nat {
    /// `self^exp mod m` by schoolbook square-and-multiply with division-based
    /// reduction. Works for any modulus `m > 0` (even ones too); used as a
    /// cross-check oracle for the Montgomery path and for even moduli.
    pub fn modpow_naive(&self, exp: &Nat, m: &Nat) -> Nat {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return Nat::zero();
        }
        let mut acc = Nat::one();
        let base = self.rem(m);
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = acc.mul(&acc).rem(m);
            if exp.bit(i) {
                acc = acc.mul(&base).rem(m);
            }
        }
        acc
    }

    /// `self^exp mod m`, choosing Montgomery for odd moduli and the naive
    /// path otherwise.
    pub fn modpow(&self, exp: &Nat, m: &Nat) -> Nat {
        if m.is_odd() && !m.is_one() {
            Montgomery::new(m).pow(self, exp)
        } else {
            self.modpow_naive(exp, m)
        }
    }

    /// Modular inverse: the `x` with `self * x ≡ 1 (mod m)`, if it exists.
    ///
    /// Uses the iterative extended Euclidean algorithm with the Bézout
    /// coefficient tracked modulo `m`, which avoids signed arithmetic: this
    /// is exactly the computation the paper cites for recovering the RSA
    /// decryption key `d = e^{-1} mod (p-1)(q-1)` once a factor is known.
    pub fn modinv(&self, m: &Nat) -> Option<Nat> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let mut old_r = self.rem(m);
        let mut r = m.clone();
        let mut old_s = Nat::one();
        let mut s = Nat::zero();
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = core::mem::replace(&mut r, rem);
            // new_s = old_s - q*s (mod m)
            let qs = q.mul(&s).rem(m);
            let new_s = if old_s.cmp(&qs) == core::cmp::Ordering::Less {
                old_s.add(m).sub(&qs)
            } else {
                old_s.sub(&qs)
            };
            old_s = core::mem::replace(&mut s, new_s);
        }
        if old_r.is_one() {
            Some(old_s.rem(m))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inv_limb_correct() {
        for n in [1u32, 3, 5, 0xffff_ffff, 0x1234_5679, 7] {
            assert_eq!(n.wrapping_mul(inv_limb(n)), 1, "n={n}");
        }
    }

    #[test]
    fn montgomery_pow_matches_naive_small() {
        let m = Nat::from(1_000_003u32); // odd prime
        for b in [2u32, 3, 12345, 999_999] {
            for e in [0u32, 1, 2, 65537, 1_000_002] {
                let b = Nat::from(b);
                let e = Nat::from(e);
                assert_eq!(b.modpow(&e, &m), b.modpow_naive(&e, &m));
            }
        }
    }

    #[test]
    fn montgomery_pow_large_modulus() {
        // 128-bit odd modulus.
        let m = Nat::from_u128(0xffff_ffff_ffff_ffff_ffff_ffff_ffff_ff61);
        let b = Nat::from_u128(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        let e = Nat::from_u128(0xfedc_ba98_7654_3210);
        assert_eq!(b.modpow(&e, &m), b.modpow_naive(&e, &m));
    }

    #[test]
    fn fermat_little_theorem() {
        // p prime => a^(p-1) = 1 mod p. 18446744073709551557 is the largest
        // prime below 2^64.
        let p = Nat::from_u128(18_446_744_073_709_551_557);
        let a = Nat::from(123_456_789u32);
        let e = p.sub(&Nat::one());
        assert!(a.modpow(&e, &p).is_one());
    }

    #[test]
    fn window_matches_binary() {
        let m = Nat::from_u128(0xffff_ffff_ffff_ffff_ffff_ffff_ffff_ff61);
        let mont = Montgomery::new(&m);
        let b = Nat::from_u128(0x0123_4567_89ab_cdef_0123);
        for e in [
            Nat::from(1u32),
            Nat::from(16u32),
            Nat::from_u128(u128::MAX),
            Nat::from_u128(0x8000_0000_0000_0000_0000_0000_0000_0000),
            Nat::from_u128(0xfedc_ba98_7654_3210_0f0f_0f0f),
        ] {
            assert_eq!(mont.pow_window(&b, &e), mont.pow_binary(&b, &e));
        }
        assert!(mont.pow_window(&b, &Nat::zero()).is_one());
    }

    #[test]
    fn even_modulus_falls_back() {
        let m = Nat::from(1_000_000u32);
        let b = Nat::from(12345u32);
        let e = Nat::from(678u32);
        assert_eq!(b.modpow(&e, &m), b.modpow_naive(&e, &m));
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let m = Nat::from(97u32);
        assert!(Nat::from(5u32).modpow(&Nat::zero(), &m).is_one());
    }

    #[test]
    fn modinv_basic() {
        let m = Nat::from(97u32);
        for a in 1u32..97 {
            let a = Nat::from(a);
            let inv = a.modinv(&m).expect("prime modulus: all invertible");
            assert!(a.mul(&inv).rem(&m).is_one());
        }
    }

    #[test]
    fn modinv_even_modulus() {
        // e = 65537 mod phi — the RSA use case with an even modulus.
        let phi = Nat::from_u128(0x1_0000_0000_0000_0000u128 - 0x1234_5678); // even
        let e = Nat::from(65537u32);
        let d = e.modinv(&phi).expect("gcd(e, phi) = 1");
        assert!(e.mul(&d).rem(&phi).is_one());
    }

    #[test]
    fn modinv_nonexistent() {
        let m = Nat::from(100u32);
        assert!(Nat::from(10u32).modinv(&m).is_none());
        assert!(Nat::zero().modinv(&m).is_none());
    }
}
