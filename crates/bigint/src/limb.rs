//! Limb-level primitives.
//!
//! The paper fixes the word size at `d = 32` bits ("we set d = 32 for our
//! Approximate Euclidean algorithm", §V) with 64-bit temporaries, so the whole
//! workspace uses `u32` limbs and `u64` intermediates. Numbers are stored
//! little-endian: limb 0 is the least significant word. The paper's `x1`
//! (most significant word of `X`) is `limbs[len - 1]` here.

/// A single machine word ("d-bit word" in the paper, d = 32).
pub type Limb = u32;

/// A double-width word used for carries, borrows and products.
pub type Wide = u64;

/// Number of bits in a limb (the paper's `d`).
pub const LIMB_BITS: u32 = 32;

/// The paper's `D = 2^d` as a double-width value.
pub const D: Wide = 1 << LIMB_BITS;

/// Low limb of a double-width value.
///
/// *The* audited truncation point: everywhere limb arithmetic needs the
/// low word of a `Wide`, it goes through here (or [`hi`]) so the analyze
/// pass can flag any bare `as Limb` cast as a potential bit-dropping bug.
// analyze: allow(truncating-cast, reason = "definition of limb extraction; every caller routes its intended truncation through lo/hi")
#[inline(always)]
pub const fn lo(w: Wide) -> Limb {
    w as Limb
}

/// High limb of a double-width value (exact: the shift leaves at most
/// `LIMB_BITS` significant bits).
// analyze: allow(truncating-cast, reason = "exact after the shift: at most LIMB_BITS significant bits remain")
#[inline(always)]
pub const fn hi(w: Wide) -> Limb {
    (w >> LIMB_BITS) as Limb
}

/// Add with carry: returns `(sum, carry_out)` for `a + b + carry_in`.
#[inline(always)]
pub fn adc(a: Limb, b: Limb, carry: Limb) -> (Limb, Limb) {
    let t = a as Wide + b as Wide + carry as Wide;
    (lo(t), hi(t))
}

/// Subtract with borrow: returns `(diff, borrow_out)` for `a - b - borrow_in`.
/// `borrow_out` is 0 or 1.
#[inline(always)]
pub fn sbb(a: Limb, b: Limb, borrow: Limb) -> (Limb, Limb) {
    let t = (a as Wide)
        .wrapping_sub(b as Wide)
        .wrapping_sub(borrow as Wide);
    // The borrow is the wrapped difference's sign bit: 0 or 1, exact.
    (lo(t), lo(t >> 63))
}

/// Multiply-accumulate: `a + b * c + carry`, returning `(low, high)`.
///
/// The result always fits in two limbs: the maximum value is
/// `(D-1) + (D-1)^2 + (D-1) = D^2 - 1`.
#[inline(always)]
pub fn mac(a: Limb, b: Limb, c: Limb, carry: Limb) -> (Limb, Limb) {
    let t = a as Wide + (b as Wide) * (c as Wide) + carry as Wide;
    (lo(t), hi(t))
}

/// Full widening multiplication `a * b`, returning `(low, high)`.
#[inline(always)]
pub fn mul_wide(a: Limb, b: Limb) -> (Limb, Limb) {
    let t = (a as Wide) * (b as Wide);
    (lo(t), hi(t))
}

/// Divide the two-limb value `hi:lo` by `div`, returning `(quotient, remainder)`.
///
/// Requires `hi < div` so that the quotient fits in one limb (the standard
/// schoolbook-division precondition); the remainder is below `div`, so both
/// extractions are exact.
#[inline(always)]
pub fn div2by1(hi: Limb, lo_limb: Limb, div: Limb) -> (Limb, Limb) {
    debug_assert!(div != 0, "division by zero limb");
    debug_assert!(hi < div, "quotient would overflow a limb");
    let n = ((hi as Wide) << LIMB_BITS) | lo_limb as Wide;
    (lo(n / div as Wide), lo(n % div as Wide))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_no_carry() {
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn adc_carry_in_and_out() {
        assert_eq!(adc(u32::MAX, 0, 1), (0, 1));
        assert_eq!(adc(u32::MAX, u32::MAX, 1), (u32::MAX, 1));
    }

    #[test]
    fn sbb_no_borrow() {
        assert_eq!(sbb(5, 3, 0), (2, 0));
    }

    #[test]
    fn sbb_borrow_out() {
        assert_eq!(sbb(0, 1, 0), (u32::MAX, 1));
        assert_eq!(sbb(0, 0, 1), (u32::MAX, 1));
        assert_eq!(sbb(0, u32::MAX, 1), (0, 1));
    }

    #[test]
    fn mac_max_operands_fit() {
        // (D-1) + (D-1)*(D-1) + (D-1) == D^2 - 1 exactly: no overflow.
        let (lo, hi) = mac(u32::MAX, u32::MAX, u32::MAX, u32::MAX);
        assert_eq!(lo, u32::MAX);
        assert_eq!(hi, u32::MAX);
    }

    #[test]
    fn mul_wide_basic() {
        assert_eq!(mul_wide(0x1_0000, 0x1_0000), (0, 1));
        assert_eq!(mul_wide(u32::MAX, u32::MAX), (1, u32::MAX - 1));
    }

    #[test]
    fn div2by1_basic() {
        assert_eq!(div2by1(0, 100, 7), (14, 2));
        // (2^32 + 5) / 3 == 1431655767 exactly
        assert_eq!(div2by1(1, 5, 3), (1_431_655_767, 0));
    }

    #[test]
    fn div2by1_large() {
        let hi = 0x1234_5678u32;
        let lo = 0x9abc_def0u32;
        let d = 0x2000_0001u32;
        let n = ((hi as u64) << 32) | lo as u64;
        let (q, r) = div2by1(hi, lo, d);
        assert_eq!(q as u64, n / d as u64);
        assert_eq!(r as u64, n % d as u64);
        assert_eq!(q as u64 * d as u64 + r as u64, n);
    }
}
