//! [`Nat`]: an arbitrary-precision natural number on 32-bit limbs.
//!
//! This is the owner type used everywhere outside the GCD inner loops (which
//! work on pre-allocated buffers instead, see `bulkgcd-core`). The invariant
//! is that `limbs` is normalized: no high zero limbs, and zero is the empty
//! vector.

use crate::limb::{hi, lo, Limb, Wide, LIMB_BITS};
use crate::ops;
use core::cmp::Ordering;
use core::fmt;

/// An arbitrary-precision natural number (unsigned), little-endian `u32` limbs.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    limbs: Vec<Limb>,
}

impl Nat {
    /// The value 0.
    pub const fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Nat { limbs: vec![1] }
    }

    /// Build from little-endian limbs; high zero limbs are stripped.
    pub fn from_limbs(limbs: &[Limb]) -> Self {
        let n = ops::normalized_len(limbs);
        Nat {
            limbs: limbs[..n].to_vec(),
        }
    }

    /// Build from a possibly unnormalized little-endian limb slice (alias of
    /// [`Nat::from_limbs`], named for the arena load paths that hand out raw
    /// fixed-stride slices with high zero padding).
    #[inline]
    pub fn from_limb_slice(limbs: &[Limb]) -> Self {
        Nat::from_limbs(limbs)
    }

    /// Build from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Nat::from_limbs(&[lo(v), hi(v)])
    }

    /// Build from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let low = v as Wide;
        let high = (v >> 64) as Wide;
        Nat::from_limbs(&[lo(low), hi(low), lo(high), hi(high)])
    }

    /// Lossy conversion to `u64` (low 64 bits).
    pub fn low_u64(&self) -> u64 {
        let lo = self.limbs.first().copied().unwrap_or(0) as u64;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u64;
        hi << LIMB_BITS | lo
    }

    /// Exact conversion to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        Some(
            self.limbs
                .iter()
                .enumerate()
                .fold(0u128, |acc, (i, &w)| acc | (w as u128) << (32 * i)),
        )
    }

    /// The normalized little-endian limbs (empty for zero).
    #[inline]
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Borrow the value as a little-endian limb slice (alias of
    /// [`Nat::limbs`]; the borrow-based counterpart of [`Nat::into_limbs`],
    /// used by the zero-allocation scan paths).
    #[inline]
    pub fn as_limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Take ownership of the limb vector.
    pub fn into_limbs(self) -> Vec<Limb> {
        self.limbs
    }

    /// Build from an owned limb vector without copying (normalizes).
    pub fn from_vec(limbs: Vec<Limb>) -> Self {
        let mut r = Nat { limbs };
        r.normalize();
        r
    }

    /// Overwrite `self` with the given limbs (normalizing), reusing the
    /// existing allocation when capacity allows. The workhorse of the
    /// scratch-reusing `_into` paths: a warm `Nat` never reallocates for
    /// a same-or-smaller value.
    pub fn assign_limbs(&mut self, limbs: &[Limb]) {
        self.limbs.clear();
        self.limbs.extend_from_slice(limbs);
        self.normalize();
    }

    /// Mutable access to the backing vector for `_into` kernels; callers
    /// must restore the normalization invariant (e.g. via
    /// [`Nat::assign_limbs`]-style truncation) before the value escapes.
    #[inline]
    pub(crate) fn limbs_mut(&mut self) -> &mut Vec<Limb> {
        &mut self.limbs
    }

    /// Number of significant limbs (the paper's `lX`); 0 for zero.
    #[inline]
    pub fn len(&self) -> usize {
        self.limbs.len()
    }

    /// True if the value is 0.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is 0.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True if the value is odd.
    #[inline]
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&w| w & 1 == 1)
    }

    /// True if the value is even (zero counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Number of significant bits (the position of the highest set bit + 1).
    #[inline]
    pub fn bit_len(&self) -> u64 {
        ops::bit_len(&self.limbs)
    }

    /// Test bit `i` (bit 0 = least significant).
    #[inline]
    pub fn bit(&self, i: u64) -> bool {
        ops::bit(&self.limbs, i)
    }

    /// Number of trailing zero bits, or `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        ops::trailing_zeros(&self.limbs)
    }

    /// Internal: restore the no-high-zero-limb invariant.
    pub(crate) fn normalize(&mut self) {
        let n = ops::normalized_len(&self.limbs);
        self.limbs.truncate(n);
    }

    /// `self + other`.
    pub fn add(&self, other: &Nat) -> Nat {
        let (big, small) = if self.len() >= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut limbs = big.limbs.clone();
        limbs.push(0);
        ops::add_assign(&mut limbs, &small.limbs);
        let mut r = Nat { limbs };
        r.normalize();
        r
    }

    /// `self - other`; `None` if `other > self`.
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if self.cmp(other) == Ordering::Less {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let borrow = ops::sub_assign(&mut limbs, &other.limbs);
        debug_assert_eq!(borrow, 0);
        let mut r = Nat { limbs };
        r.normalize();
        Some(r)
    }

    /// `self - other`; panics if `other > self`.
    // analyze: allow(no-panic, reason = "documented panic contract: sub is the infallible sibling of checked_sub and callers opt into the precondition")
    pub fn sub(&self, other: &Nat) -> Nat {
        self.checked_sub(other)
            .expect("Nat::sub underflow: subtrahend larger than minuend")
    }

    /// `self << r`.
    pub fn shl(&self, r: u64) -> Nat {
        if self.is_zero() {
            return Nat::zero();
        }
        let extra = (r / LIMB_BITS as u64) as usize + 1;
        let mut limbs = self.limbs.clone();
        limbs.resize(self.len() + extra, 0);
        let n = ops::shl_in_place(&mut limbs, r);
        limbs.truncate(n);
        Nat { limbs }
    }

    /// `self >> r`.
    pub fn shr(&self, r: u64) -> Nat {
        let mut limbs = self.limbs.clone();
        let n = ops::shr_in_place(&mut limbs, r);
        limbs.truncate(n);
        Nat { limbs }
    }

    /// The paper's `rshift`: strip all trailing zero bits.
    /// Returns the shifted value and the number of bits removed.
    pub fn rshift(&self) -> (Nat, u64) {
        match self.trailing_zeros() {
            None | Some(0) => (self.clone(), 0),
            Some(r) => (self.shr(r), r),
        }
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(Ord::cmp(self, other))
    }
}

impl Ord for Nat {
    /// Compare as natural numbers.
    fn cmp(&self, other: &Self) -> Ordering {
        ops::cmp(&self.limbs, &other.limbs)
    }
}

impl From<u32> for Nat {
    fn from(v: u32) -> Self {
        Nat::from_limbs(&[v])
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        Nat::from_u64(v)
    }
}

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        Nat::from_u128(v)
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat(0x{})", self.to_hex())
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_invariants() {
        let z = Nat::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert!(!z.is_odd());
        assert_eq!(z.bit_len(), 0);
        assert_eq!(z.len(), 0);
        assert_eq!(z, Nat::from_limbs(&[0, 0, 0]));
    }

    #[test]
    fn from_u128_roundtrip() {
        let v = 0x0123_4567_89ab_cdef_1122_3344_5566_7788u128;
        assert_eq!(Nat::from_u128(v).to_u128(), Some(v));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Nat::from_u128(u128::MAX - 3);
        let b = Nat::from_u128(12345);
        let c = a.add(&b);
        assert_eq!(c.sub(&b), a);
        assert_eq!(c.sub(&a), b);
    }

    #[test]
    fn checked_sub_underflow() {
        assert!(Nat::from(3u32).checked_sub(&Nat::from(4u32)).is_none());
        assert_eq!(
            Nat::from(3u32).checked_sub(&Nat::from(3u32)),
            Some(Nat::zero())
        );
    }

    #[test]
    fn shifts_match_u128() {
        let v = 0x0123_4567_89ab_cdefu128;
        let n = Nat::from_u128(v);
        for r in [0u64, 1, 5, 31, 32, 33, 64] {
            assert_eq!(n.shl(r).to_u128(), Some(v << r), "shl {r}");
            assert_eq!(n.shr(r).to_u128(), Some(v >> r), "shr {r}");
        }
    }

    #[test]
    fn rshift_strips_trailing_zeros() {
        let (v, r) = Nat::from(0b1011_0000u32).rshift();
        assert_eq!(v, Nat::from(0b1011u32));
        assert_eq!(r, 4);
        let (z, r0) = Nat::zero().rshift();
        assert!(z.is_zero());
        assert_eq!(r0, 0);
    }

    #[test]
    fn ordering() {
        let a = Nat::from_u128(1 << 100);
        let b = Nat::from_u128((1 << 100) + 1);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn bit_access() {
        let n = Nat::from_u128(0b101 << 40);
        assert!(n.bit(40));
        assert!(!n.bit(41));
        assert!(n.bit(42));
        assert!(!n.bit(1000));
    }
}
