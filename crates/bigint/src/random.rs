//! Random number generation helpers (seedable, for reproducible experiments).

use crate::limb::{Limb, LIMB_BITS};
use crate::nat::Nat;
use rand::Rng;

/// Uniform random value with exactly `bits` significant bits
/// (the top bit is always set). `bits == 0` returns zero.
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Nat {
    if bits == 0 {
        return Nat::zero();
    }
    let limbs = bits.div_ceil(LIMB_BITS as u64) as usize;
    let mut v: Vec<Limb> = (0..limbs).map(|_| rng.gen()).collect();
    let top_bits = ((bits - 1) % LIMB_BITS as u64) as u32; // bit index within top limb
    let top = &mut v[limbs - 1];
    // Clear bits above the requested width, then force the top bit.
    if top_bits < LIMB_BITS - 1 {
        *top &= (1u32 << (top_bits + 1)) - 1;
    }
    *top |= 1 << top_bits;
    Nat::from_limbs(&v)
}

/// Uniform random value in `[0, bound)`. Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Nat) -> Nat {
    assert!(!bound.is_zero(), "empty range");
    let bits = bound.bit_len();
    let limbs = bits.div_ceil(LIMB_BITS as u64) as usize;
    let top_mask = {
        let used = ((bits - 1) % LIMB_BITS as u64) as u32 + 1;
        if used == LIMB_BITS {
            u32::MAX
        } else {
            (1u32 << used) - 1
        }
    };
    // Rejection sampling: expected < 2 iterations.
    loop {
        let mut v: Vec<Limb> = (0..limbs).map(|_| rng.gen()).collect();
        v[limbs - 1] &= top_mask;
        let n = Nat::from_limbs(&v);
        if n.cmp(bound) == core::cmp::Ordering::Less {
            return n;
        }
    }
}

/// Uniform random odd value with exactly `bits` significant bits.
pub fn random_odd_bits<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Nat {
    assert!(bits >= 1);
    let n = random_bits(rng, bits);
    if n.is_odd() {
        n
    } else {
        n.add(&Nat::one())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_width_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [1u64, 2, 31, 32, 33, 64, 100, 512] {
            for _ in 0..10 {
                let n = random_bits(&mut rng, bits);
                assert_eq!(n.bit_len(), bits, "bits={bits}");
            }
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let bound = Nat::from_u128(1_000_000_007);
        for _ in 0..100 {
            let n = random_below(&mut rng, &bound);
            assert!(n < bound);
        }
    }

    #[test]
    fn random_below_tiny_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = Nat::one();
        for _ in 0..10 {
            assert!(random_below(&mut rng, &bound).is_zero());
        }
    }

    #[test]
    fn random_odd_is_odd_and_right_width() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let n = random_odd_bits(&mut rng, 256);
            assert!(n.is_odd());
            assert_eq!(n.bit_len(), 256);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_bits(&mut StdRng::seed_from_u64(42), 128);
        let b = random_bits(&mut StdRng::seed_from_u64(42), 128);
        assert_eq!(a, b);
    }
}
