//! Conversions to and from hexadecimal, decimal and binary strings.

use crate::div::div_rem_limb;
use crate::nat::Nat;
use core::fmt;

/// Error parsing a number from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNatError {
    /// Offending character, if any (empty input otherwise).
    pub bad_char: Option<char>,
}

impl fmt::Display for ParseNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bad_char {
            Some(c) => write!(f, "invalid digit {c:?} in number literal"),
            None => write!(f, "empty number literal"),
        }
    }
}

impl std::error::Error for ParseNatError {}

impl Nat {
    /// Lower-case hexadecimal representation without a `0x` prefix
    /// (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let limbs = self.limbs();
        let mut s = format!("{:x}", limbs[limbs.len() - 1]);
        for &w in limbs[..limbs.len() - 1].iter().rev() {
            s.push_str(&format!("{w:08x}"));
        }
        s
    }

    /// Parse a hexadecimal string (optional `0x` prefix, `_` separators allowed).
    pub fn from_hex(s: &str) -> Result<Nat, ParseNatError> {
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        let mut digits = Vec::new();
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(16).ok_or(ParseNatError { bad_char: Some(c) })?;
            digits.push(d);
        }
        if digits.is_empty() {
            return Err(ParseNatError { bad_char: None });
        }
        // Pack 8 hex digits per limb, least significant last in the string.
        let mut limbs = vec![0u32; digits.len().div_ceil(8)];
        for (i, &d) in digits.iter().rev().enumerate() {
            limbs[i / 8] |= d << (4 * (i % 8));
        }
        Ok(Nat::from_limbs(&limbs))
    }

    /// Decimal representation.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Peel 9 decimal digits at a time with single-limb division.
        const CHUNK: u32 = 1_000_000_000;
        let mut rem = self.limbs().to_vec();
        let mut groups = Vec::new();
        while !rem.is_empty() {
            let (q, r) = div_rem_limb(&rem, CHUNK);
            groups.push(r);
            rem = q;
        }
        // Non-zero input means at least one division round ran, so the
        // leading group exists; zero-pad every group after it.
        let mut s = String::new();
        for (i, &g) in groups.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&g.to_string());
            } else {
                s.push_str(&format!("{g:09}"));
            }
        }
        s
    }

    /// Parse a decimal string (`_` separators allowed).
    pub fn from_decimal(s: &str) -> Result<Nat, ParseNatError> {
        let mut acc = Nat::zero();
        let mut any = false;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or(ParseNatError { bad_char: Some(c) })?;
            acc = acc.mul_u32(10).add(&Nat::from(d));
            any = true;
        }
        if !any {
            return Err(ParseNatError { bad_char: None });
        }
        Ok(acc)
    }

    /// Binary representation grouped in 4-bit nibbles separated by commas —
    /// the notation the paper's tables use (e.g. `1101,1111` for 223).
    pub fn to_binary_grouped(&self) -> String {
        if self.is_zero() {
            return "0000".to_string();
        }
        let bits = self.bit_len();
        let nibbles = bits.div_ceil(4);
        let mut out = String::new();
        for n in (0..nibbles).rev() {
            let mut v = 0u8;
            for b in 0..4 {
                if self.bit(n * 4 + b) {
                    v |= 1 << b;
                }
            }
            out.push_str(&format!("{v:04b}"));
            if n != 0 {
                out.push(',');
            }
        }
        out
    }
}

impl std::str::FromStr for Nat {
    type Err = ParseNatError;

    /// Parses decimal by default, hexadecimal with a `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.starts_with("0x") || s.starts_with("0X") {
            Nat::from_hex(s)
        } else {
            Nat::from_decimal(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for v in [0u128, 1, 0xff, 0xdead_beef, u128::MAX, 1 << 127] {
            let n = Nat::from_u128(v);
            assert_eq!(Nat::from_hex(&n.to_hex()).unwrap(), n, "v={v:#x}");
        }
        assert_eq!(Nat::from_u128(0xabcdef).to_hex(), "abcdef");
    }

    #[test]
    fn hex_prefix_and_separators() {
        assert_eq!(
            Nat::from_hex("0xdead_beef").unwrap(),
            Nat::from_u128(0xdead_beef)
        );
    }

    #[test]
    fn decimal_roundtrip() {
        for v in [0u128, 9, 10, 999_999_999, 1_000_000_000, u128::MAX] {
            let n = Nat::from_u128(v);
            assert_eq!(n.to_decimal(), v.to_string());
            assert_eq!(Nat::from_decimal(&v.to_string()).unwrap(), n);
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Nat::from_hex("xyz").is_err());
        assert!(Nat::from_decimal("12a").is_err());
        assert!(Nat::from_decimal("").is_err());
        assert!(Nat::from_hex("0x").is_err());
    }

    #[test]
    fn from_str_dispatch() {
        assert_eq!("255".parse::<Nat>().unwrap(), Nat::from(255u32));
        assert_eq!("0xff".parse::<Nat>().unwrap(), Nat::from(255u32));
    }

    #[test]
    fn binary_grouped_matches_paper_notation() {
        // The paper writes 223 as 1101,1111.
        assert_eq!(Nat::from(223u32).to_binary_grouped(), "1101,1111");
        // 1043915 = 1111,1110,1101,1100,1011 (paper Table I, X).
        assert_eq!(
            Nat::from(1_043_915u32).to_binary_grouped(),
            "1111,1110,1101,1100,1011"
        );
    }
}
