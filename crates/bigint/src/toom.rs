//! Toom-Cook-3 multiplication: split each operand into three parts,
//! evaluate at the points {0, 1, −1, 2, ∞}, multiply pointwise (recursing
//! through `mul_dispatch`, so sub-products ride the same ladder), and
//! interpolate the five product coefficients with exact small divisions
//! (by 2 and 3 — the Bodrato/Zanoni sequence).
//!
//! Asymptotically O(n^log3(5)) ≈ O(n^1.465) versus Karatsuba's
//! O(n^1.585); the crossover is recorded in [`crate::thresholds::TOOM3`].
//! Correct for any operand shapes (including empty parts when the shorter
//! operand does not reach the third split), but `mul_dispatch` only routes
//! near-balanced operands here — unbalanced products are chopped into
//! balanced chunks first.

use crate::div::div_rem_limb;
use crate::limb::Limb;
use crate::mul;
use crate::ops;

/// A signed multi-precision value for the interpolation intermediates
/// (evaluations at −1 can dip below zero). Magnitude is normalized; zero
/// is `neg = false` with an empty magnitude.
#[derive(Clone, Debug)]
struct S {
    neg: bool,
    mag: Vec<Limb>,
}

impl S {
    fn from_slice(x: &[Limb]) -> S {
        let n = ops::normalized_len(x);
        S {
            neg: false,
            mag: x[..n].to_vec(),
        }
    }

    fn zero() -> S {
        S {
            neg: false,
            mag: Vec::new(),
        }
    }

    fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Magnitude sum/difference with sign bookkeeping: `self + sign·other`.
    fn combine(&self, other: &S, negate_other: bool) -> S {
        let oneg = other.neg ^ negate_other;
        if self.neg == oneg {
            // Same sign: add magnitudes.
            let (big, small) = if self.mag.len() >= other.mag.len() {
                (&self.mag, &other.mag)
            } else {
                (&other.mag, &self.mag)
            };
            let mut mag = big.clone();
            mag.push(0);
            ops::add_assign(&mut mag, small);
            mag.truncate(ops::normalized_len(&mag));
            let neg = self.neg && !mag.is_empty();
            S { neg, mag }
        } else {
            // Opposite signs: subtract the smaller magnitude from the larger.
            match ops::cmp(&self.mag, &other.mag) {
                core::cmp::Ordering::Equal => S::zero(),
                core::cmp::Ordering::Greater => {
                    let mut mag = self.mag.clone();
                    let borrow = ops::sub_assign(&mut mag, &other.mag);
                    debug_assert_eq!(borrow, 0);
                    mag.truncate(ops::normalized_len(&mag));
                    S {
                        neg: self.neg && !mag.is_empty(),
                        mag,
                    }
                }
                core::cmp::Ordering::Less => {
                    let mut mag = other.mag.clone();
                    let borrow = ops::sub_assign(&mut mag, &self.mag);
                    debug_assert_eq!(borrow, 0);
                    mag.truncate(ops::normalized_len(&mag));
                    S {
                        neg: oneg && !mag.is_empty(),
                        mag,
                    }
                }
            }
        }
    }

    fn add(&self, other: &S) -> S {
        self.combine(other, false)
    }

    fn sub(&self, other: &S) -> S {
        self.combine(other, true)
    }

    /// Exact division by 2 (the low bit must be clear).
    fn half(mut self) -> S {
        debug_assert!(self.mag.first().is_none_or(|&w| w & 1 == 0));
        let n = ops::shr_in_place(&mut self.mag, 1);
        self.mag.truncate(n);
        self.neg &= !self.mag.is_empty();
        self
    }

    /// `self << bits` (magnitude shift).
    fn shl(mut self, bits: u64) -> S {
        if self.is_zero() {
            return self;
        }
        let extra = (bits / 32) as usize + 1;
        self.mag.resize(self.mag.len() + extra, 0);
        let n = ops::shl_in_place(&mut self.mag, bits);
        self.mag.truncate(n);
        self
    }

    /// Exact division by 3 (the remainder must be zero).
    fn div3(mut self) -> S {
        let (q, r) = div_rem_limb(&self.mag, 3);
        debug_assert_eq!(r, 0, "Toom-3 interpolation divides exactly by 3");
        self.mag = q;
        self.neg &= !self.mag.is_empty();
        self
    }

    /// Signed product via the dispatch ladder.
    fn mul(&self, other: &S) -> S {
        if self.is_zero() || other.is_zero() {
            return S::zero();
        }
        S {
            neg: self.neg ^ other.neg,
            mag: mul::mul_slices(&self.mag, &other.mag),
        }
    }
}

/// The `i`-th of three `k`-limb parts of `x` (little-endian; parts beyond
/// the operand are empty).
fn part(x: &[Limb], i: usize, k: usize) -> &[Limb] {
    let lo = (i * k).min(x.len());
    let hi = ((i + 1) * k).min(x.len());
    &x[lo..hi]
}

/// Evaluations of `x = x0 + x1·B + x2·B²` at {0, 1, −1, 2, ∞} where
/// `B = 2^(32k)`. Returned in that order.
fn evaluate(x: &[Limb], k: usize) -> [S; 5] {
    let x0 = S::from_slice(part(x, 0, k));
    let x1 = S::from_slice(part(x, 1, k));
    let x2 = S::from_slice(part(x, 2, k));
    let p1 = x0.add(&x1).add(&x2);
    let pm1 = x0.add(&x2).sub(&x1);
    // x0 + 2·x1 + 4·x2 = x0 + 2·(x1 + 2·x2), all non-negative.
    let p2 = x0.add(&x1.add(&x2.clone().shl(1)).shl(1));
    [x0, p1, pm1, p2, x2]
}

/// Toom-Cook-3 product into `out` (zeroed, `out.len() >= la + lb` for the
/// normalized lengths). Exposed for the direct cross-check tests; normal
/// callers go through `mul_dispatch`.
pub fn mul_toom3_into(out: &mut [Limb], a: &[Limb], b: &[Limb]) {
    let la = ops::normalized_len(a);
    let lb = ops::normalized_len(b);
    if la == 0 || lb == 0 {
        return;
    }
    let (a, b) = (&a[..la], &b[..lb]);
    debug_assert!(out.len() >= la + lb);
    let k = la.max(lb).div_ceil(3);

    let ea = evaluate(a, k);
    let eb = evaluate(b, k);
    // Pointwise products at the five evaluation points.
    let v0 = ea[0].mul(&eb[0]);
    let v1 = ea[1].mul(&eb[1]);
    let vm1 = ea[2].mul(&eb[2]);
    let v2 = ea[3].mul(&eb[3]);
    let vinf = ea[4].mul(&eb[4]);

    // Interpolate c0..c4 of the degree-4 product polynomial:
    //   s1 = (v1 + v_{-1})/2 = c0 + c2 + c4
    //   s2 = (v1 − v_{-1})/2 = c1 + c3
    //   u  = (v2 − c0 − 16·c4)/2 − 2·c2 = c1 + 4·c3
    //   c3 = (u − s2)/3,  c1 = s2 − c3,  c2 = s1 − c0 − c4
    let s1 = v1.add(&vm1).half();
    let s2 = v1.sub(&vm1).half();
    let c0 = v0;
    let c4 = vinf;
    let c2 = s1.sub(&c0).sub(&c4);
    let u = v2
        .sub(&c0)
        .sub(&c4.clone().shl(4))
        .half()
        .sub(&c2.clone().shl(1));
    let c3 = u.sub(&s2).div3();
    let c1 = s2.sub(&c3);

    // Recompose: out = Σ c_i · B^i. Every final coefficient is a
    // non-negative part-product sum; the signed dips were interpolation
    // intermediates only.
    for (i, c) in [c0, c1, c2, c3, c4].iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        debug_assert!(!c.neg, "product coefficients are non-negative");
        let carry = ops::add_assign(&mut out[i * k..], &c.mag);
        debug_assert_eq!(carry, 0, "coefficient c{i} overflows the product");
    }
}

/// Allocating wrapper around [`mul_toom3_into`], normalized result.
pub fn mul_toom3(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let la = ops::normalized_len(a);
    let lb = ops::normalized_len(b);
    if la == 0 || lb == 0 {
        return Vec::new();
    }
    let mut out = vec![0; la + lb];
    mul_toom3_into(&mut out, &a[..la], &b[..lb]);
    out.truncate(ops::normalized_len(&out));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mul::mul_schoolbook;

    fn schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        let mut out = vec![0; a.len() + b.len()];
        mul_schoolbook(&mut out, a, b);
        out.truncate(ops::normalized_len(&out));
        out
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn small_products_match_schoolbook() {
        let cases: [(&[Limb], &[Limb]); 7] = [
            (&[1], &[1]),
            (&[0xffff_ffff], &[0xffff_ffff]),
            (&[1, 2, 3], &[4, 5, 6]),
            (&[0xffff_ffff; 6], &[0xffff_ffff; 6]),
            (&[0, 0, 0, 0, 0, 1], &[7, 0, 0, 1]),
            (&[5], &[1, 2, 3, 4, 5, 6, 7]),
            (&[1, 0, 0, 0, 0, 0, 2], &[3, 4]),
        ];
        for (a, b) in cases {
            assert_eq!(mul_toom3(a, b), schoolbook(a, b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn pseudorandom_products_match_schoolbook() {
        let mut state = 0xfeed_face_cafe_f00du64;
        for (la, lb) in [(9, 9), (10, 7), (33, 32), (100, 51), (97, 96), (64, 128)] {
            let a: Vec<Limb> = (0..la)
                .map(|_| crate::limb::lo(xorshift(&mut state)))
                .collect();
            let b: Vec<Limb> = (0..lb)
                .map(|_| crate::limb::lo(xorshift(&mut state)))
                .collect();
            assert_eq!(mul_toom3(&a, &b), schoolbook(&a, &b), "la={la} lb={lb}");
        }
    }

    #[test]
    fn all_max_limbs_carry_storm() {
        let a = vec![u32::MAX; 48];
        let b = vec![u32::MAX; 47];
        assert_eq!(mul_toom3(&a, &b), schoolbook(&a, &b));
    }

    #[test]
    fn zero_and_tails() {
        assert!(mul_toom3(&[], &[1]).is_empty());
        assert!(mul_toom3(&[0, 0], &[1, 2, 3]).is_empty());
        let a = [9u32, 8, 7, 0, 0];
        let b = [1u32, 2, 3, 4, 5, 6, 0, 0, 0];
        assert_eq!(mul_toom3(&a, &b), schoolbook(&a[..3], &b[..6]));
    }
}
