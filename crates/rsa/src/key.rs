//! RSA key material (textbook RSA, as in the paper's §I description).

use bulkgcd_bigint::Nat;
use core::fmt;

/// An RSA public (encryption) key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    /// The modulus `n = p·q`.
    pub n: Nat,
    /// The public exponent `e`, coprime to `(p−1)(q−1)`.
    pub e: Nat,
}

/// An RSA private (decryption) key `(n, d)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivateKey {
    /// The modulus `n = p·q`.
    pub n: Nat,
    /// The private exponent `d = e⁻¹ mod (p−1)(q−1)`.
    pub d: Nat,
}

/// A full keypair, including the prime factorisation (kept by the owner).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    /// The public half.
    pub public: PublicKey,
    /// The private half.
    pub private: PrivateKey,
    /// First prime factor.
    pub p: Nat,
    /// Second prime factor.
    pub q: Nat,
}

impl KeyPair {
    /// Modulus bit length (the "s" of an s-bit RSA key).
    pub fn modulus_bits(&self) -> u64 {
        self.public.n.bit_len()
    }

    /// Euler totient `(p−1)(q−1)`.
    pub fn phi(&self) -> Nat {
        let one = Nat::one();
        self.p.sub(&one).mul(&self.q.sub(&one))
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey(n=0x{}, e={})", self.n.to_hex(), self.e)
    }
}

/// The conventional public exponent `e = 65537`.
pub fn default_exponent() -> Nat {
    Nat::from(65_537u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_of_known_factors() {
        // p = 11, q = 13: n = 143, phi = 120.
        let kp = KeyPair {
            public: PublicKey {
                n: Nat::from(143u32),
                e: Nat::from(7u32),
            },
            private: PrivateKey {
                n: Nat::from(143u32),
                d: Nat::from(103u32),
            },
            p: Nat::from(11u32),
            q: Nat::from(13u32),
        };
        assert_eq!(kp.phi(), Nat::from(120u32));
        assert_eq!(kp.modulus_bits(), 8);
    }

    #[test]
    fn display_public_key() {
        let pk = PublicKey {
            n: Nat::from(143u32),
            e: Nat::from(7u32),
        };
        assert_eq!(format!("{pk}"), "PublicKey(n=0x8f, e=7)");
    }
}
