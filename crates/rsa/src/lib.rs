//! # bulkgcd-rsa
//!
//! Textbook RSA on the `bulkgcd-bigint` substrate — everything the weak-key
//! attack of the paper needs from a cryptosystem:
//!
//! * [`keygen`] — proper keypair generation (Miller–Rabin primes, `e =
//!   65537`) and [`keygen::WeakKeygen`], a deliberately faulty generator
//!   that reuses primes across keys, modelling the broken generators behind
//!   the weak keys Lenstra et al. found in the wild;
//! * [`corpus`] — synthetic "keys collected from the Web" with planted
//!   shared-prime pairs and exact ground truth;
//! * [`ingest`] — quarantine for hostile real-world input: zero, even,
//!   undersized and duplicate moduli are split into a structured
//!   rejection report instead of aborting (or poisoning) a scan;
//! * [`crypt`] — `C = M^e mod n` / `M = C^d mod n`;
//! * [`attack`] — factoring a modulus from a leaked shared prime and
//!   recovering `d = e⁻¹ mod (p−1)(q−1)` by the extended Euclidean
//!   algorithm, exactly as §I describes.
//!
//! This is *not* a production cryptosystem (no padding, no side-channel
//! hardening) — it exists so the attack pipeline can be demonstrated and
//! verified end to end.

#![warn(missing_docs)]

pub mod attack;
pub mod corpus;
pub mod crt;
pub mod crypt;
pub mod ingest;
pub mod key;
pub mod keygen;

pub use attack::{factor_modulus, recover_private_key, AttackError};
pub use corpus::{build_corpus, Corpus};
pub use crt::CrtPrivateKey;
pub use crypt::{decrypt, encrypt, CryptError};
pub use ingest::{
    fingerprint_limbs, fingerprint_modulus, sanitize_moduli, IngestReport, RejectReason, Rejected,
    StreamingSanitizer,
};
pub use key::{KeyPair, PrivateKey, PublicKey};
pub use keygen::{generate_keypair, WeakKeygen};
