//! Synthetic key corpora — the stand-in for "encryption keys collected
//! from the Web" (§I).
//!
//! A corpus is a set of public moduli, some fraction of which were produced
//! by the broken generator of [`crate::keygen::WeakKeygen`]. Because the
//! corpus is synthetic we also know the ground truth (which pairs share
//! which prime), so scans can be verified exactly.

use crate::key::{default_exponent, KeyPair};
use crate::keygen::{generate_keypair, keypair_from_primes};
use bulkgcd_bigint::prime::random_rsa_prime;
use bulkgcd_bigint::Nat;
use rand::Rng;

/// A corpus of RSA keys with known ground truth.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The keypairs (public moduli are what an attacker sees).
    pub keys: Vec<KeyPair>,
    /// Ground truth: indices of key pairs `(i, j)` with `i < j` sharing a
    /// prime, together with that prime.
    pub shared: Vec<(usize, usize, Nat)>,
}

impl Corpus {
    /// The public moduli in index order.
    pub fn moduli(&self) -> Vec<Nat> {
        self.keys.iter().map(|k| k.public.n.clone()).collect()
    }

    /// Indices of keys that share a prime with any other key.
    pub fn vulnerable_indices(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.shared.iter().flat_map(|&(i, j, _)| [i, j]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Build a corpus of `total` keys of `modulus_bits` bits, with
/// `weak_pairs` planted pairs that each share a fresh prime. The planted
/// pairs are disjoint (each vulnerable key shares with exactly one other),
/// and their positions are shuffled into the corpus.
pub fn build_corpus<R: Rng + ?Sized>(
    rng: &mut R,
    total: usize,
    modulus_bits: u64,
    weak_pairs: usize,
) -> Corpus {
    assert!(
        2 * weak_pairs <= total,
        "too many weak pairs for corpus size"
    );
    let half = modulus_bits / 2;
    let e = default_exponent();
    let mut keys = Vec::with_capacity(total);

    // Planted weak pairs: n_i = p*q_i, n_j = p*q_j.
    for _ in 0..weak_pairs {
        let shared_prime = random_rsa_prime(rng, half);
        loop {
            let q1 = random_rsa_prime(rng, half);
            let q2 = random_rsa_prime(rng, half);
            let k1 = keypair_from_primes(shared_prime.clone(), q1, e.clone());
            let k2 = keypair_from_primes(shared_prime.clone(), q2, e.clone());
            if let (Some(k1), Some(k2)) = (k1, k2) {
                if k1.public.n != k2.public.n {
                    keys.push(k1);
                    keys.push(k2);
                    break;
                }
            }
        }
    }
    // Fill the rest with properly generated keys.
    while keys.len() < total {
        keys.push(generate_keypair(rng, modulus_bits));
    }

    // Shuffle positions (Fisher-Yates over the key vector).
    for i in (1..keys.len()).rev() {
        let j = rng.gen_range(0..=i);
        keys.swap(i, j);
    }

    // Recompute ground truth from the shuffled corpus.
    let mut shared = Vec::new();
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            let g = keys[i].public.n.gcd_reference(&keys[j].public.n);
            if !g.is_one() {
                shared.push((i, j, g));
            }
        }
    }
    Corpus { keys, shared }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn corpus_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = build_corpus(&mut rng, 10, 128, 2);
        assert_eq!(c.keys.len(), 10);
        assert_eq!(c.shared.len(), 2, "planted pairs are disjoint");
        assert_eq!(c.vulnerable_indices().len(), 4);
        for k in &c.keys {
            assert_eq!(k.modulus_bits(), 128);
        }
    }

    #[test]
    fn ground_truth_factors_are_real_factors() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = build_corpus(&mut rng, 8, 96, 3);
        for (i, j, p) in &c.shared {
            assert!(c.keys[*i].public.n.rem(p).is_zero());
            assert!(c.keys[*j].public.n.rem(p).is_zero());
            assert_eq!(p.bit_len(), 48);
        }
    }

    #[test]
    fn corpus_without_weak_pairs_is_clean() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = build_corpus(&mut rng, 6, 96, 0);
        assert!(c.shared.is_empty());
        assert!(c.vulnerable_indices().is_empty());
    }

    #[test]
    #[should_panic(expected = "too many weak pairs")]
    fn oversubscribed_corpus_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = build_corpus(&mut rng, 3, 96, 2);
    }

    #[test]
    fn moduli_accessor_matches_keys() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = build_corpus(&mut rng, 5, 96, 1);
        let m = c.moduli();
        assert_eq!(m.len(), 5);
        for (k, n) in c.keys.iter().zip(&m) {
            assert_eq!(&k.public.n, n);
        }
    }
}
