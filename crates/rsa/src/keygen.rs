//! RSA key generation — proper and deliberately broken.
//!
//! The paper's attack target is keys produced by "inappropriate
//! implementation of a random prime number generator" that *share or reuse
//! the same prime number* (§I). [`generate_keypair`] is the correct
//! procedure; [`WeakKeygen`] models the broken one by maintaining a small
//! pool of primes and re-drawing from it with a configurable probability —
//! the synthetic stand-in for the keys Lenstra et al. harvested from the
//! web.

use crate::key::{default_exponent, KeyPair, PrivateKey, PublicKey};
use bulkgcd_bigint::prime::random_rsa_prime;
use bulkgcd_bigint::Nat;
use rand::Rng;

/// Generate one prime suitable for an RSA factor: `bits` wide and such that
/// `gcd(p−1, e) = 1` so `e` is invertible mod `(p−1)(q−1)`.
fn rsa_prime<R: Rng + ?Sized>(rng: &mut R, bits: u64, e: &Nat) -> Nat {
    loop {
        let p = random_rsa_prime(rng, bits);
        if p.sub(&Nat::one()).gcd_reference(e).is_one() {
            return p;
        }
    }
}

/// Assemble a keypair from two distinct primes.
///
/// Returns `None` if `p == q` or `e` is not invertible (callers regenerate).
pub fn keypair_from_primes(p: Nat, q: Nat, e: Nat) -> Option<KeyPair> {
    if p == q {
        return None;
    }
    let n = p.mul(&q);
    let phi = p.sub(&Nat::one()).mul(&q.sub(&Nat::one()));
    let d = e.modinv(&phi)?;
    Some(KeyPair {
        public: PublicKey { n: n.clone(), e },
        private: PrivateKey { n, d },
        p,
        q,
    })
}

/// Generate a proper `modulus_bits`-bit RSA keypair with `e = 65537`.
pub fn generate_keypair<R: Rng + ?Sized>(rng: &mut R, modulus_bits: u64) -> KeyPair {
    assert!(modulus_bits >= 32, "modulus too small to be meaningful");
    let half = modulus_bits / 2;
    let e = default_exponent();
    loop {
        let p = rsa_prime(rng, half, &e);
        let q = rsa_prime(rng, half, &e);
        if let Some(kp) = keypair_from_primes(p, q, e.clone()) {
            return kp;
        }
    }
}

/// A deliberately faulty key generator that reuses primes across keys.
///
/// With probability `reuse_probability` each prime is drawn from the pool
/// of previously generated primes instead of fresh randomness — the failure
/// mode behind real-world weak RSA keys.
#[derive(Debug)]
pub struct WeakKeygen {
    /// Pool of primes already handed out.
    pool: Vec<Nat>,
    /// Probability that a requested prime is reused from the pool.
    reuse_probability: f64,
    /// Modulus width of generated keys.
    modulus_bits: u64,
}

impl WeakKeygen {
    /// New generator for `modulus_bits`-bit keys reusing primes with the
    /// given probability (`0.0` = correct generator, `1.0` = always reuse
    /// once the pool is non-empty).
    pub fn new(modulus_bits: u64, reuse_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&reuse_probability));
        assert!(modulus_bits >= 32);
        WeakKeygen {
            pool: Vec::new(),
            reuse_probability,
            modulus_bits,
        }
    }

    fn next_prime<R: Rng + ?Sized>(&mut self, rng: &mut R, e: &Nat) -> Nat {
        if !self.pool.is_empty() && rng.gen_bool(self.reuse_probability) {
            let i = rng.gen_range(0..self.pool.len());
            return self.pool[i].clone();
        }
        let p = rsa_prime(rng, self.modulus_bits / 2, e);
        self.pool.push(p.clone());
        p
    }

    /// Generate the next (possibly weak) keypair.
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> KeyPair {
        let e = default_exponent();
        loop {
            let p = self.next_prime(rng, &e);
            let q = self.next_prime(rng, &e);
            if let Some(kp) = keypair_from_primes(p, q, e.clone()) {
                return kp;
            }
        }
    }

    /// Number of distinct primes handed out so far.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_keypair_is_well_formed() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = generate_keypair(&mut rng, 128);
        assert_eq!(kp.p.mul(&kp.q), kp.public.n);
        assert_eq!(kp.modulus_bits(), 128);
        assert_ne!(kp.p, kp.q);
        // e*d == 1 mod phi
        assert!(kp.public.e.mul(&kp.private.d).rem(&kp.phi()).is_one());
    }

    #[test]
    fn prime_halves_have_exact_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = generate_keypair(&mut rng, 192);
        assert_eq!(kp.p.bit_len(), 96);
        assert_eq!(kp.q.bit_len(), 96);
    }

    #[test]
    fn keypair_from_equal_primes_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = random_rsa_prime(&mut rng, 40);
        assert!(keypair_from_primes(p.clone(), p, default_exponent()).is_none());
    }

    #[test]
    fn weak_keygen_reuses_primes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut weak = WeakKeygen::new(96, 0.5);
        let keys: Vec<_> = (0..12).map(|_| weak.generate(&mut rng)).collect();
        // With reuse probability 0.5, 12 keys need far fewer than 24 primes.
        assert!(weak.pool_size() < 24);
        // At least one pair of keys must share a prime factor.
        let mut shared = false;
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                let g = keys[i].public.n.gcd_reference(&keys[j].public.n);
                if !g.is_one() {
                    shared = true;
                    // The GCD is a prime of key i — or the whole modulus when
                    // both primes were reused (duplicate keys happen too).
                    assert!(g == keys[i].p || g == keys[i].q || g == keys[i].public.n);
                }
            }
        }
        assert!(shared, "expected at least one shared prime at 50% reuse");
    }

    #[test]
    fn weak_keygen_zero_probability_is_correct_generator() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gen = WeakKeygen::new(96, 0.0);
        let keys: Vec<_> = (0..6).map(|_| gen.generate(&mut rng)).collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert!(keys[i].public.n.gcd_reference(&keys[j].public.n).is_one());
            }
        }
        assert_eq!(gen.pool_size(), 12);
    }
}
