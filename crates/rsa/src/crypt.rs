//! Textbook RSA encryption and decryption (§I: `C = M^e mod n`,
//! `M = C^d mod n`). No padding — this crate exists to demonstrate the
//! attack, not to be used as a cryptosystem.

use crate::key::{PrivateKey, PublicKey};
use bulkgcd_bigint::Nat;

/// Errors from encrypt/decrypt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptError {
    /// The message is not in `[0, n)`.
    MessageOutOfRange,
}

impl core::fmt::Display for CryptError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptError::MessageOutOfRange => write!(f, "message must satisfy 0 <= M < n"),
        }
    }
}

impl std::error::Error for CryptError {}

/// Encrypt `m` under `pk`: `C = M^e mod n`. Requires `0 <= m < n`.
pub fn encrypt(pk: &PublicKey, m: &Nat) -> Result<Nat, CryptError> {
    if m.cmp(&pk.n) != core::cmp::Ordering::Less {
        return Err(CryptError::MessageOutOfRange);
    }
    Ok(m.modpow(&pk.e, &pk.n))
}

/// Decrypt `c` under `sk`: `M = C^d mod n`. Requires `0 <= c < n`.
pub fn decrypt(sk: &PrivateKey, c: &Nat) -> Result<Nat, CryptError> {
    if c.cmp(&sk.n) != core::cmp::Ordering::Less {
        return Err(CryptError::MessageOutOfRange);
    }
    Ok(c.modpow(&sk.d, &sk.n))
}

/// Encode a byte string as a `Nat` (big-endian), for demo messages.
pub fn encode_message(bytes: &[u8]) -> Nat {
    let mut n = Nat::zero();
    for &b in bytes {
        n = n.shl(8).add(&Nat::from(b as u32));
    }
    n
}

/// Decode a `Nat` back to bytes (inverse of [`encode_message`]).
pub fn decode_message(n: &Nat) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut v = n.clone();
    while !v.is_zero() {
        bytes.push((v.low_u64() & 0xff) as u8);
        v = v.shr(8);
    }
    bytes.reverse();
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::generate_keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = generate_keypair(&mut rng, 128);
        let m = Nat::from(123_456_789u32);
        let c = encrypt(&kp.public, &m).unwrap();
        assert_ne!(c, m);
        assert_eq!(decrypt(&kp.private, &c).unwrap(), m);
    }

    #[test]
    fn message_must_be_reduced() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = generate_keypair(&mut rng, 96);
        let too_big = kp.public.n.add(&Nat::one());
        assert_eq!(
            encrypt(&kp.public, &too_big),
            Err(CryptError::MessageOutOfRange)
        );
        assert_eq!(
            decrypt(&kp.private, &kp.private.n.clone()),
            Err(CryptError::MessageOutOfRange)
        );
    }

    #[test]
    fn zero_and_one_fixed_points() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = generate_keypair(&mut rng, 96);
        assert!(encrypt(&kp.public, &Nat::zero()).unwrap().is_zero());
        assert!(encrypt(&kp.public, &Nat::one()).unwrap().is_one());
    }

    #[test]
    fn message_encoding_roundtrip() {
        let msgs: [&[u8]; 4] = [b"", b"a", b"hello weak RSA", b"\x00\x01\x02"];
        for m in msgs {
            let n = encode_message(m);
            // Leading zero bytes do not survive numeric encoding; the demo
            // messages avoid them.
            let stripped: Vec<u8> = m.iter().copied().skip_while(|&b| b == 0).collect();
            assert_eq!(decode_message(&n), stripped);
        }
    }

    #[test]
    fn text_message_roundtrip_through_rsa() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = generate_keypair(&mut rng, 256);
        let m = encode_message(b"attack at dawn");
        let c = encrypt(&kp.public, &m).unwrap();
        let back = decrypt(&kp.private, &c).unwrap();
        assert_eq!(decode_message(&back), b"attack at dawn");
    }
}
