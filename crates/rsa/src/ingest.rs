//! Corpus ingestion hardening: quarantine malformed moduli.
//!
//! Keys "collected from the Web" (§I) are hostile input: truncated files,
//! zero or even values, test keys pasted twice. A single such modulus must
//! never abort an hours-long scan — and silently scanning it is worse,
//! because a zero modulus makes every `gcd(0, n) = n` look like a finding.
//! [`sanitize_moduli`] splits a raw corpus into the moduli worth scanning
//! and a structured [`quarantine`](IngestReport::rejected): every rejected
//! modulus keeps its original index and a machine-readable
//! [`RejectReason`], so the operator can audit exactly what was dropped
//! and why.
//!
//! Exact duplicates are quarantined here (the scan would only rediscover
//! each copy pair as a [`DuplicateModulus`] finding with no factor to
//! show for it); a corpus scanned *without* sanitisation still classifies
//! them — defence in both layers.
//!
//! [`DuplicateModulus`]: ../../bulkgcd_bulk/scan/enum.FindingKind.html

use bulkgcd_bigint::Nat;
use std::collections::HashMap;
use std::fmt;

/// Why a modulus was quarantined instead of scanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The modulus is zero: `gcd(0, n) = n`, so it would "share a factor"
    /// with every key in the corpus.
    Zero,
    /// The modulus is even. An RSA modulus is a product of two odd primes;
    /// an even value is corrupt (and trivially factorable by 2).
    Even,
    /// The modulus has fewer than the required bits — a truncated or toy
    /// value, not a key.
    Undersized {
        /// The modulus's actual bit length.
        bits: u64,
        /// The ingestion floor it failed.
        min_bits: u64,
    },
    /// Byte-identical to an earlier modulus in the corpus.
    Duplicate {
        /// Original index of the first occurrence (which was kept).
        of: usize,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Zero => write!(f, "zero modulus"),
            RejectReason::Even => write!(f, "even modulus"),
            RejectReason::Undersized { bits, min_bits } => {
                write!(f, "undersized modulus ({bits} bits < {min_bits} required)")
            }
            RejectReason::Duplicate { of } => {
                write!(f, "duplicate of modulus #{of}")
            }
        }
    }
}

/// One quarantined modulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// Index of the modulus in the raw input.
    pub index: usize,
    /// The offending value (kept for the audit trail).
    pub modulus: Nat,
    /// Why it was quarantined.
    pub reason: RejectReason,
}

/// The outcome of sanitising a raw corpus.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// The moduli that passed every check, in input order.
    pub accepted: Vec<Nat>,
    /// For each accepted modulus, its index in the raw input — the map
    /// from scan-finding indices back to the operator's key list.
    pub accepted_indices: Vec<usize>,
    /// The quarantine: every rejected modulus with its index and reason.
    pub rejected: Vec<Rejected>,
}

impl IngestReport {
    /// Rejection counts by class: `(zero, even, undersized, duplicate)`.
    pub fn rejection_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for r in &self.rejected {
            match r.reason {
                RejectReason::Zero => counts.0 += 1,
                RejectReason::Even => counts.1 += 1,
                RejectReason::Undersized { .. } => counts.2 += 1,
                RejectReason::Duplicate { .. } => counts.3 += 1,
            }
        }
        counts
    }

    /// One-line summary for logs: accepted/rejected totals and the
    /// per-class breakdown.
    pub fn summary(&self) -> String {
        let (zero, even, undersized, duplicate) = self.rejection_counts();
        format!(
            "accepted {} of {} moduli (quarantined: {} zero, {} even, {} undersized, {} duplicate)",
            self.accepted.len(),
            self.accepted.len() + self.rejected.len(),
            zero,
            even,
            undersized,
            duplicate,
        )
    }
}

/// Split `moduli` into scannable keys and a quarantine.
///
/// Checks, in order (the first failure is the recorded reason): zero,
/// even, fewer than `min_bits` bits, exact duplicate of an earlier
/// modulus. `min_bits = 0` disables the size floor. Never panics and
/// never drops a value silently — every input index appears in exactly
/// one of `accepted_indices` or `rejected`.
pub fn sanitize_moduli(moduli: &[Nat], min_bits: u64) -> IngestReport {
    let mut report = IngestReport::default();
    let mut seen: HashMap<&Nat, usize> = HashMap::with_capacity(moduli.len());
    for (index, n) in moduli.iter().enumerate() {
        let reason = if n.is_zero() {
            Some(RejectReason::Zero)
        } else if n.is_even() {
            Some(RejectReason::Even)
        } else if n.bit_len() < min_bits {
            Some(RejectReason::Undersized {
                bits: n.bit_len(),
                min_bits,
            })
        } else if let Some(&of) = seen.get(n) {
            Some(RejectReason::Duplicate { of })
        } else {
            seen.insert(n, index);
            None
        };
        match reason {
            Some(reason) => report.rejected.push(Rejected {
                index,
                modulus: n.clone(),
                reason,
            }),
            None => {
                report.accepted.push(n.clone());
                report.accepted_indices.push(index);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Nat {
        Nat::from_u64(v)
    }

    #[test]
    fn clean_corpus_passes_untouched() {
        let moduli = vec![n(15), n(21), n(35)];
        let report = sanitize_moduli(&moduli, 3);
        assert_eq!(report.accepted, moduli);
        assert_eq!(report.accepted_indices, vec![0, 1, 2]);
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn each_reject_class_is_caught_with_its_reason() {
        let moduli = vec![
            n(0),  // zero
            n(15), // ok
            n(22), // even
            n(7),  // undersized at min_bits = 4
            n(15), // duplicate of index 1
            n(21), // ok
        ];
        let report = sanitize_moduli(&moduli, 4);
        assert_eq!(report.accepted, vec![n(15), n(21)]);
        assert_eq!(report.accepted_indices, vec![1, 5]);
        let reasons: Vec<_> = report
            .rejected
            .iter()
            .map(|r| (r.index, r.reason))
            .collect();
        assert_eq!(
            reasons,
            vec![
                (0, RejectReason::Zero),
                (2, RejectReason::Even),
                (
                    3,
                    RejectReason::Undersized {
                        bits: 3,
                        min_bits: 4
                    }
                ),
                (4, RejectReason::Duplicate { of: 1 }),
            ]
        );
        assert_eq!(report.rejection_counts(), (1, 1, 1, 1));
        let s = report.summary();
        assert!(s.contains("accepted 2 of 6"), "{s}");
    }

    #[test]
    fn zero_wins_over_even_and_undersized() {
        // Zero is even and has 0 bits; the recorded reason must still be
        // Zero (check order is part of the contract).
        let report = sanitize_moduli(&[n(0)], 64);
        assert_eq!(report.rejected[0].reason, RejectReason::Zero);
    }

    #[test]
    fn duplicates_point_at_first_kept_occurrence() {
        let moduli = vec![n(33), n(35), n(33), n(33)];
        let report = sanitize_moduli(&moduli, 0);
        assert_eq!(report.accepted.len(), 2);
        assert_eq!(
            report.rejected.iter().map(|r| r.reason).collect::<Vec<_>>(),
            vec![
                RejectReason::Duplicate { of: 0 },
                RejectReason::Duplicate { of: 0 },
            ]
        );
    }

    #[test]
    fn min_bits_zero_disables_size_floor() {
        let report = sanitize_moduli(&[n(1), n(3)], 0);
        assert!(report.rejected.is_empty());
        assert_eq!(report.accepted.len(), 2);
    }

    #[test]
    fn every_index_lands_exactly_once() {
        let moduli = vec![n(0), n(9), n(9), n(4), n(25), n(1)];
        let report = sanitize_moduli(&moduli, 3);
        let mut indices: Vec<usize> = report
            .accepted_indices
            .iter()
            .copied()
            .chain(report.rejected.iter().map(|r| r.index))
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..moduli.len()).collect::<Vec<_>>());
    }
}
