//! Corpus ingestion hardening: streaming sanitization of hostile moduli.
//!
//! Keys "collected from the Web" (§I) are hostile input: truncated files,
//! zero or even values, test keys pasted twice. A single such modulus must
//! never abort an hours-long scan — and silently scanning it is worse,
//! because a zero modulus makes every `gcd(0, n) = n` look like a finding.
//!
//! The sanitizer here is built for corpus scale (the paper's run covered
//! hundreds of thousands of certificates; Pelofske's all-to-all GCD work
//! targets millions):
//!
//! * **Single pass, single owner.** [`StreamingSanitizer`] takes each
//!   modulus *by value* as it is parsed and keeps exactly one copy of each
//!   accepted value — no cloned `accepted` vector doubling peak memory,
//!   and no requirement that the raw corpus ever be materialized at once.
//! * **Fingerprint dedup.** Duplicates are detected by a 64-bit
//!   FNV-1a/splitmix [`fingerprint_limbs`] hash of the limbs, confirmed by
//!   limb comparison on a bucket hit — O(1) expected per key instead of
//!   hashing full multi-kilobit values into a `HashMap<&Nat>`.
//! * **Succinct acceptance index.** The accept/reject outcome per raw
//!   input is a [`RankSelect`] bitmap: `select1(row)` maps a compacted
//!   scan row back to its raw corpus position in O(1), replacing the old
//!   `Vec<usize>` side table (see [`IngestReport::raw_index`]).
//! * **Bounded quarantine.** A [`Rejected`] record stores the raw index,
//!   the fingerprint, the bit length and the [`RejectReason`] — not the
//!   full modulus — so a corpus that is 90% garbage cannot blow up the
//!   audit trail.
//!
//! Exact duplicates are quarantined here (the scan would only rediscover
//! each copy pair as a [`DuplicateModulus`] finding with no factor to
//! show for it); a corpus scanned *without* sanitisation still classifies
//! them — defence in both layers.
//!
//! [`DuplicateModulus`]: ../../bulkgcd_bulk/scan/enum.FindingKind.html

use bulkgcd_bigint::limb::Limb;
use bulkgcd_bigint::Nat;
use bulkgcd_core::{RankSelect, RankSelectBuilder};
use std::collections::HashMap;
use std::fmt;

/// Why a modulus was quarantined instead of scanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The modulus is zero: `gcd(0, n) = n`, so it would "share a factor"
    /// with every key in the corpus.
    Zero,
    /// The modulus is even. An RSA modulus is a product of two odd primes;
    /// an even value is corrupt (and trivially factorable by 2).
    Even,
    /// The modulus has fewer than the required bits — a truncated or toy
    /// value, not a key.
    Undersized {
        /// The modulus's actual bit length.
        bits: u64,
        /// The ingestion floor it failed.
        min_bits: u64,
    },
    /// Byte-identical to an earlier modulus in the corpus.
    Duplicate {
        /// Original index of the first occurrence (which was kept).
        of: usize,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Zero => write!(f, "zero modulus"),
            RejectReason::Even => write!(f, "even modulus"),
            RejectReason::Undersized { bits, min_bits } => {
                write!(f, "undersized modulus ({bits} bits < {min_bits} required)")
            }
            RejectReason::Duplicate { of } => {
                write!(f, "duplicate of modulus #{of}")
            }
        }
    }
}

/// One quarantined modulus: a bounded audit record, not the value itself.
///
/// The fingerprint plus bit length identify the offender well enough to
/// trace it back to the source dump without the quarantine holding
/// arbitrarily many multi-kilobit rejects alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// Index of the modulus in the raw input.
    pub index: usize,
    /// [`fingerprint_limbs`] of the offending value.
    pub fingerprint: u64,
    /// Bit length of the offending value.
    pub bits: u64,
    /// Why it was quarantined.
    pub reason: RejectReason,
}

/// The outcome of sanitising a raw corpus: a succinct acceptance index
/// plus the quarantine. Accepted values stay wherever the caller keeps
/// them ([`sanitize_moduli`] leaves the input slice as the single owner;
/// [`StreamingSanitizer::finish`] hands back the owned accepted vector).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// One bit per raw input: set iff the modulus passed every check.
    /// `select1(row)` is the raw position of compacted row `row`;
    /// `rank1(raw)` is the compacted row of an accepted raw position.
    pub acceptance: RankSelect,
    /// The quarantine: every rejected modulus with its index and reason.
    pub rejected: Vec<Rejected>,
}

impl IngestReport {
    /// Number of raw inputs the sanitizer saw.
    pub fn total(&self) -> usize {
        self.acceptance.len()
    }

    /// Number of accepted moduli (compacted rows).
    pub fn accepted_count(&self) -> usize {
        self.acceptance.count_ones()
    }

    /// Raw corpus position of compacted row `row` — the O(1) map from a
    /// scan finding index back to the operator's key list.
    ///
    /// Panics if `row >= accepted_count()` (an out-of-range row is a
    /// caller bug, never data-dependent).
    pub fn raw_index(&self, row: usize) -> usize {
        // analyze: allow(no-panic, reason = "documented panic contract: rows come from scan findings over the accepted corpus, so row < accepted_count by construction")
        self.acceptance
            .select1(row)
            .expect("compacted row within accepted corpus")
    }

    /// Compacted row of raw position `raw`, if that input was accepted.
    pub fn row_of(&self, raw: usize) -> Option<usize> {
        if self.acceptance.get(raw) {
            Some(self.acceptance.rank1(raw))
        } else {
            None
        }
    }

    /// Raw positions of the accepted moduli, in input order.
    pub fn accepted_raw_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.accepted_count()).map(|row| self.raw_index(row))
    }

    /// Rejection counts by class: `(zero, even, undersized, duplicate)`.
    pub fn rejection_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for r in &self.rejected {
            match r.reason {
                RejectReason::Zero => counts.0 += 1,
                RejectReason::Even => counts.1 += 1,
                RejectReason::Undersized { .. } => counts.2 += 1,
                RejectReason::Duplicate { .. } => counts.3 += 1,
            }
        }
        counts
    }

    /// One-line summary for logs: accepted/rejected totals and the
    /// per-class breakdown.
    pub fn summary(&self) -> String {
        let (zero, even, undersized, duplicate) = self.rejection_counts();
        format!(
            "accepted {} of {} moduli (quarantined: {} zero, {} even, {} undersized, {} duplicate)",
            self.accepted_count(),
            self.total(),
            zero,
            even,
            undersized,
            duplicate,
        )
    }
}

/// 64-bit fingerprint of a little-endian limb slice: FNV-1a over the limb
/// bytes, then a splitmix64 finalizer for avalanche. Used for dedup
/// bucketing ahead of the arena build and as the bounded quarantine
/// identity of a rejected modulus.
///
/// Trailing zero limbs are ignored, so the fingerprint depends only on
/// the numeric value (a [`Nat`]'s limbs are already normalized).
pub fn fingerprint_limbs(limbs: &[Limb]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut n = limbs.len();
    while n > 0 && limbs[n - 1] == 0 {
        n -= 1;
    }
    let mut h = OFFSET;
    for &limb in &limbs[..n] {
        for byte in limb.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
        }
    }
    // splitmix64 finalizer: FNV alone mixes low bytes weakly.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// [`fingerprint_limbs`] of a modulus.
pub fn fingerprint_modulus(n: &Nat) -> u64 {
    fingerprint_limbs(n.as_limbs())
}

/// The structural checks that need only the value itself, in contract
/// order: zero, even, undersized. `None` means "scannable so far" (dedup
/// is the caller's final check).
fn structural_reject(n: &Nat, min_bits: u64) -> Option<RejectReason> {
    if n.is_zero() {
        Some(RejectReason::Zero)
    } else if n.is_even() {
        Some(RejectReason::Even)
    } else if n.bit_len() < min_bits {
        Some(RejectReason::Undersized {
            bits: n.bit_len(),
            min_bits,
        })
    } else {
        None
    }
}

/// Single-pass streaming sanitizer: feed moduli one at a time with
/// [`push`](Self::push) as they are parsed, then [`finish`](Self::finish)
/// for the accepted corpus (single copy, input order) and the
/// [`IngestReport`].
///
/// Checks, in order (the first failure is the recorded reason): zero,
/// even, fewer than `min_bits` bits, exact duplicate of an earlier
/// accepted modulus. `min_bits = 0` disables the size floor. Never panics
/// and never drops a value silently — every pushed index lands in exactly
/// one of the acceptance bitmap's set bits or [`IngestReport::rejected`].
#[derive(Debug, Default)]
pub struct StreamingSanitizer {
    min_bits: u64,
    accepted: Vec<Nat>,
    bits: RankSelectBuilder,
    /// fingerprint → (raw index, compacted row) of each distinct accepted
    /// value in that bucket; collisions are resolved by limb comparison.
    seen: HashMap<u64, Vec<(usize, usize)>>,
    rejected: Vec<Rejected>,
}

impl StreamingSanitizer {
    /// A sanitizer enforcing `min_bits` (0 disables the size floor).
    pub fn new(min_bits: u64) -> Self {
        StreamingSanitizer {
            min_bits,
            ..Self::default()
        }
    }

    /// Number of moduli pushed so far (accepted + rejected).
    pub fn pushed(&self) -> usize {
        self.bits.len()
    }

    /// The accepted moduli so far, in input order.
    pub fn accepted(&self) -> &[Nat] {
        &self.accepted
    }

    /// Sanitize one modulus. Returns the reason if it was quarantined,
    /// `None` if it was accepted (and is now owned by the sanitizer).
    pub fn push(&mut self, n: Nat) -> Option<RejectReason> {
        let index = self.bits.len();
        let fp = fingerprint_modulus(&n);
        let reason = match structural_reject(&n, self.min_bits) {
            Some(reason) => Some(reason),
            None => {
                let bucket = self.seen.entry(fp).or_default();
                let prior = bucket
                    .iter()
                    .find(|&&(_, row)| self.accepted[row].as_limbs() == n.as_limbs())
                    .map(|&(raw, _)| raw);
                match prior {
                    Some(of) => Some(RejectReason::Duplicate { of }),
                    None => {
                        bucket.push((index, self.accepted.len()));
                        None
                    }
                }
            }
        };
        match reason {
            Some(reason) => {
                self.rejected.push(Rejected {
                    index,
                    fingerprint: fp,
                    bits: n.bit_len(),
                    reason,
                });
                self.bits.push(false);
            }
            None => {
                self.accepted.push(n);
                self.bits.push(true);
            }
        }
        reason
    }

    /// Freeze: the accepted corpus (single copy, input order) and the
    /// acceptance index + quarantine.
    pub fn finish(self) -> (Vec<Nat>, IngestReport) {
        (
            self.accepted,
            IngestReport {
                acceptance: self.bits.finish(),
                rejected: self.rejected,
            },
        )
    }
}

/// Sanitize an already-materialized corpus **without copying it**: the
/// caller's slice stays the single owner of every modulus, and the report
/// identifies the accepted ones by index ([`IngestReport::acceptance`],
/// [`IngestReport::raw_index`]).
///
/// Same checks and contract as [`StreamingSanitizer`].
pub fn sanitize_moduli(moduli: &[Nat], min_bits: u64) -> IngestReport {
    let mut bits = RankSelectBuilder::new();
    let mut rejected = Vec::new();
    let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
    for (index, n) in moduli.iter().enumerate() {
        let fp = fingerprint_modulus(n);
        let reason = match structural_reject(n, min_bits) {
            Some(reason) => Some(reason),
            None => {
                let bucket = seen.entry(fp).or_default();
                let prior = bucket
                    .iter()
                    .find(|&&raw| moduli[raw].as_limbs() == n.as_limbs())
                    .copied();
                match prior {
                    Some(of) => Some(RejectReason::Duplicate { of }),
                    None => {
                        bucket.push(index);
                        None
                    }
                }
            }
        };
        match reason {
            Some(reason) => {
                rejected.push(Rejected {
                    index,
                    fingerprint: fp,
                    bits: n.bit_len(),
                    reason,
                });
                bits.push(false);
            }
            None => bits.push(true),
        }
    }
    IngestReport {
        acceptance: bits.finish(),
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Nat {
        Nat::from_u64(v)
    }

    /// The accepted moduli a borrowed-mode report selects out of `moduli`.
    fn accepted_view(moduli: &[Nat], report: &IngestReport) -> Vec<Nat> {
        report
            .accepted_raw_indices()
            .map(|raw| moduli[raw].clone())
            .collect()
    }

    #[test]
    fn clean_corpus_passes_untouched() {
        let moduli = vec![n(15), n(21), n(35)];
        let report = sanitize_moduli(&moduli, 3);
        assert_eq!(accepted_view(&moduli, &report), moduli);
        assert_eq!(
            report.accepted_raw_indices().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn each_reject_class_is_caught_with_its_reason() {
        let moduli = vec![
            n(0),  // zero
            n(15), // ok
            n(22), // even
            n(7),  // undersized at min_bits = 4
            n(15), // duplicate of index 1
            n(21), // ok
        ];
        let report = sanitize_moduli(&moduli, 4);
        assert_eq!(accepted_view(&moduli, &report), vec![n(15), n(21)]);
        assert_eq!(report.raw_index(0), 1);
        assert_eq!(report.raw_index(1), 5);
        let reasons: Vec<_> = report
            .rejected
            .iter()
            .map(|r| (r.index, r.reason))
            .collect();
        assert_eq!(
            reasons,
            vec![
                (0, RejectReason::Zero),
                (2, RejectReason::Even),
                (
                    3,
                    RejectReason::Undersized {
                        bits: 3,
                        min_bits: 4
                    }
                ),
                (4, RejectReason::Duplicate { of: 1 }),
            ]
        );
        assert_eq!(report.rejection_counts(), (1, 1, 1, 1));
        let s = report.summary();
        assert!(s.contains("accepted 2 of 6"), "{s}");
    }

    #[test]
    fn zero_wins_over_even_and_undersized() {
        // Zero is even and has 0 bits; the recorded reason must still be
        // Zero (check order is part of the contract).
        let report = sanitize_moduli(&[n(0)], 64);
        assert_eq!(report.rejected[0].reason, RejectReason::Zero);
    }

    #[test]
    fn duplicates_point_at_first_kept_occurrence() {
        let moduli = vec![n(33), n(35), n(33), n(33)];
        let report = sanitize_moduli(&moduli, 0);
        assert_eq!(report.accepted_count(), 2);
        assert_eq!(
            report.rejected.iter().map(|r| r.reason).collect::<Vec<_>>(),
            vec![
                RejectReason::Duplicate { of: 0 },
                RejectReason::Duplicate { of: 0 },
            ]
        );
    }

    #[test]
    fn min_bits_zero_disables_size_floor() {
        let report = sanitize_moduli(&[n(1), n(3)], 0);
        assert!(report.rejected.is_empty());
        assert_eq!(report.accepted_count(), 2);
    }

    #[test]
    fn every_index_lands_exactly_once() {
        let moduli = vec![n(0), n(9), n(9), n(4), n(25), n(1)];
        let report = sanitize_moduli(&moduli, 3);
        let mut indices: Vec<usize> = report
            .accepted_raw_indices()
            .chain(report.rejected.iter().map(|r| r.index))
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..moduli.len()).collect::<Vec<_>>());
        assert_eq!(report.total(), moduli.len());
    }

    #[test]
    fn raw_and_compacted_indices_are_inverse() {
        let moduli = vec![n(0), n(9), n(15), n(4), n(25), n(9)];
        let report = sanitize_moduli(&moduli, 3);
        for row in 0..report.accepted_count() {
            let raw = report.raw_index(row);
            assert_eq!(report.row_of(raw), Some(row));
        }
        for r in &report.rejected {
            assert_eq!(report.row_of(r.index), None);
        }
    }

    #[test]
    fn streaming_matches_borrowed_mode() {
        let moduli = vec![n(0), n(15), n(22), n(7), n(15), n(21), n(15), n(35)];
        let borrowed = sanitize_moduli(&moduli, 4);
        let mut s = StreamingSanitizer::new(4);
        for m in &moduli {
            s.push(m.clone());
        }
        assert_eq!(s.pushed(), moduli.len());
        let (accepted, streamed) = s.finish();
        assert_eq!(streamed, borrowed);
        assert_eq!(accepted, accepted_view(&moduli, &borrowed));
    }

    #[test]
    fn push_reports_the_rejection_reason() {
        let mut s = StreamingSanitizer::new(0);
        assert_eq!(s.push(n(15)), None);
        assert_eq!(s.push(n(0)), Some(RejectReason::Zero));
        assert_eq!(s.push(n(15)), Some(RejectReason::Duplicate { of: 0 }));
        assert_eq!(s.accepted(), &[n(15)]);
    }

    #[test]
    fn quarantine_records_are_bounded_not_full_values() {
        // A rejected record carries fingerprint + bit length, never the
        // modulus; its size is independent of the operand width.
        let wide = Nat::from_hex(&"f".repeat(512)).unwrap();
        let mut s = StreamingSanitizer::new(0);
        s.push(wide.clone());
        s.push(wide.clone());
        let (_, report) = s.finish();
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].fingerprint, fingerprint_modulus(&wide));
        assert_eq!(report.rejected[0].bits, wide.bit_len());
        assert_eq!(
            std::mem::size_of::<Rejected>(),
            std::mem::size_of::<(usize, u64, u64, RejectReason)>()
        );
    }

    #[test]
    fn fingerprint_ignores_trailing_zero_limbs() {
        let a = fingerprint_limbs(&[1, 2, 3]);
        let b = fingerprint_limbs(&[1, 2, 3, 0, 0]);
        assert_eq!(a, b);
        assert_ne!(fingerprint_limbs(&[1, 2]), fingerprint_limbs(&[2, 1]));
    }
}
