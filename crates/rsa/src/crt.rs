//! CRT-form private keys — the standard ~4x decryption speedup, and a
//! vivid demonstration of why a leaked factor is fatal: with `p` and `q`
//! in hand the attacker gets not just a working key but a *fast* one.

use crate::attack::{factor_modulus, AttackError};
use crate::key::{KeyPair, PublicKey};
use bulkgcd_bigint::Nat;

/// An RSA private key in Chinese-Remainder form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrtPrivateKey {
    /// The modulus `n = p·q`.
    pub n: Nat,
    /// Prime factor `p` (the larger of the two, so `qinv` exists mod `p`).
    pub p: Nat,
    /// Prime factor `q`.
    pub q: Nat,
    /// `d mod (p−1)`.
    pub dp: Nat,
    /// `d mod (q−1)`.
    pub dq: Nat,
    /// `q⁻¹ mod p`.
    pub qinv: Nat,
}

impl CrtPrivateKey {
    /// Build from known factors and the public exponent.
    ///
    /// Returns `None` when `e` is not invertible modulo `(p−1)(q−1)`.
    pub fn from_factors(p: &Nat, q: &Nat, e: &Nat) -> Option<CrtPrivateKey> {
        // Order so q < p (qinv needs gcd(q, p) = 1 and is taken mod p).
        let (p, q) = if p >= q { (p, q) } else { (q, p) };
        let one = Nat::one();
        let phi = p.sub(&one).mul(&q.sub(&one));
        let d = e.modinv(&phi)?;
        Some(CrtPrivateKey {
            n: p.mul(q),
            p: p.clone(),
            q: q.clone(),
            dp: d.rem(&p.sub(&one)),
            dq: d.rem(&q.sub(&one)),
            qinv: q.modinv(p)?,
        })
    }

    /// Build from a full keypair.
    // analyze: allow(no-panic, reason = "documented contract: keypair generation guarantees e invertible mod phi and gcd(q, p) = 1")
    pub fn from_keypair(kp: &KeyPair) -> CrtPrivateKey {
        Self::from_factors(&kp.p, &kp.q, &kp.public.e)
            .expect("a valid keypair always admits a CRT form")
    }

    /// Build from a public key plus one leaked factor (the attack path).
    pub fn from_leaked_factor(pk: &PublicKey, factor: &Nat) -> Result<CrtPrivateKey, AttackError> {
        let (p, q) = factor_modulus(&pk.n, factor)?;
        Self::from_factors(&p, &q, &pk.e).ok_or(AttackError::ExponentNotInvertible)
    }

    /// CRT decryption: `m1 = c^dp mod p`, `m2 = c^dq mod q`,
    /// `h = qinv·(m1 − m2) mod p`, `m = m2 + h·q`.
    pub fn decrypt(&self, c: &Nat) -> Nat {
        let m1 = c.modpow(&self.dp, &self.p);
        let m2 = c.modpow(&self.dq, &self.q);
        // m1 - m2 mod p (m2 may exceed m1).
        let diff = if m1 >= m2 {
            m1.sub(&m2)
        } else {
            // m1 + p*ceil((m2-m1)/p) - m2; one p is enough since m2 < q <= p...
            // q may exceed p? No: construction orders q < p, so m2 < q < p.
            m1.add(&self.p).sub(&m2)
        };
        let h = self.qinv.mul(&diff).rem(&self.p);
        m2.add(&h.mul(&self.q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypt::{decrypt, encrypt};
    use crate::keygen::generate_keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn crt_matches_plain_decrypt() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..3 {
            let kp = generate_keypair(&mut rng, 192);
            let crt = CrtPrivateKey::from_keypair(&kp);
            for m in [0u128, 1, 0xdead_beef, 0xffff_ffff_ffff] {
                let m = Nat::from_u128(m);
                let c = encrypt(&kp.public, &m).unwrap();
                assert_eq!(crt.decrypt(&c), decrypt(&kp.private, &c).unwrap());
                assert_eq!(crt.decrypt(&c), m);
            }
        }
    }

    #[test]
    fn crt_from_leaked_factor() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = generate_keypair(&mut rng, 128);
        let crt = CrtPrivateKey::from_leaked_factor(&kp.public, &kp.q).unwrap();
        let m = Nat::from(42_424_242u32);
        let c = encrypt(&kp.public, &m).unwrap();
        assert_eq!(crt.decrypt(&c), m);
    }

    #[test]
    fn factor_order_does_not_matter() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = generate_keypair(&mut rng, 128);
        let a = CrtPrivateKey::from_factors(&kp.p, &kp.q, &kp.public.e).unwrap();
        let b = CrtPrivateKey::from_factors(&kp.q, &kp.p, &kp.public.e).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn leaked_nonfactor_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = generate_keypair(&mut rng, 96);
        assert!(CrtPrivateKey::from_leaked_factor(&kp.public, &Nat::from(12345u32)).is_err());
    }
}
