//! Breaking a key once a factor is known (§I): given `gcd(n1, n2) = p`,
//! both moduli factor as `n = p · (n/p)`, and the private exponent follows
//! from the extended Euclidean algorithm:
//! `d = e⁻¹ mod (p−1)(q−1)`.

use crate::key::{PrivateKey, PublicKey};
use bulkgcd_bigint::Nat;

/// Errors when reconstructing a private key from a leaked factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The claimed factor does not divide the modulus.
    NotAFactor,
    /// The factor is trivial (1 or n itself).
    TrivialFactor,
    /// `e` is not invertible modulo `(p−1)(q−1)` (not a valid RSA key).
    ExponentNotInvertible,
}

impl core::fmt::Display for AttackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AttackError::NotAFactor => write!(f, "value does not divide the modulus"),
            AttackError::TrivialFactor => write!(f, "factor is trivial (1 or n)"),
            AttackError::ExponentNotInvertible => {
                write!(f, "public exponent not invertible mod phi(n)")
            }
        }
    }
}

impl std::error::Error for AttackError {}

/// Split `n` into `(p, q)` given one non-trivial factor `p`.
pub fn factor_modulus(n: &Nat, p: &Nat) -> Result<(Nat, Nat), AttackError> {
    if p.is_zero() || p.is_one() || p == n {
        return Err(AttackError::TrivialFactor);
    }
    let (q, r) = n.div_rem(p);
    if !r.is_zero() {
        return Err(AttackError::NotAFactor);
    }
    Ok((p.clone(), q))
}

/// Recover the full private key of `pk` from one leaked prime factor.
pub fn recover_private_key(pk: &PublicKey, factor: &Nat) -> Result<PrivateKey, AttackError> {
    let (p, q) = factor_modulus(&pk.n, factor)?;
    let phi = p.sub(&Nat::one()).mul(&q.sub(&Nat::one()));
    let d =
        pk.e.modinv(&phi)
            .ok_or(AttackError::ExponentNotInvertible)?;
    Ok(PrivateKey { n: pk.n.clone(), d })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypt::{decrypt, encrypt};
    use crate::keygen::generate_keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovered_key_decrypts() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = generate_keypair(&mut rng, 128);
        let m = Nat::from(987_654_321u32);
        let c = encrypt(&kp.public, &m).unwrap();

        let sk = recover_private_key(&kp.public, &kp.p).unwrap();
        assert_eq!(decrypt(&sk, &c).unwrap(), m);
        // Recovering via q gives the same functional key.
        let sk2 = recover_private_key(&kp.public, &kp.q).unwrap();
        assert_eq!(decrypt(&sk2, &c).unwrap(), m);
        assert_eq!(sk.d, kp.private.d);
    }

    #[test]
    fn factor_modulus_rejects_non_factor() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = generate_keypair(&mut rng, 96);
        let not_factor = Nat::from(12_345_679u32);
        assert_eq!(
            factor_modulus(&kp.public.n, &not_factor),
            Err(AttackError::NotAFactor)
        );
    }

    #[test]
    fn factor_modulus_rejects_trivial() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = generate_keypair(&mut rng, 96);
        assert_eq!(
            factor_modulus(&kp.public.n, &Nat::one()),
            Err(AttackError::TrivialFactor)
        );
        assert_eq!(
            factor_modulus(&kp.public.n, &kp.public.n.clone()),
            Err(AttackError::TrivialFactor)
        );
        assert_eq!(
            factor_modulus(&kp.public.n, &Nat::zero()),
            Err(AttackError::TrivialFactor)
        );
    }

    #[test]
    fn factoring_recovers_both_primes() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = generate_keypair(&mut rng, 128);
        let (p, q) = factor_modulus(&kp.public.n, &kp.p).unwrap();
        assert_eq!(p, kp.p);
        assert_eq!(q, kp.q);
    }
}
