//! Property tests for the RSA layer, using a fixed pool of small primes so
//! each case is cheap while still exercising arbitrary prime combinations
//! and messages.

use bulkgcd_bigint::Nat;
use bulkgcd_rsa::crypt::{decode_message, encode_message};
use bulkgcd_rsa::keygen::keypair_from_primes;
use bulkgcd_rsa::{decrypt, encrypt, recover_private_key, CrtPrivateKey};
use proptest::prelude::*;

/// 16-bit primes p with gcd(p-1, 65537) = 1 (65537 is prime and > p-1,
/// so the condition holds automatically for all of these).
const PRIMES: &[u32] = &[
    65521, 65519, 65497, 65479, 65449, 65447, 65437, 65423, 65419, 65413, 65407, 65393, 65381,
    65371, 65357, 65353,
];

fn prime_pair() -> impl Strategy<Value = (Nat, Nat)> {
    (0..PRIMES.len(), 0..PRIMES.len())
        .prop_filter("distinct primes", |(i, j)| i != j)
        .prop_map(|(i, j)| (Nat::from(PRIMES[i]), Nat::from(PRIMES[j])))
}

proptest! {
    #[test]
    fn encrypt_decrypt_roundtrip((p, q) in prime_pair(), m in any::<u32>()) {
        let e = Nat::from(65_537u32);
        let kp = keypair_from_primes(p, q, e).expect("valid primes");
        let m = Nat::from(m).rem(&kp.public.n);
        let c = encrypt(&kp.public, &m).unwrap();
        prop_assert_eq!(decrypt(&kp.private, &c).unwrap(), m);
    }

    #[test]
    fn recovery_from_either_factor_matches((p, q) in prime_pair()) {
        let e = Nat::from(65_537u32);
        let kp = keypair_from_primes(p.clone(), q.clone(), e).expect("valid primes");
        let via_p = recover_private_key(&kp.public, &p).unwrap();
        let via_q = recover_private_key(&kp.public, &q).unwrap();
        prop_assert_eq!(&via_p.d, &kp.private.d);
        prop_assert_eq!(&via_q.d, &kp.private.d);
    }

    #[test]
    fn crt_decrypt_matches_plain((p, q) in prime_pair(), m in any::<u32>()) {
        let e = Nat::from(65_537u32);
        let kp = keypair_from_primes(p, q, e).expect("valid primes");
        let crt = CrtPrivateKey::from_keypair(&kp);
        let m = Nat::from(m).rem(&kp.public.n);
        let c = encrypt(&kp.public, &m).unwrap();
        prop_assert_eq!(crt.decrypt(&c), decrypt(&kp.private, &c).unwrap());
    }

    #[test]
    fn ed_is_identity_on_all_residues((p, q) in prime_pair(), m in any::<u64>()) {
        // Textbook RSA is a permutation of Z_n: m^(ed) = m for every m,
        // including multiples of p or q.
        let e = Nat::from(65_537u32);
        let kp = keypair_from_primes(p, q, e).expect("valid primes");
        let m = Nat::from_u64(m).rem(&kp.public.n);
        let c = encrypt(&kp.public, &m).unwrap();
        prop_assert_eq!(decrypt(&kp.private, &c).unwrap(), m);
    }

    #[test]
    fn shared_prime_is_the_gcd((p, q1) in prime_pair(), qi in 0..PRIMES.len()) {
        let q2 = Nat::from(PRIMES[qi]);
        prop_assume!(q2 != p && q2 != q1);
        let n1 = p.mul(&q1);
        let n2 = p.mul(&q2);
        prop_assert_eq!(n1.gcd_reference(&n2), p);
    }

    #[test]
    fn message_bytes_roundtrip(bytes in proptest::collection::vec(1u8..=255, 0..24)) {
        // Leading 0x00 bytes cannot survive numeric encoding, so draw
        // non-zero bytes (the quickstart encodes ASCII text anyway).
        let n = encode_message(&bytes);
        prop_assert_eq!(decode_message(&n), bytes);
    }
}
