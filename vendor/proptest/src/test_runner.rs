//! The deterministic RNG and rejection marker used by [`crate::proptest!`].

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Marker for a rejected test case (`prop_assume!` / filter miss).
#[derive(Debug)]
pub struct Rejected;

/// The RNG handed to strategies: deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the name, xored with an optional
    /// `PROPTEST_SEED` environment override).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra;
            }
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
