//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of `proptest` it actually uses: the [`proptest!`] macro, integer /
//! float range strategies, `any::<T>()`, [`strategy::Just`], tuple
//! strategies, [`collection::vec`], `prop_map` / `prop_filter`,
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated inputs via
//!   the ordinary assertion message instead of a minimized counterexample;
//! * **fixed deterministic seeding** — each test function derives its RNG
//!   seed from its own name, so runs are reproducible; set
//!   `PROPTEST_CASES` to change the number of cases (default 64).

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Support for `any::<T>()` (`proptest::arbitrary`).
pub mod arbitrary {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Sample an arbitrary value (edge-case biased).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias towards boundary values, as upstream does.
                    match rng.gen_range(0u32..10) {
                        0 => 0,
                        1 => 1,
                        2 => <$t>::MAX,
                        _ => rng.gen(),
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }
}

/// The common imports (`proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run one property-test function body: the machinery behind [`proptest!`].
///
/// Not part of the public API surface of upstream proptest; used by the
/// macro expansion only.
pub fn run_property_test<F>(name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::Rejected>,
{
    let cases: u32 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut rng = test_runner::TestRng::for_test(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(_) => {
                rejected += 1;
                assert!(
                    rejected < 10_000 * cases.max(1),
                    "proptest {name}: too many rejected cases ({rejected}) — \
                     filter or assume is too strict"
                );
            }
        }
    }
}

/// The `proptest!` macro: each contained `fn name(bindings in strategies)`
/// becomes an ordinary `#[test]` running `PROPTEST_CASES` random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            $crate::run_property_test(stringify!($name), |__rng| {
                $(
                    let $pat = match $crate::strategy::Strategy::generate(&($strat), __rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => {
                            return ::core::result::Result::Err($crate::test_runner::Rejected)
                        }
                    };
                )+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// `prop_assert!`: like `assert!` (panics; no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::core::assert!($($tt)*) };
}

/// `prop_assert_eq!`: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::core::assert_eq!($($tt)*) };
}

/// `prop_assert_ne!`: like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::core::assert_ne!($($tt)*) };
}

/// `prop_assume!`: reject the current case (it does not count towards the
/// case budget) when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// `prop_oneof!`: choose uniformly between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
