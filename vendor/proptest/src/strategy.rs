//! The [`Strategy`] trait and the combinators used by this workspace.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeFrom, RangeInclusive};
use rand::Rng;

/// A generator of random values. `generate` returns `None` when the drawn
/// value was rejected by a filter; the runner retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value (or `None` on filter rejection).
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Reject generated values failing `f` (`whence` labels the filter in
    /// upstream diagnostics; unused here).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        let _ = whence.into();
        Filter { base: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.base.generate(rng).map(&self.f)
    }
}

/// `prop_filter` combinator.
pub struct Filter<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base.generate(rng).filter(|v| (self.f)(v))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// A type-erased strategy (`proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the (non-empty) list of options.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, u128, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy returned by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            // Retry element-level filter rejections locally a few times
            // before rejecting the whole vector.
            let mut tries = 0;
            loop {
                if let Some(v) = self.element.generate(rng) {
                    out.push(v);
                    break;
                }
                tries += 1;
                if tries > 100 {
                    return None;
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::vec;

    fn rng() -> TestRng {
        TestRng::for_test("strategy_unit_tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let a = (3u64..9).generate(&mut r).unwrap();
            assert!((3..9).contains(&a));
            let b = (1usize..=6).generate(&mut r).unwrap();
            assert!((1..=6).contains(&b));
            let c = (1u128..).generate(&mut r).unwrap();
            assert!(c >= 1);
            let f = (0.0f64..1e6).generate(&mut r).unwrap();
            assert!((0.0..1e6).contains(&f));
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut r = rng();
        let s = (0u32..100)
            .prop_map(|x| x * 2)
            .prop_filter("even>50", |&x| x > 50);
        let mut accepted = 0;
        for _ in 0..200 {
            if let Some(v) = s.generate(&mut r) {
                assert!(v > 50 && v % 2 == 0);
                accepted += 1;
            }
        }
        assert!(accepted > 0);
    }

    #[test]
    fn vec_and_tuple_shapes() {
        let mut r = rng();
        let s = vec(
            (any::<u32>(), 0usize..4).prop_map(|(a, b)| a as usize + b),
            2..=5,
        );
        for _ in 0..50 {
            let v = s.generate(&mut r).unwrap();
            assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    fn union_hits_all_options() {
        let mut r = rng();
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r).unwrap() as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
