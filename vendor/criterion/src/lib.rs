//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the Criterion benchmarking API its benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`, `sample_size`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], and [`BatchSize`].
//!
//! Measurement is simple wall-clock sampling: each sample times a batch of
//! iterations sized so a sample takes ≳1 ms, and the mean / standard
//! deviation over samples is printed in a `criterion`-like line. There are
//! no plots, no outlier analysis, and no saved baselines.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream; one per batch here.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations make a ≳1 ms sample?
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let t = start.elapsed();
            if t >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.measured
                .push(start.elapsed().div_f64(iters_per_sample as f64));
        }
    }

    /// Time `routine` over fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.measured.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, measured: &[Duration]) {
    if measured.is_empty() {
        return;
    }
    let secs: Vec<f64> = measured.iter().map(Duration::as_secs_f64).collect();
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let var = if secs.len() > 1 {
        secs.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (secs.len() - 1) as f64
    } else {
        0.0
    };
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "{name:<50} time: [{} ± {}] ({} samples)",
        human(mean),
        human(var.sqrt()),
        secs.len()
    );
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            measured: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.id, &b.measured);
        self
    }

    /// Finish the group (no-op beyond matching upstream's API).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            measured: Vec::new(),
        };
        f(&mut b);
        report("", id, &b.measured);
        self
    }
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from benchmark group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
