//! Offline, API-compatible subset of the `rand` crate (0.8-style surface).
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of `rand` it actually uses: [`RngCore`], the generic [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, and a deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — *not* the
//! ChaCha12 generator of upstream `rand`, so seeded streams differ from
//! upstream. Nothing in this workspace depends on the exact stream, only on
//! determinism per seed, which this provides.

#![warn(missing_docs)]

use core::ops::{Range, RangeFrom, RangeInclusive};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly at random from its full domain
/// (the stand-in for upstream's `Standard` distribution).
pub trait Random: Sized {
    /// Sample one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty => $via:ident),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_random_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                  u64 => next_u64, usize => next_u64,
                  i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly sampleable from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// The largest representable value (upper bound for `a..` ranges).
    const MAX_VALUE: Self;
    /// Uniform sample from `[low, high)` (`high` exclusive).
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]` (`high` inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            const MAX_VALUE: Self = <$t>::MAX;
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain.
                    return u128::random(rng) as $t;
                }
                low.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, u128, usize, i32, i64);

impl SampleUniform for f64 {
    const MAX_VALUE: Self = f64::MAX;
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f64::random(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_exclusive(rng, low, high)
    }
}

/// Rejection-sampled uniform value in `[0, bound)`; `bound > 0`.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return u128::random(rng) & (bound - 1);
    }
    let zone = u128::MAX - (u128::MAX % bound) - 1; // last full multiple - 1
    loop {
        let v = u128::random(rng);
        if v <= zone {
            return v % bound;
        }
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeFrom<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, T::MAX_VALUE)
    }
}

/// Generic convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly from its full domain.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli trial: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for the provided generators).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64-expanded, as upstream).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Stream differs from upstream `rand`'s ChaCha12 `StdRng`; only
    /// per-seed determinism is relied upon.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; perturb it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: u128 = rng.gen_range(1u128..);
            assert!(z >= 1);
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 reached");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_mut_ref() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = sample(&mut rng);
        let r = &mut rng;
        let _: u64 = r.gen_range(0..10);
    }
}
