//! Offline, API-compatible subset of `rayon`.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of `rayon` it actually uses: `par_iter()` / `par_chunks()` over
//! slices, the `enumerate` / `zip` / `map` / `map_init` adaptors, and
//! order-preserving `collect`. Execution is real parallelism — the input is
//! split into one contiguous chunk per available core and mapped on scoped
//! `std::thread`s — but work-stealing, splitting heuristics, and the global
//! pool of upstream rayon are intentionally absent.
//!
//! Semantics relied upon by this workspace and preserved here:
//!
//! * `collect::<Vec<_>>()` preserves input order;
//! * `map_init`'s `init` closure runs once per worker (per contiguous
//!   chunk), not once per item, so per-worker scratch state is genuinely
//!   reused across the items of a chunk.

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads used for parallel operations (the number of
/// available cores, overridable with `RAYON_NUM_THREADS`).
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The public traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator, ParallelSlice};
}

/// Parallel iterator machinery.
pub mod iter {
    use super::current_num_threads;

    /// A materialized parallel iterator: the items to process, in order.
    pub struct ParIter<I> {
        items: Vec<I>,
    }

    /// A lazy order-preserving parallel map.
    pub struct Map<I, F> {
        items: Vec<I>,
        f: F,
    }

    /// A lazy parallel map with once-per-worker state.
    pub struct MapInit<I, INIT, F> {
        items: Vec<I>,
        init: INIT,
        f: F,
    }

    /// Slice entry points (`rayon::iter::ParallelSlice` + `par_iter`).
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over non-overlapping chunks of `size` elements
        /// (the last chunk may be shorter).
        fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
            assert!(size > 0, "par_chunks: chunk size must be positive");
            ParIter {
                items: self.chunks(size).collect(),
            }
        }
    }

    /// `par_iter()` on `&Vec<T>` / `&[T]` (`rayon::iter::IntoParallelRefIterator`).
    pub trait IntoParallelRefIterator<'a> {
        /// The per-item reference type.
        type Item: 'a;
        /// A parallel iterator over borrowed items.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<I> ParIter<I> {
        /// Pair every item with its index, preserving order.
        pub fn enumerate(self) -> ParIter<(usize, I)> {
            ParIter {
                items: self.items.into_iter().enumerate().collect(),
            }
        }

        /// Zip with a sequential iterable (truncates to the shorter side).
        pub fn zip<B: IntoIterator>(self, other: B) -> ParIter<(I, B::Item)> {
            ParIter {
                items: self.items.into_iter().zip(other).collect(),
            }
        }

        /// Order-preserving parallel map.
        pub fn map<R, F: Fn(I) -> R + Sync>(self, f: F) -> Map<I, F> {
            Map {
                items: self.items,
                f,
            }
        }

        /// Order-preserving parallel map with once-per-worker scratch state.
        pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> MapInit<I, INIT, F>
        where
            INIT: Fn() -> S + Sync,
            F: Fn(&mut S, I) -> R + Sync,
        {
            MapInit {
                items: self.items,
                init,
                f,
            }
        }
    }

    /// Execute `f` over `items` on one scoped thread per contiguous chunk,
    /// preserving order. `state` is built once per chunk.
    fn run_chunked<I, S, R>(
        items: Vec<I>,
        init: &(impl Fn() -> S + Sync),
        f: &(impl Fn(&mut S, I) -> R + Sync),
    ) -> Vec<R>
    where
        I: Send,
        R: Send,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            let mut state = init();
            return items.into_iter().map(|it| f(&mut state, it)).collect();
        }
        let chunk_len = n.div_ceil(workers);
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
        let mut items = items.into_iter();
        loop {
            let chunk: Vec<I> = items.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let outputs: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut state = init();
                        chunk
                            .into_iter()
                            .map(|it| f(&mut state, it))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon (vendored): worker panicked"))
                .collect()
        });
        outputs.into_iter().flatten().collect()
    }

    /// Terminal operations shared by the adaptors (`rayon::ParallelIterator`).
    pub trait ParallelIterator {
        /// The produced item type.
        type Output;

        /// Execute in parallel, yielding outputs in input order.
        fn run(self) -> Vec<Self::Output>;

        /// Execute and collect (order-preserving).
        fn collect<C: FromIterator<Self::Output>>(self) -> C
        where
            Self: Sized,
        {
            self.run().into_iter().collect()
        }

        /// Execute, then flatten one level (order-preserving).
        fn flatten(self) -> ParIter<<Self::Output as IntoIterator>::Item>
        where
            Self: Sized,
            Self::Output: IntoIterator,
        {
            ParIter {
                items: self.run().into_iter().flatten().collect(),
            }
        }
    }

    impl<I: Send> ParallelIterator for ParIter<I> {
        type Output = I;
        fn run(self) -> Vec<I> {
            self.items
        }
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        type Output = R;
        fn run(self) -> Vec<R> {
            let f = self.f;
            run_chunked(self.items, &|| (), &|(), it| f(it))
        }
    }

    impl<I, S, R, INIT, F> ParallelIterator for MapInit<I, INIT, F>
    where
        I: Send,
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, I) -> R + Sync,
    {
        type Output = R;
        fn run(self) -> Vec<R> {
            run_chunked(self.items, &self.init, &self.f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_matches_sequential() {
        let v: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn enumerate_and_zip() {
        let v = vec!["a", "b", "c"];
        let w = vec![10, 20, 30];
        let out: Vec<(usize, (&&str, i32))> = v
            .par_iter()
            .zip(w)
            .enumerate()
            .map(|(i, (s, n))| (i, (s, n)))
            .collect();
        assert_eq!(out[2], (2, (&"c", 30)));
    }

    #[test]
    fn map_init_runs_init_once_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let v: Vec<u32> = (0..1000).collect();
        let out: Vec<u32> = v
            .par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    0u32
                },
                |acc, x| {
                    *acc += 1;
                    // State is exercised; output stays the item.
                    if *acc > 0 {
                        *x
                    } else {
                        unreachable!()
                    }
                },
            )
            .collect();
        assert_eq!(out, v);
        let n = inits.load(Ordering::SeqCst);
        assert!(n >= 1 && n <= super::current_num_threads());
    }

    #[test]
    fn flatten_preserves_order() {
        let v: Vec<usize> = (0..8).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| vec![x; x % 3]).flatten().collect();
        let expect: Vec<usize> = (0..8).flat_map(|x| vec![x; x % 3]).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
