//! Corpus-scale attack: scan a synthetic "harvested from the Web" corpus
//! for shared primes, with three independent engines that must agree:
//!
//! 1. the multithreaded CPU all-pairs scan (rayon over §VI blocks),
//! 2. the same scan on the simulated GTX 780 Ti,
//! 3. the product/remainder-tree batch GCD (the pre-existing attack).
//!
//! Run with: `cargo run --release --example break_weak_keys -- [keys] [weak-pairs]`

use bulk_gcd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let total: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let weak_pairs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let bits = 512;

    println!("Building corpus: {total} keys of {bits} bits, {weak_pairs} planted weak pairs ...");
    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    let corpus = build_corpus(&mut rng, total, bits, weak_pairs);
    println!("  generated in {:.2?}\n", t0.elapsed());
    let moduli = corpus.moduli();

    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();

    // --- Engine 1: CPU all-pairs scan with Approximate Euclid ---
    let cpu = ScanPipeline::new(&arena)
        .algorithm(Algorithm::Approximate)
        .run()
        .unwrap()
        .scan;
    println!(
        "CPU scan      : {} pairs in {:.2?} ({:.2} us/GCD), {} findings",
        cpu.pairs_scanned,
        cpu.elapsed,
        cpu.elapsed.as_secs_f64() * 1e6 / cpu.pairs_scanned as f64,
        cpu.findings.len()
    );

    // --- Engine 2: the same scan on the simulated GPU ---
    let gpu = ScanPipeline::new(&arena)
        .algorithm(Algorithm::Approximate)
        .backend(GpuSimBackend {
            device: DeviceConfig::gtx_780_ti(),
            cost: CostModel::default(),
        })
        .launch_pairs(4096)
        .run()
        .unwrap()
        .scan;
    let sim = gpu.simulated().unwrap();
    println!(
        "GPU (sim) scan: {} pairs, simulated {:.4} s ({:.3} us/GCD), {} findings",
        gpu.pairs_scanned,
        sim,
        sim * 1e6 / gpu.pairs_scanned as f64,
        gpu.findings.len()
    );

    // --- Engine 3: batch GCD baseline ---
    let t0 = Instant::now();
    let batch = batch_gcd(&moduli);
    let batch_elapsed = t0.elapsed();
    let batch_hits = batch.iter().filter(|g| !g.is_one()).count();
    println!("Batch GCD     : {batch_hits} vulnerable moduli in {batch_elapsed:.2?}");

    // --- Cross-check all three against the planted ground truth ---
    assert_eq!(cpu.findings, gpu.findings, "CPU and GPU scans must agree");
    assert_eq!(cpu.findings.len(), corpus.shared.len());
    let vulnerable = corpus.vulnerable_indices();
    assert_eq!(batch_hits, vulnerable.len());
    for (f, (i, j, p)) in cpu.findings.iter().zip(&corpus.shared) {
        assert_eq!((f.i, f.j), (*i, *j));
        assert_eq!(&f.factor, p);
    }

    // --- Break every vulnerable key ---
    let publics: Vec<_> = corpus.keys.iter().map(|k| k.public.clone()).collect();
    let report = break_weak_keys(&publics, Algorithm::Approximate).unwrap();
    println!(
        "\nBroken keys   : {:?}",
        report.broken.iter().map(|b| b.index).collect::<Vec<_>>()
    );
    assert_eq!(
        report.broken.iter().map(|b| b.index).collect::<Vec<_>>(),
        vulnerable
    );
    for b in &report.broken {
        let kp = &corpus.keys[b.index];
        let m = Nat::from(0xfeedfaceu32);
        let c = encrypt(&kp.public, &m).unwrap();
        assert_eq!(decrypt(&b.private, &c).unwrap(), m);
    }
    println!("All recovered private keys verified by decryption round-trips.");
}
