//! Walkthrough of the paper's running example (Tables I–III).
//!
//! Traces all five Euclidean variants on X = 1111,1110,1101,1100,1011
//! (1043915) and Y = 1011,1011,1011,1011,1011 (768955) with 4-bit words,
//! printing the same binary-grouped notation the paper uses.
//!
//! Run with: `cargo run --example trace_walkthrough`

use bulk_gcd::core::smallword::{trace, SwTrace};
use bulk_gcd::core::Algorithm;
use bulk_gcd::prelude::*;

const X: u128 = 1_043_915;
const Y: u128 = 768_955;

fn grouped(v: u128) -> String {
    Nat::from_u128(v).to_binary_grouped()
}

fn print_trace(title: &str, t: &SwTrace, show_q: bool, show_case: bool) {
    println!("--- {title}: {} iterations ---", t.iterations());
    for row in &t.rows {
        let mut annot = String::new();
        if show_q {
            if let Some(q) = row.q {
                annot = format!("  Q={q}");
            }
        }
        if show_case {
            if let (Some(a), Some(b), Some(c)) = (row.alpha, row.beta, row.case) {
                annot = format!("  case {}  (alpha,beta)=({a},{b})", c.label());
            }
        }
        println!(
            "{:>3}: X={:<30} Y={:<26}{annot}",
            row.iteration,
            grouped(row.x_after),
            if row.y_after == 0 {
                "0".to_string()
            } else {
                grouped(row.y_after)
            },
        );
    }
    println!("GCD = {} ({})\n", grouped(t.gcd), t.gcd);
}

fn main() {
    println!(
        "Paper running example: X = {} ({X}), Y = {} ({Y}), d = 4\n",
        grouped(X),
        grouped(Y)
    );

    let binary = trace(Algorithm::Binary, X, Y, 4);
    let fast_binary = trace(Algorithm::FastBinary, X, Y, 4);
    let original = trace(Algorithm::Original, X, Y, 4);
    let fast = trace(Algorithm::Fast, X, Y, 4);
    let approximate = trace(Algorithm::Approximate, X, Y, 4);

    print_trace("Table I left: Binary Euclidean", &binary, false, false);
    print_trace(
        "Table I right: Fast Binary Euclidean",
        &fast_binary,
        false,
        false,
    );
    print_trace("Table II left: Original Euclidean", &original, true, false);
    print_trace("Table II right: Fast Euclidean", &fast, true, false);
    print_trace(
        "Table III: Approximate Euclidean",
        &approximate,
        false,
        true,
    );

    println!("Iteration counts (paper: 24 / 16 / 11 / 8 / 9):");
    println!(
        "  Binary {}  FastBinary {}  Original {}  Fast {}  Approximate {}",
        binary.iterations(),
        fast_binary.iterations(),
        original.iterations(),
        fast.iterations(),
        approximate.iterations()
    );
    assert_eq!(
        (
            binary.iterations(),
            fast_binary.iterations(),
            original.iterations(),
            fast.iterations(),
            approximate.iterations()
        ),
        (24, 16, 11, 8, 9)
    );
    assert!(binary.gcd == 5 && approximate.gcd == 5);
}
