//! Quickstart: break a weak RSA key pair with one GCD.
//!
//! Two RSA keys whose generators reused a prime are both factored by a
//! single GCD computation (paper §I), after which the private keys follow
//! from the extended Euclidean algorithm and the intercepted ciphertext
//! falls out.
//!
//! Run with: `cargo run --release --example quickstart`

use bulk_gcd::bigint::prime::random_rsa_prime;
use bulk_gcd::prelude::*;
use bulk_gcd::rsa::crypt::{decode_message, encode_message};
use bulk_gcd::rsa::keygen::keypair_from_primes;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);
    let bits = 512; // modulus size; primes are bits/2

    // A careless generator reuses the prime p across two keypairs.
    println!("Generating two {bits}-bit RSA keys that share a prime ...");
    let e = Nat::from(65_537u32);
    let (alice, bob) = loop {
        let p_shared = random_rsa_prime(&mut rng, bits / 2);
        let qa = random_rsa_prime(&mut rng, bits / 2);
        let qb = random_rsa_prime(&mut rng, bits / 2);
        match (
            keypair_from_primes(p_shared.clone(), qa, e.clone()),
            keypair_from_primes(p_shared, qb, e.clone()),
        ) {
            (Some(a), Some(b)) => break (a, b),
            _ => continue,
        }
    };
    println!("  Alice n = 0x{}", alice.public.n.to_hex());
    println!("  Bob   n = 0x{}", bob.public.n.to_hex());

    // Bob encrypts a message to Alice; Eve intercepts the ciphertext.
    let message = b"the cafeteria coffee is a war crime";
    let m = encode_message(message);
    let c = encrypt(&alice.public, &m).expect("message fits the modulus");
    println!("\nIntercepted ciphertext: 0x{}", c.to_hex());

    // Eve only holds the two PUBLIC keys. One Approximate-Euclid GCD:
    let g = gcd_nat(Algorithm::Approximate, &alice.public.n, &bob.public.n);
    assert!(!g.is_one(), "keys turned out not to share a prime?");
    println!(
        "\ngcd(n_alice, n_bob) = 0x{} ({} bits)",
        g.to_hex(),
        g.bit_len()
    );

    // Factor Alice's modulus and recover her private key.
    let sk = recover_private_key(&alice.public, &g).expect("gcd is a proper factor");
    let recovered = decrypt(&sk, &c).expect("ciphertext is reduced");
    let plaintext = decode_message(&recovered);
    println!(
        "Recovered plaintext: {:?}",
        String::from_utf8_lossy(&plaintext)
    );
    assert_eq!(plaintext, message);
    println!("\nBoth keys are broken; never share primes.");
}
