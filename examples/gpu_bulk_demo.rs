//! GPU architecture demo: why Approximate Euclid wins on a SIMT machine.
//!
//! Runs the three GPU-candidate algorithms — (C) Binary, (D) Fast Binary,
//! (E) Approximate — through the simulated GTX 780 Ti and through the UMM
//! memory model, and prints the mechanics the paper's §VI–§VII argue from:
//! iteration counts, branch divergence, SIMT efficiency, memory traffic,
//! coalescing, and the resulting simulated time.
//!
//! Run with: `cargo run --release --example gpu_bulk_demo -- [pairs] [bits]`

use bulk_gcd::bigint::random::random_odd_bits;
use bulk_gcd::prelude::*;
use bulk_gcd::umm::gcd_trace::bulk_gcd_trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let pairs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let bits: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let mut rng = StdRng::seed_from_u64(11);

    println!(
        "Bulk of {pairs} random {bits}-bit odd pairs, early termination at {} bits\n",
        bits / 2
    );
    let inputs: Vec<(Nat, Nat)> = (0..pairs)
        .map(|_| {
            (
                random_odd_bits(&mut rng, bits),
                random_odd_bits(&mut rng, bits),
            )
        })
        .collect();
    let term = Termination::Early {
        threshold_bits: bits / 2,
    };
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();

    println!("--- Simulated {} ---", device.name);
    println!(
        "{:<28} {:>10} {:>10} {:>9} {:>10} {:>12}",
        "algorithm", "iters", "diverge%", "SIMT%", "MB moved", "us/GCD (sim)"
    );
    for algo in [
        Algorithm::Binary,
        Algorithm::FastBinary,
        Algorithm::Approximate,
    ] {
        let launch = simulate_bulk_gcd_pairs(&device, &cost, algo, &inputs, term);
        println!(
            "{:<28} {:>10} {:>9.1}% {:>8.1}% {:>10.2} {:>12.3}",
            algo.name().replace(" Euclidean algorithm", ""),
            launch.total_iterations,
            launch.report.mean_divergence * 100.0,
            launch.report.mean_simt_efficiency * 100.0,
            launch.report.total_bytes as f64 / 1e6,
            launch.per_gcd_seconds * 1e6
        );
    }

    println!("\n--- UMM memory model (w = 32, l = 64) ---");
    let cfg = UmmConfig::new(32, 64);
    println!(
        "{:<28} {:>12} {:>14} {:>14} {:>10}",
        "algorithm", "steps", "col-wise time", "row-wise time", "uniform%"
    );
    let subset = &inputs[..pairs.min(64)];
    for algo in [
        Algorithm::Binary,
        Algorithm::FastBinary,
        Algorithm::Approximate,
    ] {
        let bulk = bulk_gcd_trace(algo, subset, term);
        let col = simulate(&bulk, Layout::ColumnWise, cfg);
        let row = simulate(&bulk, Layout::RowWise, cfg);
        let obl = analyze(&bulk);
        println!(
            "{:<28} {:>12} {:>14} {:>14} {:>9.1}%",
            algo.name().replace(" Euclidean algorithm", ""),
            bulk.steps(),
            col.time_units,
            row.time_units,
            obl.near_uniform_fraction() * 100.0
        );
    }

    let transfer = device.host_transfer_seconds(pairs as u64 * 2 * (bits / 8));
    println!("\nHost->device transfer of the input moduli: {transfer:.6} s (negligible, cf. paper section VII)");
}
