//! Streaming weak-key monitoring: a certificate-authority-style service
//! that checks every newly submitted RSA key against all keys seen so far
//! using the incremental product-tree index, rejects weak submissions, and
//! demonstrates just how broken a flagged key is by decrypting traffic
//! with a CRT key rebuilt from the shared factor.
//!
//! Run with: `cargo run --release --example incremental_monitoring`

use bulk_gcd::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(31337);
    let bits = 256;
    // A faulty vendor generator that reuses primes 30% of the time, mixed
    // with a healthy one.
    let mut faulty = WeakKeygen::new(bits, 0.30);

    let mut index = CorpusIndex::new();
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    println!("Monitoring 40 key submissions ({bits}-bit moduli, 30% of vendors reuse primes)\n");
    for submission in 0..40 {
        let kp = if rng.gen_bool(0.5) {
            faulty.generate(&mut rng)
        } else {
            generate_keypair(&mut rng, bits)
        };
        let n = kp.public.n.clone();
        let shared = index
            .check_and_insert(&n)
            .expect("generated moduli are never zero");
        if shared.is_one() {
            accepted += 1;
            continue;
        }
        rejected += 1;
        println!(
            "submission {submission:>2}: REJECTED - modulus shares factor {} with an earlier key",
            shared.to_hex()
        );
        if shared == n {
            println!("              (exact duplicate modulus)");
            continue;
        }
        // Show the damage: rebuild a CRT private key from the leak and
        // decrypt a message encrypted to the submitted public key.
        let crt = CrtPrivateKey::from_leaked_factor(&kp.public, &shared)
            .expect("shared factor splits the modulus");
        let secret = Nat::from(0x5ec2e7u32 + submission as u32);
        let c = encrypt(&kp.public, &secret).unwrap();
        let recovered = crt.decrypt(&c);
        assert_eq!(recovered, secret);
        println!(
            "              proof: intercepted ciphertext decrypts to {} via CRT key",
            recovered
        );
    }
    println!("\n{accepted} accepted, {rejected} rejected out of 40 submissions");
    println!("index now holds {} moduli", index.len());
    assert!(rejected > 0, "with 30% reuse some submission must collide");
}
