//! Iteration-count study: a scaled-down Table IV.
//!
//! Measures the mean do-while iteration count of all five Euclidean
//! variants over random RSA moduli pairs, in both non-terminate and
//! early-terminate modes, plus the β-statistics of §V.
//!
//! Run with: `cargo run --release --example iteration_study -- [pairs] [bits...]`

use bulk_gcd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mean_iterations(algo: Algorithm, pairs: &[(Nat, Nat)], term: Termination) -> (f64, u64, u64) {
    let mut total = 0u64;
    let mut beta_nonzero = 0u64;
    let mut workspace = GcdPair::with_capacity(1);
    for (a, b) in pairs {
        workspace.load(a, b);
        let mut probe = StatsProbe::default();
        run(algo, &mut workspace, term, &mut probe);
        total += probe.stats.iterations;
        beta_nonzero += probe.stats.beta_nonzero;
    }
    (total as f64 / pairs.len() as f64, total, beta_nonzero)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_pairs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let sizes: Vec<u64> = {
        let rest: Vec<u64> = args.filter_map(|s| s.parse().ok()).collect();
        if rest.is_empty() {
            vec![256, 512]
        } else {
            rest
        }
    };

    for bits in sizes {
        println!("=== {bits}-bit RSA moduli, {n_pairs} random pairs ===");
        let mut rng = StdRng::seed_from_u64(bits);
        let pairs: Vec<(Nat, Nat)> = (0..n_pairs)
            .map(|_| {
                (
                    generate_keypair(&mut rng, bits).public.n,
                    generate_keypair(&mut rng, bits).public.n,
                )
            })
            .collect();
        println!(
            "{:<36} {:>14} {:>16}",
            "algorithm", "non-terminate", "early-terminate"
        );
        let mut e_mean = (0.0, 0.0);
        let mut b_mean = (0.0, 0.0);
        for algo in Algorithm::ALL {
            let (full, _, beta_full) = mean_iterations(algo, &pairs, Termination::Full);
            let (early, total_early, beta_early) = mean_iterations(
                algo,
                &pairs,
                Termination::Early {
                    threshold_bits: bits / 2,
                },
            );
            println!(
                "{} {:<32} {:>14.1} {:>16.1}",
                algo.tag(),
                algo.name(),
                full,
                early
            );
            if algo == Algorithm::Approximate {
                e_mean = (full, early);
                let rate = beta_early as f64 / total_early.max(1) as f64;
                println!(
                    "    beta>0 in {beta_early} of {total_early} early-mode iterations (rate {rate:.2e}); full mode: {beta_full}"
                );
            }
            if algo == Algorithm::Fast {
                b_mean = (full, early);
            }
        }
        println!(
            "    (E)-(B) mean iteration gap: non-terminate {:+.4}, early {:+.4}\n",
            e_mean.0 - b_mean.0,
            e_mean.1 - b_mean.1
        );
    }
    println!("Compare with paper Table IV: (E) matches (B) to ~0.01 iterations,");
    println!("(E) needs ~half the iterations of (D) and ~a quarter of (C), and");
    println!("early termination halves every count.");
}
