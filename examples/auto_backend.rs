//! Backend selection: fixed engines vs the auto-tuning selector.
//!
//! The same corpus scanned four ways — scalar arena loop, plain lockstep
//! warps, queue-mode compacted lockstep, and `Backend::Auto`, which
//! probes the corpus (size, operand width, a shallow divergence pilot)
//! and picks the fastest strategy itself. Findings are identical in
//! every case; the metrics layer reports which backend auto chose.
//!
//! Run with: `cargo run --release --example auto_backend`

use bulk_gcd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);
    let corpus = build_corpus(&mut rng, 48, 1024, 2);
    let moduli = corpus.moduli();
    let arena = ModuliArena::try_from_moduli(&moduli).expect("corpus is non-degenerate");

    let scalar = ScanPipeline::new(&arena).run().expect("scalar scan").scan;

    let lockstep = ScanPipeline::new(&arena)
        .backend(LockstepBackend::new(32))
        .run()
        .expect("lockstep scan")
        .scan;

    // Queue-mode compaction keeps warps dense: terminated lanes are
    // harvested, survivors repacked into a column prefix, and dead slots
    // refilled with pending pairs from the launch queue.
    let compacted = ScanPipeline::new(&arena)
        .backend(LockstepBackend::new(32).with_compaction(CompactionConfig::default()))
        .run()
        .expect("compacted scan")
        .scan;

    // `Backend::Auto` is the one-stop enum form; constructing an
    // `AutoBackend` directly caches the per-corpus resolution and lets
    // the metrics layer report it as "auto:<choice>".
    let enum_auto = ScanPipeline::new(&arena)
        .backend(Backend::Auto)
        .run()
        .expect("auto scan")
        .scan;
    let auto = ScanPipeline::new(&arena)
        .backend(AutoBackend::new(32))
        .metrics()
        .run()
        .expect("auto scan");

    assert_eq!(lockstep.findings, scalar.findings);
    assert_eq!(compacted.findings, scalar.findings);
    assert_eq!(enum_auto.findings, scalar.findings);
    assert_eq!(auto.scan.findings, scalar.findings);

    let metrics = auto.metrics.expect("metrics layer collects");
    println!(
        "{} moduli, {} weak pairs found by every backend",
        moduli.len(),
        scalar.findings.len()
    );
    println!("auto picked: {}", metrics.backend);
    if let Some(occ) = metrics.mean_occupancy() {
        println!(
            "occupancy {:.3}, {} compactions, {} refills",
            occ,
            metrics.total_compactions(),
            metrics.total_refills()
        );
    }
}
