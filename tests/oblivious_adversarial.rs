//! Adversarial-trace coverage for `umm::oblivious::analyze` (tier-1).
//!
//! The obliviousness analyzer is the referee for both the lockstep
//! engine's differential-trace suite and the paper's §VI semi-oblivious
//! claim, so its metrics are pinned here on hand-built traces whose
//! correct scores are known by construction — including the adversarial
//! shapes a buggy analyzer gets wrong: ragged thread lengths, steps that
//! are all idle, a single divergent lane hiding among uniform ones, and
//! the worst case of every lane touching a distinct address.

use bulkgcd_umm::oblivious::analyze;
use bulkgcd_umm::trace::BulkTrace;

/// `p` lanes each performing the same `steps`-long read sweep.
fn uniform_bulk(p: usize, steps: usize) -> BulkTrace {
    let mut b = BulkTrace::with_threads(p);
    for th in &mut b.threads {
        for k in 0..steps {
            th.read(k);
        }
    }
    b
}

#[test]
fn fully_oblivious_bulk_scores_one() {
    let r = analyze(&uniform_bulk(32, 40));
    assert_eq!(r.steps, 40);
    assert_eq!(r.active_steps, 40);
    assert_eq!(r.uniform_steps, 40);
    assert_eq!(r.near_uniform_steps, 40);
    assert_eq!(r.uniform_fraction(), 1.0);
    assert_eq!(r.near_uniform_fraction(), 1.0);
}

#[test]
fn single_divergent_lane_costs_exactly_its_steps() {
    // Lane 7 wanders off for 5 of 40 steps; with two distinct offsets per
    // divergent step the bulk stays near-uniform but not uniform.
    let mut b = uniform_bulk(16, 40);
    for (i, slot) in b.threads[7].accesses[10..15].iter_mut().enumerate() {
        *slot = Some(bulkgcd_umm::trace::Access::Read(100 + i));
    }
    let r = analyze(&b);
    assert_eq!(r.active_steps, 40);
    assert_eq!(r.uniform_steps, 35);
    assert_eq!(r.near_uniform_steps, 40);
    assert_eq!(r.uniform_fraction(), 35.0 / 40.0);
    assert_eq!(r.near_uniform_fraction(), 1.0);
}

#[test]
fn worst_case_every_lane_distinct() {
    // The fully input-dependent disaster: p lanes, p distinct addresses
    // at every step. Nothing is uniform or near-uniform (p > 2).
    let p = 8;
    let mut b = BulkTrace::with_threads(p);
    for (t, th) in b.threads.iter_mut().enumerate() {
        for k in 0..20 {
            th.read(t * 1000 + k);
        }
    }
    let r = analyze(&b);
    assert_eq!(r.active_steps, 20);
    assert_eq!(r.uniform_steps, 0);
    assert_eq!(r.near_uniform_steps, 0);
    assert_eq!(r.uniform_fraction(), 0.0);
    assert_eq!(r.near_uniform_fraction(), 0.0);
}

#[test]
fn ragged_thread_lengths_do_not_inflate_uniformity() {
    // Lane 0 runs 10 steps, lane 1 only 4: the tail steps have a single
    // active lane and count as uniform (a lone access is trivially
    // coalesced), not as divergence.
    let mut b = BulkTrace::with_threads(2);
    for k in 0..10 {
        b.threads[0].read(k);
    }
    for k in 0..4 {
        b.threads[1].read(k);
    }
    let r = analyze(&b);
    assert_eq!(r.steps, 10);
    assert_eq!(r.active_steps, 10);
    assert_eq!(r.uniform_steps, 10);
}

#[test]
fn all_idle_steps_are_not_active() {
    // A warp-wide stall: idle slots in every lane must not count as
    // active steps (and must not divide by zero).
    let mut b = BulkTrace::with_threads(4);
    for th in &mut b.threads {
        th.read(0);
        th.idle();
        th.idle();
        th.read(1);
    }
    let r = analyze(&b);
    assert_eq!(r.steps, 4);
    assert_eq!(r.active_steps, 2);
    assert_eq!(r.uniform_steps, 2);
    assert_eq!(r.uniform_fraction(), 1.0);
}

#[test]
fn reads_and_writes_to_one_offset_are_uniform() {
    // Direction does not matter for coalescing, only the address: a step
    // mixing Read(k) and Write(k) is still one transaction's worth.
    let mut b = BulkTrace::with_threads(4);
    for (t, th) in b.threads.iter_mut().enumerate() {
        if t % 2 == 0 {
            th.read(5);
        } else {
            th.write(5);
        }
    }
    let r = analyze(&b);
    assert_eq!(r.uniform_steps, 1);
    assert_eq!(r.uniform_fraction(), 1.0);
}

#[test]
fn two_plane_split_is_near_uniform_not_uniform() {
    // The lockstep selector flip: half the warp reads plane A, half plane
    // B. Two distinct offsets = two transactions = near-uniform only.
    let mut b = BulkTrace::with_threads(8);
    for (t, th) in b.threads.iter_mut().enumerate() {
        for k in 0..6 {
            th.read(if t < 4 { k } else { 64 + k });
        }
    }
    let r = analyze(&b);
    assert_eq!(r.uniform_steps, 0);
    assert_eq!(r.near_uniform_steps, 6);
    assert_eq!(r.near_uniform_fraction(), 1.0);
}

#[test]
fn empty_and_degenerate_bulks() {
    let r = analyze(&BulkTrace::with_threads(0));
    assert_eq!(r.steps, 0);
    assert_eq!(r.uniform_fraction(), 1.0);
    assert_eq!(r.near_uniform_fraction(), 1.0);

    let r = analyze(&BulkTrace::with_threads(5));
    assert_eq!(r.active_steps, 0);
    assert_eq!(r.uniform_fraction(), 1.0);
}
