//! Cross-crate integration: the full weak-key attack pipeline, with the
//! CPU scan, the simulated-GPU scan and the batch-GCD baseline all agreeing
//! with the planted ground truth, and every recovered key proven by a
//! decryption round-trip.

use bulk_gcd::prelude::*;
use bulk_gcd::rsa::crypt::{decode_message, encode_message};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn corpus_attack_three_engines_agree() {
    let mut rng = StdRng::seed_from_u64(100);
    let corpus = build_corpus(&mut rng, 24, 128, 4);
    let moduli = corpus.moduli();

    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let cpu = ScanPipeline::new(&arena).run().unwrap().scan;
    let gpu = ScanPipeline::new(&arena)
        .backend(GpuSimBackend {
            device: DeviceConfig::gtx_780_ti(),
            cost: CostModel::default(),
        })
        .launch_pairs(64)
        .run()
        .unwrap()
        .scan;
    let batch = batch_gcd(&moduli);

    // Engines agree with each other.
    assert_eq!(cpu.findings, gpu.findings);
    // ... and with the ground truth.
    assert_eq!(cpu.findings.len(), corpus.shared.len());
    for (f, (i, j, p)) in cpu.findings.iter().zip(&corpus.shared) {
        assert_eq!((f.i, f.j), (*i, *j));
        assert_eq!(&f.factor, p);
    }
    // Batch GCD flags exactly the vulnerable indices.
    let batch_vulnerable: Vec<usize> = batch
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.is_one())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(batch_vulnerable, corpus.vulnerable_indices());
    // The GPU scan had a positive simulated cost.
    assert!(gpu.simulated().unwrap() > 0.0);
}

#[test]
fn recovered_keys_decrypt_intercepted_traffic() {
    let mut rng = StdRng::seed_from_u64(101);
    let corpus = build_corpus(&mut rng, 12, 128, 2);
    let publics: Vec<PublicKey> = corpus.keys.iter().map(|k| k.public.clone()).collect();

    // Intercept one ciphertext per key before the attack.
    let secret = b"pq shared";
    let m = encode_message(secret);
    let ciphertexts: Vec<_> = publics.iter().map(|pk| encrypt(pk, &m).unwrap()).collect();

    let report = break_weak_keys(&publics, Algorithm::Approximate).unwrap();
    assert_eq!(
        report.broken.iter().map(|b| b.index).collect::<Vec<_>>(),
        corpus.vulnerable_indices()
    );
    for b in &report.broken {
        let back = decrypt(&b.private, &ciphertexts[b.index]).unwrap();
        assert_eq!(decode_message(&back), secret);
    }
}

#[test]
fn every_algorithm_drives_the_pipeline() {
    let mut rng = StdRng::seed_from_u64(102);
    let corpus = build_corpus(&mut rng, 8, 128, 1);
    let publics: Vec<PublicKey> = corpus.keys.iter().map(|k| k.public.clone()).collect();
    for algo in Algorithm::ALL {
        let report = break_weak_keys(&publics, algo).unwrap();
        assert_eq!(report.broken.len(), 2, "{}", algo.name());
    }
}

#[test]
fn weak_keygen_corpus_is_breakable_at_observed_rate() {
    // Keys from the faulty generator (20% prime reuse) must yield shared
    // pairs that the scan finds; a clean generator must yield none.
    let mut rng = StdRng::seed_from_u64(103);
    let mut weak = WeakKeygen::new(128, 0.35);
    let keys: Vec<KeyPair> = (0..16).map(|_| weak.generate(&mut rng)).collect();
    let moduli: Vec<Nat> = keys.iter().map(|k| k.public.n.clone()).collect();
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let rep = ScanPipeline::new(&arena).run().unwrap().scan;
    assert!(
        !rep.findings.is_empty(),
        "35% reuse over 16 keys should produce at least one shared pair"
    );
    // Every finding is consistent with the true factorisations.
    for f in &rep.findings {
        let k = &keys[f.i];
        assert!(
            f.factor == k.p || f.factor == k.q || f.factor == k.public.n,
            "factor must be a prime of key {} or the whole modulus",
            f.i
        );
    }
}

#[test]
fn umm_and_gpu_models_agree_on_algorithm_ordering() {
    use bulk_gcd::umm::gcd_trace::bulk_gcd_trace;
    let mut rng = StdRng::seed_from_u64(104);
    let inputs: Vec<(Nat, Nat)> = (0..32)
        .map(|_| {
            (
                bulk_gcd::bigint::random::random_odd_bits(&mut rng, 256),
                bulk_gcd::bigint::random::random_odd_bits(&mut rng, 256),
            )
        })
        .collect();
    let term = Termination::Early {
        threshold_bits: 128,
    };
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let cfg = UmmConfig::new(32, 64);

    let mut gpu_times = Vec::new();
    let mut umm_times = Vec::new();
    for algo in [
        Algorithm::Binary,
        Algorithm::FastBinary,
        Algorithm::Approximate,
    ] {
        gpu_times.push(
            simulate_bulk_gcd_pairs(&device, &cost, algo, &inputs, term)
                .report
                .seconds,
        );
        let bulk = bulk_gcd_trace(algo, &inputs, term);
        umm_times.push(simulate(&bulk, Layout::ColumnWise, cfg).time_units);
    }
    // Both models: Approximate < FastBinary < Binary.
    assert!(gpu_times[2] < gpu_times[1] && gpu_times[1] < gpu_times[0]);
    assert!(umm_times[2] < umm_times[1] && umm_times[1] < umm_times[0]);
}
