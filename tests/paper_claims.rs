//! The paper's quantitative claims, asserted as tests.
//!
//! Tables I–III are checked exactly; the statistical claims (Table IV
//! ratios, §V β-rarity, §VI semi-obliviousness, the Table V algorithm
//! ordering) are checked as bands at reduced sizes so the suite stays fast
//! in debug builds. The bench binaries in `bulkgcd-bench` regenerate the
//! full-size tables.

use bulk_gcd::core::smallword;
use bulk_gcd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PAPER_X: u128 = 1_043_915;
const PAPER_Y: u128 = 768_955;

#[test]
fn tables_1_to_3_iteration_counts_exact() {
    let counts: Vec<u32> = Algorithm::ALL
        .iter()
        .map(|&a| smallword::trace(a, PAPER_X, PAPER_Y, 4).iterations())
        .collect();
    // (A) Original, (B) Fast, (C) Binary, (D) Fast Binary, (E) Approximate.
    assert_eq!(counts, vec![11, 8, 24, 16, 9]);
}

#[test]
fn table_3_final_gcd_and_notation() {
    let t = smallword::trace(Algorithm::Approximate, PAPER_X, PAPER_Y, 4);
    assert_eq!(t.gcd, 5);
    assert_eq!(Nat::from_u128(t.gcd).to_binary_grouped(), "0101");
    assert_eq!(
        Nat::from_u128(PAPER_X).to_binary_grouped(),
        "1111,1110,1101,1100,1011"
    );
}

/// Table IV's structural claims at 256 bits (iteration counts scale
/// linearly with s, so the ratios carry):
/// 1. early-terminate halves the counts,
/// 2. (E) ~ half of (D) and ~ a quarter of (C),
/// 3. (E) matches (B) almost exactly.
#[test]
fn table_4_ratio_structure() {
    let bits = 256u64;
    let mut rng = StdRng::seed_from_u64(4);
    let pairs: Vec<(Nat, Nat)> = (0..20)
        .map(|_| {
            (
                generate_keypair(&mut rng, bits).public.n,
                generate_keypair(&mut rng, bits).public.n,
            )
        })
        .collect();
    let mean = |algo: Algorithm, term: Termination| -> f64 {
        let mut ws = GcdPair::with_capacity(1);
        let mut total = 0u64;
        for (a, b) in &pairs {
            ws.load(a, b);
            let mut probe = StatsProbe::default();
            run(algo, &mut ws, term, &mut probe);
            total += probe.stats.iterations;
        }
        total as f64 / pairs.len() as f64
    };
    let early = Termination::Early {
        threshold_bits: bits / 2,
    };

    let e_full = mean(Algorithm::Approximate, Termination::Full);
    let e_early = mean(Algorithm::Approximate, early);
    let d_early = mean(Algorithm::FastBinary, early);
    let c_early = mean(Algorithm::Binary, early);
    let b_early = mean(Algorithm::Fast, early);

    // Claim 1: early termination halves (paper: 190.5 -> 95.2 etc.).
    let halving = e_full / e_early;
    assert!((1.8..2.2).contains(&halving), "halving ratio {halving}");
    // Claim 2: (D)/(E) ~ 1.9, (C)/(E) ~ 3.8 (paper's "half"/"quarter").
    let de = d_early / e_early;
    let ce = c_early / e_early;
    assert!((1.6..2.2).contains(&de), "D/E ratio {de}");
    assert!((3.2..4.4).contains(&ce), "C/E ratio {ce}");
    // Claim 3: (E) and (B) differ by well under 1%.
    let gap = (e_early - b_early).abs() / b_early;
    assert!(gap < 0.01, "(E)-(B) relative gap {gap}");
}

/// §V: β > 0 happens with probability < 1e-8 at d = 32 in the paper's
/// 4096-bit experiment; at test scale we assert it simply never fires in
/// tens of thousands of iterations.
#[test]
fn beta_positive_never_fires_at_test_scale() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut ws = GcdPair::with_capacity(1);
    let mut iters = 0u64;
    let mut beta = 0u64;
    for _ in 0..100 {
        let a = bulk_gcd::bigint::random::random_odd_bits(&mut rng, 384);
        let b = bulk_gcd::bigint::random::random_odd_bits(&mut rng, 384);
        ws.load(&a, &b);
        let mut probe = StatsProbe::default();
        run(
            Algorithm::Approximate,
            &mut ws,
            Termination::Full,
            &mut probe,
        );
        iters += probe.stats.iterations;
        beta += probe.stats.beta_nonzero;
    }
    // (E) runs ~0.37·s iterations per s-bit pair: ~14k total here.
    assert!(iters > 10_000);
    assert_eq!(beta, 0, "beta>0 fired {beta} times in {iters} iterations");
}

/// Table V's structural claim on the simulated GPU: per-GCD time ordering
/// (E) < (D) < (C), and Binary's penalty comes with measured divergence.
#[test]
fn table_5_gpu_ordering_and_divergence() {
    let mut rng = StdRng::seed_from_u64(6);
    let inputs: Vec<(Nat, Nat)> = (0..32)
        .map(|_| {
            (
                generate_keypair(&mut rng, 192).public.n,
                generate_keypair(&mut rng, 192).public.n,
            )
        })
        .collect();
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let term = Termination::Early { threshold_bits: 96 };
    let e = simulate_bulk_gcd_pairs(&device, &cost, Algorithm::Approximate, &inputs, term);
    let d = simulate_bulk_gcd_pairs(&device, &cost, Algorithm::FastBinary, &inputs, term);
    let c = simulate_bulk_gcd_pairs(&device, &cost, Algorithm::Binary, &inputs, term);
    assert!(e.per_gcd_seconds < d.per_gcd_seconds);
    assert!(d.per_gcd_seconds < c.per_gcd_seconds);
    assert!(
        c.report.mean_divergence > 0.5,
        "Binary should diverge heavily"
    );
    assert!(
        e.report.mean_divergence < 0.05,
        "Approximate should not diverge"
    );
}

/// Theorem 1: a fully oblivious column-wise bulk meets its exact bound.
#[test]
fn theorem_1_bound_met_exactly_for_oblivious_bulk() {
    use bulk_gcd::umm::{BulkTrace, UmmReport};
    for (p, w, l, steps) in [(64, 32, 16, 20), (256, 32, 64, 5), (32, 8, 4, 50)] {
        let mut bulk = BulkTrace::with_threads(p);
        for th in &mut bulk.threads {
            for i in 0..steps {
                th.read(i);
            }
        }
        let cfg = UmmConfig::new(w, l);
        let r = simulate(&bulk, Layout::ColumnWise, cfg);
        assert_eq!(
            r.time_units,
            UmmReport::theorem1_bound(p, steps as u64, cfg),
            "p={p} w={w} l={l}"
        );
        assert_eq!(r.coalesced_fraction(), 1.0);
    }
}

/// §VI: the Approximate Euclid bulk is semi-oblivious — the overwhelming
/// majority of aligned steps touch at most two logical offsets (one per
/// swap buffer), and column-wise layout stays close to fully coalesced.
#[test]
fn semi_obliviousness_of_approximate_euclid() {
    use bulk_gcd::umm::gcd_trace::bulk_gcd_trace;
    let mut rng = StdRng::seed_from_u64(7);
    let inputs: Vec<(Nat, Nat)> = (0..32)
        .map(|_| {
            (
                bulk_gcd::bigint::random::random_odd_bits(&mut rng, 256),
                bulk_gcd::bigint::random::random_odd_bits(&mut rng, 256),
            )
        })
        .collect();
    let bulk = bulk_gcd_trace(Algorithm::Approximate, &inputs, Termination::Full);
    let r = analyze(&bulk);
    assert!(
        r.near_uniform_fraction() > 0.85,
        "near-uniform fraction {}",
        r.near_uniform_fraction()
    );
}
