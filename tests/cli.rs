//! Integration tests for the `bulkgcd` command-line tool, driving the real
//! binary end to end through temp files.

use std::process::Command;

fn bulkgcd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bulkgcd"))
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bulkgcd-cli-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = bulkgcd().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("scan"));
}

#[test]
fn unknown_command_fails() {
    let out = bulkgcd().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn gcd_command_matches_reference() {
    // gcd(1043915, 768955) = 5: fedcb / bbbbb in hex... use hex inputs.
    let out = bulkgcd()
        .args(["gcd", "0xfedcb", "0xbbbbb"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "5");
}

#[test]
fn gcd_with_lehmer_and_stats() {
    let out = bulkgcd()
        .args(["gcd", "0xfedcb", "0xbbbbb", "--algo", "lehmer"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "5");

    let out = bulkgcd()
        .args(["gcd", "0xfedcb", "0xbbbbb", "--algo", "E", "--stats"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("iterations:"));
}

#[test]
fn gen_scan_check_pipeline() {
    let dir = tempdir();
    let corpus = dir.join("corpus.txt");
    let truth = dir.join("truth.txt");

    // Generate a small weak corpus.
    let out = bulkgcd()
        .args([
            "gen",
            "--keys",
            "12",
            "--bits",
            "128",
            "--weak-pairs",
            "2",
            "--seed",
            "7",
            "--out",
            corpus.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Scan it on every engine; findings must match the ground truth.
    let truth_text = std::fs::read_to_string(&truth).unwrap();
    let expected: Vec<(String, String, String)> = truth_text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            (
                it.next().unwrap().to_string(),
                it.next().unwrap().to_string(),
                it.next().unwrap().to_string(),
            )
        })
        .collect();
    assert_eq!(expected.len(), 2);

    for engine in ["cpu", "gpu", "blocks", "batch"] {
        let out = bulkgcd()
            .args(["scan", corpus.to_str().unwrap(), "--engine", engine])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "engine {engine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let findings: Vec<(String, String, String)> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| {
                let mut it = l.split_whitespace();
                (
                    it.next().unwrap().to_string(),
                    it.next().unwrap().to_string(),
                    it.next().unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(findings, expected, "engine {engine}");
    }

    // Incremental check: a fresh modulus sharing a prime with the corpus.
    let factor_hex = &expected[0].2;
    // Build a new modulus = shared prime * some odd cofactor (not prime,
    // but the index only computes a GCD, so any cofactor works).
    let p = bulk_gcd::prelude::Nat::from_hex(factor_hex).unwrap();
    let weak_n = p.mul(&bulk_gcd::prelude::Nat::from(0xffff_fffbu32));
    let out = bulkgcd()
        .args(["check", corpus.to_str().unwrap(), &weak_n.to_hex()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("WEAK"));

    // And a clean one.
    let out = bulkgcd()
        .args(["check", corpus.to_str().unwrap(), "0xffffffffffffffc5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn break_recovers_working_private_exponents() {
    use bulk_gcd::prelude::*;
    let dir = tempdir();
    let corpus = dir.join("corpus.txt");
    let out = bulkgcd()
        .args([
            "gen",
            "--keys",
            "8",
            "--bits",
            "128",
            "--weak-pairs",
            "1",
            "--seed",
            "11",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bulkgcd()
        .args(["break", corpus.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let broken: Vec<(usize, Nat, Nat)> = stdout
        .lines()
        .map(|l| {
            let mut it = l.split_whitespace();
            (
                it.next().unwrap().parse().unwrap(),
                Nat::from_hex(it.next().unwrap()).unwrap(),
                Nat::from_hex(it.next().unwrap()).unwrap(),
            )
        })
        .collect();
    assert_eq!(broken.len(), 2, "one weak pair breaks two keys");

    // Verify each recovered d against the corpus moduli: e*d = 1 mod phi,
    // equivalently (m^e)^d = m for a test message.
    let moduli: Vec<Nat> = std::fs::read_to_string(&corpus)
        .unwrap()
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| Nat::from_hex(l.trim()).unwrap())
        .collect();
    for (idx, factor, d) in &broken {
        let n = &moduli[*idx];
        assert!(n.rem(factor).is_zero(), "factor divides modulus");
        let m = Nat::from(0xabcdu32);
        let c = m.modpow(&Nat::from(65_537u32), n);
        assert_eq!(c.modpow(d, n), m, "recovered d decrypts for key {idx}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_then_arena_scan_matches_plain_scan() {
    let dir = tempdir();
    let corpus = dir.join("corpus.txt");
    let arena = dir.join("corpus.arena");

    let out = bulkgcd()
        .args([
            "gen",
            "--keys",
            "10",
            "--bits",
            "128",
            "--weak-pairs",
            "2",
            "--seed",
            "13",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Quarantine bait at the top of the file shifts every raw index by 3,
    // so the arena's acceptance index has real work to do.
    let generated = std::fs::read_to_string(&corpus).unwrap();
    std::fs::write(
        &corpus,
        format!("# hostile prefix\n0\n10\nffffffff\n{generated}"),
    )
    .unwrap();

    // Baseline: plain text scan (raw indices on stdout).
    let plain = bulkgcd()
        .args(["scan", corpus.to_str().unwrap(), "--min-bits", "64"])
        .output()
        .unwrap();
    assert!(
        plain.status.success(),
        "{}",
        String::from_utf8_lossy(&plain.stderr)
    );
    let plain_stdout = String::from_utf8_lossy(&plain.stdout).to_string();
    assert!(!plain_stdout.trim().is_empty(), "weak pairs must be found");

    // Compile the arena.
    let out = bulkgcd()
        .args([
            "ingest",
            corpus.to_str().unwrap(),
            "--out",
            arena.to_str().unwrap(),
            "--min-bits",
            "64",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("quarantined"));

    // Arena scan, whole-corpus path.
    let whole = bulkgcd()
        .args(["scan", arena.to_str().unwrap(), "--arena"])
        .output()
        .unwrap();
    assert!(
        whole.status.success(),
        "{}",
        String::from_utf8_lossy(&whole.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&whole.stdout), plain_stdout);

    // Arena scan under a chunk budget far smaller than the corpus: the
    // streamed windows must reproduce the findings byte for byte.
    let chunked = bulkgcd()
        .args([
            "scan",
            arena.to_str().unwrap(),
            "--arena",
            "--chunk-limbs",
            "8",
        ])
        .output()
        .unwrap();
    assert!(
        chunked.status.success(),
        "{}",
        String::from_utf8_lossy(&chunked.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&chunked.stdout), plain_stdout);

    // Sharded arena scan goes through the same acceptance index.
    let sharded = bulkgcd()
        .args(["scan", arena.to_str().unwrap(), "--arena", "--shards", "3"])
        .output()
        .unwrap();
    assert!(
        sharded.status.success(),
        "{}",
        String::from_utf8_lossy(&sharded.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&sharded.stdout), plain_stdout);

    // A truncated arena is refused, not mis-scanned.
    let bytes = std::fs::read(&arena).unwrap();
    std::fs::write(&arena, &bytes[..bytes.len() - 7]).unwrap();
    let out = bulkgcd()
        .args(["scan", arena.to_str().unwrap(), "--arena"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("truncated"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_requires_an_output_path() {
    let dir = tempdir();
    let corpus = dir.join("corpus.txt");
    std::fs::write(&corpus, "ffffffffffffffc5\n").unwrap();
    let out = bulkgcd()
        .args(["ingest", corpus.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scan_missing_file_errors() {
    let out = bulkgcd()
        .args(["scan", "/nonexistent/corpus.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn corpus_parse_error_reports_line() {
    let dir = tempdir();
    let corpus = dir.join("bad.txt");
    std::fs::write(&corpus, "abc123\nnot-hex!\n").unwrap();
    let out = bulkgcd()
        .args(["scan", corpus.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains(":2"));
    std::fs::remove_dir_all(&dir).ok();
}
