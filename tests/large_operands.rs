//! Full-size stress tests: the paper's actual operand sizes (up to
//! 4096-bit RSA moduli), run end to end through every algorithm and both
//! termination modes. Kept to a handful of pairs so the debug-build suite
//! stays quick.

use bulk_gcd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn odd_pair(bits: u64, seed: u64) -> (Nat, Nat) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        bulk_gcd::bigint::random::random_odd_bits(&mut rng, bits),
        bulk_gcd::bigint::random::random_odd_bits(&mut rng, bits),
    )
}

#[test]
fn all_algorithms_agree_at_2048_bits() {
    let (a, b) = odd_pair(2048, 1);
    let reference = gcd_nat(Algorithm::FastBinary, &a, &b);
    for algo in Algorithm::ALL {
        assert_eq!(gcd_nat(algo, &a, &b), reference, "{}", algo.name());
    }
    assert_eq!(lehmer_gcd_nat(&a, &b), reference, "Lehmer");
}

#[test]
fn approximate_handles_4096_bits() {
    let (a, b) = odd_pair(4096, 2);
    let mut pair = GcdPair::new(&a, &b);
    let mut sp = StatsProbe::default();
    let out = run(
        Algorithm::Approximate,
        &mut pair,
        Termination::Full,
        &mut sp,
    );
    match out {
        GcdOutcome::Gcd(g) => {
            assert!(a.rem(&g).is_zero() && b.rem(&g).is_zero());
        }
        GcdOutcome::Coprime => unreachable!(),
    }
    // Table IV: ~1523 iterations for 4096-bit non-terminate (E).
    assert!(
        (1300..1800).contains(&sp.stats.iterations),
        "iterations {}",
        sp.stats.iterations
    );
}

#[test]
fn planted_shared_prime_found_at_2048_bits() {
    // Build two 2048-bit moduli sharing a 1024-bit odd "prime-like" factor.
    // (A genuine 1024-bit prime is slow to mint in debug builds; the GCD
    // path only needs oddness, so an odd random factor exercises the same
    // arithmetic.)
    let mut rng = StdRng::seed_from_u64(3);
    let p = bulk_gcd::bigint::random::random_odd_bits(&mut rng, 1024);
    let q1 = bulk_gcd::bigint::random::random_odd_bits(&mut rng, 1024);
    let q2 = bulk_gcd::bigint::random::random_odd_bits(&mut rng, 1024);
    let n1 = p.mul(&q1);
    let n2 = p.mul(&q2);
    for algo in [Algorithm::Approximate, Algorithm::FastBinary] {
        let mut pair = GcdPair::new(&n1, &n2);
        let out = run(
            algo,
            &mut pair,
            Termination::Early {
                threshold_bits: 1024,
            },
            &mut NoProbe,
        );
        // gcd(n1, n2) is a multiple of p (random cofactors may share more).
        match out {
            GcdOutcome::Gcd(g) => assert!(g.rem(&p).is_zero(), "{}", algo.name()),
            GcdOutcome::Coprime => panic!("{}: missed planted factor", algo.name()),
        }
    }
}

#[test]
fn iteration_counts_scale_linearly_in_s() {
    // Table IV's law: iterations ~ c * s. Measure (E) at 512 and 2048 and
    // check the 4x ratio within 10%.
    let count = |bits: u64, seed: u64| -> u64 {
        let (a, b) = odd_pair(bits, seed);
        let mut pair = GcdPair::new(&a, &b);
        let mut sp = StatsProbe::default();
        run(
            Algorithm::Approximate,
            &mut pair,
            Termination::Full,
            &mut sp,
        );
        sp.stats.iterations
    };
    let small: u64 = (0..6).map(|s| count(512, 100 + s)).sum();
    let large: u64 = (0..6).map(|s| count(2048, 200 + s)).sum();
    let ratio = large as f64 / small as f64;
    assert!((3.5..4.5).contains(&ratio), "scaling ratio {ratio}");
}

#[test]
fn mixed_width_corpus_scan() {
    // A corpus with different modulus sizes must still scan correctly
    // (per-pair early threshold uses the smaller operand's width).
    let mut rng = StdRng::seed_from_u64(4);
    let p = bulk_gcd::bigint::prime::random_rsa_prime(&mut rng, 64);
    let moduli = vec![
        p.mul(&bulk_gcd::bigint::prime::random_rsa_prime(&mut rng, 64)), // 128-bit
        generate_keypair(&mut rng, 192).public.n,                        // 192-bit
        p.mul(&bulk_gcd::bigint::prime::random_rsa_prime(&mut rng, 128)), // 192-bit sharing p
        generate_keypair(&mut rng, 128).public.n,
    ];
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let rep = ScanPipeline::new(&arena).run().unwrap().scan;
    assert_eq!(rep.findings.len(), 1);
    assert_eq!((rep.findings[0].i, rep.findings[0].j), (0, 2));
    assert_eq!(rep.findings[0].factor, p);

    // The simulated-GPU scan must agree even though its launches batch
    // pairs of different widths (it must take the smallest threshold).
    let gpu = ScanPipeline::new(&arena)
        .backend(GpuSimBackend {
            device: DeviceConfig::gtx_780_ti(),
            cost: CostModel::default(),
        })
        .launch_pairs(3) // tiny launches force mixed-width batches
        .run()
        .unwrap()
        .scan;
    assert_eq!(gpu.findings, rep.findings);
}
