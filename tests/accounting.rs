//! Cross-crate accounting consistency: three independent implementations
//! of the §IV memory-operation model — the core probe counters, the UMM
//! trace generator, and the GPU cost model — must agree with each other
//! (up to their documented O(1)-per-iteration differences).

use bulk_gcd::prelude::*;
use bulk_gcd::umm::gcd_trace::{bulk_gcd_trace, IterProbe};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_pair(bits: u64, seed: u64) -> (Nat, Nat) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        bulk_gcd::bigint::random::random_odd_bits(&mut rng, bits),
        bulk_gcd::bigint::random::random_odd_bits(&mut rng, bits),
    )
}

/// The stats probe's word count and the GPU cost model's word count follow
/// the same §IV law, differing only by the fixed head/tail words per
/// iteration.
#[test]
fn stats_probe_and_gpu_cost_model_agree() {
    let cost = CostModel::default();
    for algo in [
        Algorithm::Binary,
        Algorithm::FastBinary,
        Algorithm::Approximate,
    ] {
        let (a, b) = random_pair(384, 17);
        let mut pair = GcdPair::new(&a, &b);
        let mut stats = StatsProbe::default();
        let mut iters = IterProbe::default();
        // Run twice deterministically to collect both probe views.
        run(algo, &mut pair, Termination::Full, &mut stats);
        pair.load(&a, &b);
        run(algo, &mut pair, Termination::Full, &mut iters);

        let probe_words = stats.stats.mem_ops;
        let cost_words: u64 = iters.iters.iter().map(|d| cost.lane_mem_words(d)).sum();
        let fixed_overhead = 6 * stats.stats.iterations; // head/tail words
        assert_eq!(
            cost_words,
            probe_words + fixed_overhead,
            "{}: cost model vs probe",
            algo.name()
        );
    }
}

/// The UMM trace contains exactly the accesses its reconstruction rules
/// promise: per iteration, a 4-slot head, the per-kind scan accesses
/// (reading only the *live* `lY` words of Y, slightly tighter than the
/// probe's 3·lX upper-bound model), and a 2-slot compare tail.
#[test]
fn umm_trace_access_count_matches_probe() {
    use bulk_gcd::core::StepKind;
    for algo in [
        Algorithm::FastBinary,
        Algorithm::Approximate,
        Algorithm::Binary,
    ] {
        let (a, b) = random_pair(256, 23);
        let mut pair = GcdPair::new(&a, &b);
        let mut iters = IterProbe::default();
        run(algo, &mut pair, Termination::Full, &mut iters);

        let expect: u64 = iters
            .iters
            .iter()
            .map(|d| {
                let (lx, ly) = (d.lx as u64, d.ly as u64);
                let scan = match d.kind {
                    StepKind::BinaryXEven => 2 * lx,
                    StepKind::BinaryYEven => 2 * ly,
                    StepKind::ApproxBetaPositive | StepKind::LehmerBatch => 2 * lx + 2 * ly,
                    _ => 2 * lx + ly,
                };
                scan + 6 // head (4) + tail (2)
            })
            .sum();
        let bulk = bulk_gcd_trace(algo, &[(a, b)], Termination::Full);
        assert_eq!(
            bulk.total_accesses(),
            expect,
            "{}: UMM trace vs descriptor reconstruction",
            algo.name()
        );
    }
}

/// The GCD is invariant across every iteration of every algorithm: each
/// recorded intermediate pair has the same gcd as the inputs. This is the
/// strongest single correctness invariant the trace probe can check.
#[test]
fn gcd_invariant_preserved_through_all_iterations() {
    for algo in Algorithm::ALL {
        let (a, b) = random_pair(192, 31);
        let g = a.gcd_reference(&b);
        let mut pair = GcdPair::new(&a, &b);
        let mut tp = TraceProbe::default();
        run(algo, &mut pair, Termination::Full, &mut tp);
        for row in &tp.rows {
            assert_eq!(
                row.x_after.gcd_reference(&row.y_after),
                g,
                "{} iteration {}",
                algo.name(),
                row.iteration
            );
        }
    }
}

/// Operand bit lengths never increase within an iteration (X shrinks or
/// the pair swaps), so the trace is monotone in max(X, Y).
#[test]
fn operand_magnitude_monotone() {
    for algo in Algorithm::ALL {
        let (a, b) = random_pair(192, 37);
        let mut pair = GcdPair::new(&a, &b);
        let mut tp = TraceProbe::default();
        run(algo, &mut pair, Termination::Full, &mut tp);
        let mut prev_max = if a >= b { a.clone() } else { b.clone() };
        for row in &tp.rows {
            let cur_max = if row.x_after >= row.y_after {
                row.x_after.clone()
            } else {
                row.y_after.clone()
            };
            assert!(
                cur_max <= prev_max,
                "{} iteration {}: {} > {}",
                algo.name(),
                row.iteration,
                cur_max.to_hex(),
                prev_max.to_hex()
            );
            prev_max = cur_max;
        }
    }
}
