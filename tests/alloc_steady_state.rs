//! Proof of the zero-allocation scan hot loop: a counting global allocator
//! wraps the system allocator, and the steady-state CPU scan loop (the
//! per-worker [`scan_block_into`] used by `scan_cpu`) must perform **zero**
//! heap allocations after its warmup pass on a clean corpus.
//!
//! This file holds exactly one `#[test]` on purpose: the counter is global,
//! so a sibling test allocating on another harness thread would race it.

use bulkgcd_bulk::{group_size_for, scan_block_into, GroupedPairs, ModuliArena};
use bulkgcd_core::{Algorithm, GcdPair};
use bulkgcd_rsa::build_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_scan_hot_loop_allocates_nothing() {
    // A clean corpus (no planted factors): every pair is coprime, so the
    // findings vector is never pushed to and the loop's only legitimate
    // allocation source is out of the picture.
    let mut rng = StdRng::seed_from_u64(42);
    let corpus = build_corpus(&mut rng, 16, 256, 0);
    let moduli = corpus.moduli();
    let arena = ModuliArena::from_moduli(&moduli);
    let grid = GroupedPairs::new(arena.len(), group_size_for(arena.len()));
    let blocks: Vec<_> = grid.blocks().collect();

    for algo in [Algorithm::Approximate, Algorithm::FastBinary] {
        for early in [true, false] {
            // Worker-local scratch, exactly as scan_cpu's workers hold it.
            let mut pair = GcdPair::with_capacity(arena.stride());
            let mut found = Vec::new();

            // Warmup: first pass sizes the workspace buffers (X, Y, and the
            // β>0 scratch) for this corpus width.
            for &b in &blocks {
                scan_block_into(&arena, &grid, b, algo, early, &mut pair, &mut found);
            }
            assert!(found.is_empty(), "clean corpus must yield no findings");

            // Steady state: the full all-pairs sweep again, now warmed.
            let before = allocations();
            for &b in &blocks {
                scan_block_into(&arena, &grid, b, algo, early, &mut pair, &mut found);
            }
            let after = allocations();
            assert!(found.is_empty());
            assert_eq!(
                after - before,
                0,
                "steady-state scan loop allocated ({:?}, early={early})",
                algo
            );
        }
    }
}
