//! Proof of the zero-allocation scan hot loop: a counting global allocator
//! wraps the system allocator, and the steady-state CPU scan loop (the
//! per-worker [`scan_block_into`] used by `scan_cpu`) must perform **zero**
//! heap allocations after its warmup pass on a clean corpus.
//!
//! This file holds exactly one `#[test]` on purpose: the counter is global,
//! so a sibling test allocating on another harness thread would race it.

use bulkgcd_bulk::{
    batch_gcd_into, group_size_for, scan_block_into, BatchScratch, FaultPlan, GroupedPairs,
    ModuliArena,
};
use bulkgcd_core::{Algorithm, GcdPair, Termination};
use bulkgcd_gpu::{simulate_bulk_gcd_retry, CostModel, DeviceConfig, RetryPolicy};
use bulkgcd_rsa::build_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_scan_hot_loop_allocates_nothing() {
    // A clean corpus (no planted factors): every pair is coprime, so the
    // findings vector is never pushed to and the loop's only legitimate
    // allocation source is out of the picture.
    let mut rng = StdRng::seed_from_u64(42);
    let corpus = build_corpus(&mut rng, 16, 256, 0);
    let moduli = corpus.moduli();
    let arena = ModuliArena::try_from_moduli(&moduli).unwrap();
    let grid = GroupedPairs::new(arena.len(), group_size_for(arena.len()));
    let blocks: Vec<_> = grid.blocks().collect();

    for algo in [Algorithm::Approximate, Algorithm::FastBinary] {
        for early in [true, false] {
            // Worker-local scratch, exactly as scan_cpu's workers hold it.
            let mut pair = GcdPair::with_capacity(arena.stride());
            let mut found = Vec::new();

            // Warmup: first pass sizes the workspace buffers (X, Y, and the
            // β>0 scratch) for this corpus width.
            for &b in &blocks {
                scan_block_into(&arena, &grid, b, algo, early, &mut pair, &mut found);
            }
            assert!(found.is_empty(), "clean corpus must yield no findings");

            // Steady state: the full all-pairs sweep again, now warmed.
            let before = allocations();
            for &b in &blocks {
                scan_block_into(&arena, &grid, b, algo, early, &mut pair, &mut found);
            }
            let after = allocations();
            assert!(found.is_empty());
            assert_eq!(
                after - before,
                0,
                "steady-state scan loop allocated ({:?}, early={early})",
                algo
            );
        }
    }

    // Batch GCD (product tree + remainder tree): with a caller-held
    // `BatchScratch` every node buffer, division scratch and gcd workspace
    // is reused, so repeat batches over same-shaped corpora are heap-free.
    // The corpus stays at 64-bit moduli so every node is below the
    // subquadratic cutoffs — the Toom/NTT rungs allocate internally by
    // design and are gated out by width here.
    let mut rng = StdRng::seed_from_u64(7);
    let batch_corpus = build_corpus(&mut rng, 16, 64, 0);
    let batch_moduli = batch_corpus.moduli();
    let mut scratch = BatchScratch::new();
    let mut gcds = Vec::new();

    // Warmup sizes the tree levels, remainder ping-pong buffers and the
    // per-modulus division/gcd scratch for this corpus shape.
    batch_gcd_into(&batch_moduli, &mut scratch, &mut gcds);
    let expected: Vec<_> = gcds.clone();

    let before = allocations();
    batch_gcd_into(&batch_moduli, &mut scratch, &mut gcds);
    let after = allocations();
    assert_eq!(gcds, expected);
    assert!(gcds.iter().all(|g| g.is_one()), "clean corpus gcds are 1");
    assert_eq!(
        after - before,
        0,
        "steady-state batch_gcd_into allocated on a warmed scratch"
    );

    // Retry path: failed attempts never reach the simulator, so a launch
    // that transiently faults twice before succeeding must allocate exactly
    // as much as a launch that succeeds first try — the fault lookup, the
    // retry loop and the backoff accounting are heap-free.
    let inputs: Vec<_> = (1..moduli.len())
        .map(|j| (moduli[0].as_limbs(), moduli[j].as_limbs()))
        .collect();
    let term = Termination::Early {
        threshold_bits: 128,
    };
    let device = DeviceConfig::gtx_780_ti();
    let cost = CostModel::default();
    let policy = RetryPolicy::default();
    let algo = Algorithm::Approximate;

    let clean = FaultPlan::none();
    // Warmup (lazy statics, first-use buffers), then measure the clean run.
    simulate_bulk_gcd_retry(&device, &cost, algo, &inputs, term, 0, &clean, &policy)
        .0
        .unwrap();
    let before = allocations();
    let (res, out) =
        simulate_bulk_gcd_retry(&device, &cost, algo, &inputs, term, 0, &clean, &policy);
    let clean_allocs = allocations() - before;
    assert!(res.is_ok());
    assert_eq!(out.attempts, 1);

    let flaky = FaultPlan::none().with_transient(0, 2);
    let before = allocations();
    let (res, out) =
        simulate_bulk_gcd_retry(&device, &cost, algo, &inputs, term, 0, &flaky, &policy);
    let retry_allocs = allocations() - before;
    assert!(res.is_ok(), "two transient faults must be retried away");
    assert_eq!(out.attempts, 3);
    assert!(out.backoff > std::time::Duration::ZERO);
    assert_eq!(
        retry_allocs, clean_allocs,
        "retrying a transient fault must add zero heap allocations"
    );
}
