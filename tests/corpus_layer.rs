//! Integration tests for the scale-ready corpus layer: streaming ingest,
//! the succinct rank/select acceptance index, and the on-disk compiled
//! arena — exercised end to end through the public prelude.

use bulk_gcd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "bulkgcd-corpus-layer-{tag}-{}-{:?}.arena",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// A hostile raw corpus: real weak keys interleaved with quarantine bait
/// (zeros, evens, undersized values, duplicates) so raw and compacted
/// indices genuinely diverge.
fn hostile_corpus(seed: u64) -> (Vec<Nat>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let corpus = build_corpus(&mut rng, 10, 128, 2);
    let min_bits = 64;
    let mut raw = Vec::new();
    for (k, key) in corpus.keys.iter().enumerate() {
        match k % 3 {
            0 => raw.push(Nat::default()),            // zero → rejected
            1 => raw.push(Nat::from(0x1_0000u32)),    // even → rejected
            _ => raw.push(Nat::from(0xffff_fffbu32)), // undersized → rejected
        }
        raw.push(key.public.n.clone());
        if k == 4 {
            // Duplicate of the very first accepted modulus.
            raw.push(corpus.keys[0].public.n.clone());
        }
    }
    (raw, min_bits)
}

#[test]
fn raw_and_compacted_indices_round_trip_through_a_scan() {
    let (raw, min_bits) = hostile_corpus(404);
    let report = sanitize_moduli(&raw, min_bits);
    assert!(
        !report.rejected.is_empty(),
        "the hostile corpus must actually quarantine something"
    );

    // Scan the compacted survivors.
    let accepted: Vec<Nat> = report
        .accepted_raw_indices()
        .map(|raw_idx| raw[raw_idx].clone())
        .collect();
    assert_eq!(accepted.len(), report.accepted_count());
    let arena = ModuliArena::try_from_moduli(&accepted).unwrap();
    let scan = ScanPipeline::new(&arena)
        .backend(ScalarBackend)
        .run()
        .unwrap()
        .scan;
    assert!(
        !scan.findings.is_empty(),
        "the planted weak pairs must survive sanitization"
    );

    // Every finding, attributed back through the rank/select index, must
    // point at raw corpus rows the factor actually divides.
    for f in &scan.findings {
        let (ri, rj) = (report.raw_index(f.i), report.raw_index(f.j));
        assert!(
            raw[ri].rem(&f.factor).is_zero(),
            "factor must divide raw row {ri}"
        );
        assert!(
            raw[rj].rem(&f.factor).is_zero(),
            "factor must divide raw row {rj}"
        );
        // And the inverse mapping agrees.
        assert_eq!(report.row_of(ri), Some(f.i));
        assert_eq!(report.row_of(rj), Some(f.j));
    }

    // Quarantined rows map to no compacted row at all.
    for r in &report.rejected {
        assert_eq!(report.row_of(r.index), None);
    }
}

#[test]
fn streaming_sanitizer_agrees_with_borrowed_mode_on_hostile_input() {
    let (raw, min_bits) = hostile_corpus(405);
    let borrowed = sanitize_moduli(&raw, min_bits);

    let mut s = StreamingSanitizer::new(min_bits);
    for n in &raw {
        s.push(n.clone());
    }
    let (accepted, streamed) = s.finish();

    assert_eq!(streamed.total(), borrowed.total());
    assert_eq!(streamed.accepted_count(), borrowed.accepted_count());
    assert_eq!(streamed.rejected, borrowed.rejected);
    let expected: Vec<Nat> = borrowed
        .accepted_raw_indices()
        .map(|i| raw[i].clone())
        .collect();
    assert_eq!(accepted, expected);
}

#[test]
fn arena_streamed_under_a_tiny_budget_matches_the_in_memory_scan_bitwise() {
    let (raw, min_bits) = hostile_corpus(406);
    let mut s = StreamingSanitizer::new(min_bits);
    for n in &raw {
        s.push(n.clone());
    }
    let (accepted, report) = s.finish();
    let arena = ModuliArena::try_from_moduli(&accepted).unwrap();

    let path = temp_path("budget");
    write_arena(&path, &arena, &report.acceptance, min_bits).unwrap();

    // In-memory reference over the same corpus.
    let reference = ScanPipeline::new(&arena)
        .backend(ScalarBackend)
        .run()
        .unwrap()
        .scan;
    assert!(!reference.findings.is_empty());

    let mut source = ArenaSource::open(&path).unwrap();
    assert_eq!(source.rows(), arena.len());
    let total_limbs = arena.len() * arena.stride();

    // A chunk budget far smaller than the corpus: one row per window, so
    // every cross-chunk pair is exercised. Also a mid-size and an
    // everything-fits budget for good measure.
    for chunk_limbs in [1, arena.stride() * 3, total_limbs + 1] {
        let streamed = source
            .scan_chunked(Algorithm::Approximate, true, chunk_limbs)
            .unwrap();
        assert_eq!(
            streamed.findings, reference.findings,
            "chunk budget {chunk_limbs} limbs must not change findings"
        );
        assert_eq!(streamed.pairs_scanned, reference.pairs_scanned);
        assert_eq!(streamed.duplicate_pairs, reference.duplicate_pairs);
    }

    // The acceptance index rides along in the file: attribution through
    // the reopened source matches the ingest report.
    for row in 0..source.rows() {
        assert_eq!(source.raw_index(row), report.raw_index(row));
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn arena_round_trips_into_the_existing_pipeline_and_shard_drivers() {
    let (raw, min_bits) = hostile_corpus(407);
    let report = sanitize_moduli(&raw, min_bits);
    let accepted: Vec<Nat> = report
        .accepted_raw_indices()
        .map(|i| raw[i].clone())
        .collect();
    let arena = ModuliArena::try_from_moduli(&accepted).unwrap();
    let path = temp_path("pipeline");
    write_arena(&path, &arena, &report.acceptance, min_bits).unwrap();

    let mut source = ArenaSource::open(&path).unwrap();
    let loaded = source.load_arena().unwrap();
    let reference = ScanPipeline::new(&arena)
        .backend(ScalarBackend)
        .run()
        .unwrap()
        .scan;
    let from_disk = ScanPipeline::new(&loaded)
        .backend(ScalarBackend)
        .run()
        .unwrap()
        .scan;
    assert_eq!(from_disk.findings, reference.findings);

    // Sharded execution over the reloaded arena reproduces the findings,
    // and the ingest index attributes them to the same raw rows.
    let config = ShardConfig::new(3, DEFAULT_LAUNCH_PAIRS);
    let sharded = run_sharded(&loaded, &config, &ShardFaultPlan::none(), || ScalarBackend).unwrap();
    assert_eq!(sharded.scan.findings, reference.findings);
    for f in &sharded.scan.findings {
        assert!(raw[report.raw_index(f.i)].rem(&f.factor).is_zero());
        assert!(raw[report.raw_index(f.j)].rem(&f.factor).is_zero());
    }

    std::fs::remove_file(&path).ok();
}
