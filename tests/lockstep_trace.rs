//! Differential-trace cross-check of the analyze pass's constant-flow
//! claims (tier-1).
//!
//! The static lints assert that the lockstep engine's vector pass and
//! planning phase contain no operand-dependent control flow outside the
//! documented allow sites. This suite checks the same property
//! *dynamically*: it runs the engine through the UMM trace model on >100
//! random operand pairs and asserts
//!
//! * the vector-pass trace is **identical in every lane** and equal to a
//!   pure model computed from `(rows_per_iter, stride)` alone — i.e. the
//!   address sequence is a function of the public per-iteration structure,
//!   not of the operand values;
//! * `umm::oblivious::analyze` scores the vector trace perfectly uniform;
//! * the planning phase spends exactly 8 step-aligned head-read slots per
//!   lane per iteration (§IV's four head words per operand);
//! * tracing does not perturb results: every lane's GCD still matches the
//!   reference.
//!
//! The serialized divergent fixups (DeepShift / WideAlpha / β > 0) are the
//! documented allow-pragma sites and are deliberately outside the lockstep
//! trace.

use bulkgcd_bigint::random::random_odd_bits;
use bulkgcd_bigint::{Limb, Nat};
use bulkgcd_bulk::{CompactionConfig, LockstepEngine, LockstepTrace};
use bulkgcd_core::Termination;
use bulkgcd_umm::oblivious;
use bulkgcd_umm::trace::Access;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WARP: usize = 8;
const WARPS: usize = 14; // 14 × 8 = 112 pairs ≥ 100

/// The pure address model of the vector pass: for each iteration with
/// `rows` fused rows, every lane reads plane-A row `k`, reads plane-B row
/// `k`, and writes row `k`, for `k = 0..rows`. Anything beyond this is an
/// operand-dependent address and a constant-flow violation.
fn vector_model(trace: &LockstepTrace) -> Vec<Option<Access>> {
    let mut model = Vec::new();
    for &rows in &trace.rows_per_iter {
        for k in 0..rows {
            model.push(Some(Access::Read(k)));
            model.push(Some(Access::Read(trace.stride + k)));
            model.push(Some(Access::Write(k)));
        }
    }
    model
}

fn check_warp(pairs: &[(Nat, Nat)], term: Termination, label: &str) {
    let mut engine = LockstepEngine::new(WARP);
    let inputs: Vec<(&[Limb], &[Limb])> = pairs
        .iter()
        .map(|(a, b)| (a.as_limbs(), b.as_limbs()))
        .collect();
    let trace = engine.run_warp_traced(&inputs, term);

    // Vector pass: every lane's address sequence is the same pure function
    // of (rows_per_iter, stride).
    let model = vector_model(&trace);
    for (t, th) in trace.vector.threads.iter().enumerate() {
        assert_eq!(
            th.accesses, model,
            "{label}: lane {t} vector trace diverged from the pure model"
        );
    }
    let report = oblivious::analyze(&trace.vector);
    assert_eq!(
        report.uniform_fraction(),
        1.0,
        "{label}: vector pass must be perfectly uniform: {report:?}"
    );

    // Planning phase: exactly 8 step-aligned head-read slots per lane per
    // iteration, never touching past the two planes.
    for (t, th) in trace.plan.threads.iter().enumerate() {
        assert_eq!(
            th.len(),
            trace.iterations * 8,
            "{label}: lane {t} plan slots"
        );
    }
    assert!(
        trace.plan.words_required() <= 2 * trace.stride,
        "{label}: plan reads escaped the operand planes"
    );

    // Tracing must not perturb results.
    for (t, (a, b)) in pairs.iter().enumerate() {
        let want = a.gcd_reference(b);
        match engine.lane_status(t) {
            bulkgcd_core::GcdStatus::Done => {
                assert_eq!(engine.lane_gcd_nat(t), want, "{label}: lane {t} gcd");
            }
            bulkgcd_core::GcdStatus::EarlyCoprime => {
                // Early termination only fires below the coprime threshold.
                if let Termination::Early { threshold_bits } = term {
                    assert!(
                        want.bit_len() < threshold_bits,
                        "{label}: lane {t} terminated early with a large gcd"
                    );
                }
            }
        }
    }
}

#[test]
fn vector_pass_trace_is_operand_independent_across_112_pairs() {
    let mut rng = StdRng::seed_from_u64(0xb01d);
    for warp in 0..WARPS {
        let pairs: Vec<(Nat, Nat)> = (0..WARP)
            .map(|_| {
                (
                    random_odd_bits(&mut rng, 256),
                    random_odd_bits(&mut rng, 256),
                )
            })
            .collect();
        check_warp(&pairs, Termination::Full, &format!("warp {warp}"));
    }
}

#[test]
fn traced_early_termination_and_shared_factors() {
    let mut rng = StdRng::seed_from_u64(0xcafe);
    let p = random_odd_bits(&mut rng, 96);
    let mut pairs: Vec<(Nat, Nat)> = (0..WARP - 1)
        .map(|_| {
            (
                random_odd_bits(&mut rng, 192),
                random_odd_bits(&mut rng, 192),
            )
        })
        .collect();
    // One lane with a shared factor runs to Done while the rest exit early:
    // the trace must stay step-aligned through the masked idles.
    pairs.push((
        p.mul(&random_odd_bits(&mut rng, 96)),
        p.mul(&random_odd_bits(&mut rng, 96)),
    ));
    check_warp(
        &pairs,
        Termination::Early { threshold_bits: 96 },
        "early warp",
    );
}

#[test]
fn traced_ragged_and_tiny_operands() {
    let pairs = vec![
        (Nat::from_u64(1_043_915), Nat::from_u64(768_955)),
        (Nat::from_u64(3), Nat::from_u64(1)),
        (Nat::from_u128(1u128 << 100 | 1), Nat::from_u64(7)),
        (Nat::from_u64(1), Nat::from_u64(1)),
    ];
    check_warp(&pairs, Termination::Full, "ragged warp");
}

/// Queue mode (compaction + refill): the vector pass must stay perfectly
/// uniform **across compaction boundaries** — a service pass repacks
/// columns and swaps queue entries in and out, yet every step of the
/// vector trace still has all non-idle entries touching the identical
/// address, and each entry's non-idle window is exactly the pure row
/// sweep of its iteration. The compaction events themselves are recorded
/// in the trace, so the test can prove boundaries actually occurred.
#[test]
fn queue_vector_pass_stays_uniform_across_compaction_boundaries() {
    let mut rng = StdRng::seed_from_u64(0xc0de);
    // Mixed-width entries (so lanes terminate at very different iteration
    // counts) plus one shared-factor pair, in a queue ~5× the warp width:
    // the service pass must both refill and, once pending drains, repack.
    let p = random_odd_bits(&mut rng, 96);
    let mut pairs: Vec<(Nat, Nat)> = (0..40)
        .map(|i| {
            let bits = if i % 3 == 0 { 128 } else { 256 };
            (
                random_odd_bits(&mut rng, bits),
                random_odd_bits(&mut rng, bits),
            )
        })
        .collect();
    pairs.push((
        p.mul(&random_odd_bits(&mut rng, 96)),
        p.mul(&random_odd_bits(&mut rng, 96)),
    ));
    let inputs: Vec<(&[Limb], &[Limb])> = pairs
        .iter()
        .map(|(a, b)| (a.as_limbs(), b.as_limbs()))
        .collect();

    for (ci, cfg) in [
        CompactionConfig::default(),
        CompactionConfig {
            min_active_fraction: 0.5,
            refill: true,
            ..CompactionConfig::default()
        },
        CompactionConfig {
            min_active_fraction: 1.0,
            refill: false,
            ..CompactionConfig::default()
        },
    ]
    .into_iter()
    .enumerate()
    {
        let label = format!("cfg {ci}");
        let mut engine = LockstepEngine::new(WARP);
        let trace = engine.run_queue_traced(&inputs, Termination::Full, cfg);

        // The boundaries exist: a 41-entry queue through an 8-wide warp
        // cannot finish without service events.
        assert!(
            !trace.events.is_empty(),
            "{label}: queue run recorded no compaction/refill events"
        );
        if cfg.refill {
            assert!(
                trace.events.iter().any(|e| e.refilled > 0),
                "{label}: refilling config never refilled"
            );
        } else {
            assert!(
                trace.events.iter().any(|e| e.repacked),
                "{label}: compact-only config never repacked"
            );
        }
        for e in &trace.events {
            assert!(e.width_after <= WARP, "{label}: width grew past the warp");
            assert!(
                e.iteration <= trace.iterations,
                "{label}: event off the end"
            );
        }

        // Dynamic constant-flow: the whole vector trace scores perfectly
        // uniform — compaction moved lanes between columns without ever
        // desynchronizing a step.
        let report = oblivious::analyze(&trace.vector);
        assert_eq!(
            report.uniform_fraction(),
            1.0,
            "{label}: queue vector pass must stay uniform: {report:?}"
        );

        // Per-entry: every non-idle window is the pure row sweep of its
        // iteration — addresses derive from (rows_per_iter, stride) alone.
        let steps = 3 * trace.rows_per_iter.iter().sum::<usize>();
        let mut base = 0usize;
        for &rows in &trace.rows_per_iter {
            for (q, th) in trace.vector.threads.iter().enumerate() {
                assert_eq!(th.accesses.len(), steps, "{label}: entry {q} unpadded");
                for k in 0..rows {
                    let win = &th.accesses[base + 3 * k..base + 3 * k + 3];
                    if win[0].is_none() {
                        assert!(
                            win.iter().all(Option::is_none),
                            "{label}: entry {q} partial sweep at row {k}"
                        );
                    } else {
                        assert_eq!(win[0], Some(Access::Read(k)), "{label}: entry {q}");
                        assert_eq!(
                            win[1],
                            Some(Access::Read(trace.stride + k)),
                            "{label}: entry {q}"
                        );
                        assert_eq!(win[2], Some(Access::Write(k)), "{label}: entry {q}");
                    }
                }
            }
            base += 3 * rows;
        }

        // Planning phase stays step-aligned through service boundaries and
        // inside the operand planes.
        for (q, th) in trace.plan.threads.iter().enumerate() {
            assert_eq!(
                th.len(),
                trace.iterations * 8,
                "{label}: entry {q} plan slots"
            );
        }
        assert!(
            trace.plan.words_required() <= 2 * trace.stride,
            "{label}: plan reads escaped the operand planes"
        );

        // Tracing and compaction must not perturb results.
        for (q, (a, b)) in pairs.iter().enumerate() {
            let want = a.gcd_reference(b);
            assert_eq!(
                engine.queue_status(q),
                bulkgcd_core::GcdStatus::Done,
                "{label}: entry {q}"
            );
            match engine.queue_factor(q) {
                Some(f) => assert_eq!(*f, want, "{label}: entry {q} factor"),
                None => assert!(want.is_one(), "{label}: entry {q} lost its factor"),
            }
        }
    }
}
