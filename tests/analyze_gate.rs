//! Tier-1 analyze gate.
//!
//! Two guarantees, both enforced on every `cargo test`:
//!
//! 1. **Every lint fires** — each of the analyzer's lints produces at
//!    least one finding on the seeded-violation fixtures. A lint that
//!    never fires anywhere proves nothing by passing on the workspace.
//! 2. **The workspace is clean** — running the analyzer over the real
//!    source tree yields zero findings, so a regression (a new bare
//!    unwrap in library code, a divergent branch in a constant-flow
//!    kernel without a documented allow, an append that skips
//!    `sync_data`, an allocation on a zero-alloc path) fails the
//!    suite, not just `scripts/check.sh`.

use analyze::{analyze_workspace, lints, run_file, FileClass, FileCtx, LINTS};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run_fixture(root: &Path, name: &str, bigint_limb: bool) -> Vec<&'static str> {
    let path = root.join("crates/analyze/fixtures").join(name);
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let out = run_file(
        &src,
        &FileCtx {
            path: format!("fixtures/{name}"),
            class: FileClass::Library,
            bigint_limb,
        },
    );
    out.findings.iter().map(|f| f.lint).collect()
}

#[test]
fn every_lint_fires_on_fixtures() {
    let root = repo_root();
    let mut fired = BTreeSet::new();
    for (name, bigint_limb) in [
        ("cf_violations.rs", false),
        ("cf_interproc.rs", false),
        ("journal_violations.rs", false),
        ("za_violations.rs", false),
        ("panics.rs", false),
        ("unsafe_blocks.rs", false),
        ("casts.rs", true),
        ("shims.rs", false),
        ("meta.rs", false),
    ] {
        fired.extend(run_fixture(&root, name, bigint_limb));
    }

    // stale-baseline only exists relative to a baseline file; feed the
    // global pass one entry that matches nothing.
    let (entries, _) = lints::parse_baseline("no-panic\tsrc/ghost.rs\tghost_fn\tnever matches\n");
    let stale = lints::finish(&[], &entries, "test.baseline");
    fired.extend(stale.findings.iter().map(|f| f.lint));

    let catalog: BTreeSet<&'static str> = LINTS.iter().map(|(name, _)| *name).collect();
    // cf-reach is allow-only: it names a propagation edge an allow can
    // prune, and by design never fires as a finding.
    let allow_only: BTreeSet<&'static str> = ["cf-reach"].into_iter().collect();
    assert!(
        allow_only.is_subset(&catalog),
        "allow-only lints must stay in the catalog: {allow_only:?}"
    );
    let expected: BTreeSet<&'static str> = catalog.difference(&allow_only).copied().collect();
    assert_eq!(
        fired, expected,
        "every non-allow-only lint in the catalog must fire on at least one fixture"
    );
}

#[test]
fn clean_fixture_stays_clean() {
    let root = repo_root();
    let fired = run_fixture(&root, "clean.rs", false);
    assert!(fired.is_empty(), "clean fixture flagged: {fired:?}");
}

#[test]
fn workspace_is_clean() {
    let root = repo_root();
    let report = analyze_workspace(&root).expect("workspace scan must not error");
    assert!(report.files_scanned > 50, "walk found too few files");
    assert!(
        report.constant_flow_fns >= 4,
        "constant-flow roots missing: found {}",
        report.constant_flow_fns
    );
    // Interprocedural coverage: the roots must pull in strictly more
    // functions than the pragmas name — helpers are checked because they
    // are reached, not because someone remembered to opt them in.
    assert!(
        report.cf_covered_fns >= report.constant_flow_fns + 8,
        "constant-flow closure too small: {} root(s) cover {} fn(s)",
        report.constant_flow_fns,
        report.cf_covered_fns
    );
    assert!(
        report.journal_fns >= 15,
        "crash-consistency annotations missing: found {}",
        report.journal_fns
    );
    assert!(
        report.zero_alloc_roots >= 3,
        "zero-alloc roots missing: found {}",
        report.zero_alloc_roots
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        report.findings.is_empty(),
        "analyze found {} finding(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );

    // A second run must be served entirely by the incremental cache and
    // reach the same verdict.
    let again = analyze_workspace(&root).expect("cached rescan must not error");
    assert_eq!(
        again.cache_hits, again.files_scanned,
        "second run should be fully cached"
    );
    assert!(
        again.findings.is_empty(),
        "cached rescan disagreed: {} finding(s)",
        again.findings.len()
    );
}
