//! Tier-1 analyze gate.
//!
//! Two guarantees, both enforced on every `cargo test`:
//!
//! 1. **Every lint fires** — each of the analyzer's lints produces at
//!    least one finding on the seeded-violation fixtures. A lint that
//!    never fires anywhere proves nothing by passing on the workspace.
//! 2. **The workspace is clean** — running the analyzer over the real
//!    source tree yields zero findings, so a regression (a new bare
//!    unwrap in library code, a divergent branch in a constant-flow
//!    kernel without a documented allow) fails the suite, not just
//!    `scripts/check.sh`.

use analyze::{analyze_workspace, run_file, FileClass, FileCtx, LINTS};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run_fixture(root: &Path, name: &str, bigint_limb: bool) -> Vec<&'static str> {
    let path = root.join("crates/analyze/fixtures").join(name);
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let out = run_file(
        &src,
        &FileCtx {
            path: format!("fixtures/{name}"),
            class: FileClass::Library,
            bigint_limb,
        },
    );
    out.findings.iter().map(|f| f.lint).collect()
}

#[test]
fn every_lint_fires_on_fixtures() {
    let root = repo_root();
    let mut fired = BTreeSet::new();
    for (name, bigint_limb) in [
        ("cf_violations.rs", false),
        ("panics.rs", false),
        ("unsafe_blocks.rs", false),
        ("casts.rs", true),
        ("shims.rs", false),
        ("meta.rs", false),
    ] {
        fired.extend(run_fixture(&root, name, bigint_limb));
    }
    let catalog: BTreeSet<&'static str> = LINTS.iter().map(|(name, _)| *name).collect();
    assert_eq!(
        fired, catalog,
        "every lint in the catalog must fire on at least one fixture"
    );
}

#[test]
fn clean_fixture_stays_clean() {
    let root = repo_root();
    let fired = run_fixture(&root, "clean.rs", false);
    assert!(fired.is_empty(), "clean fixture flagged: {fired:?}");
}

#[test]
fn workspace_is_clean() {
    let report = analyze_workspace(&repo_root()).expect("workspace scan must not error");
    assert!(report.files_scanned > 50, "walk found too few files");
    assert!(
        report.constant_flow_fns >= 10,
        "constant-flow annotations missing: found {}",
        report.constant_flow_fns
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        report.findings.is_empty(),
        "analyze found {} finding(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
}
