//! `bulkgcd` — command-line weak-RSA-key scanner.
//!
//! ```text
//! bulkgcd gen    --keys 64 --bits 512 --weak-pairs 3 --out corpus.txt
//! bulkgcd ingest corpus.txt --out corpus.arena [--min-bits B]
//! bulkgcd scan   corpus.txt [--engine cpu|lockstep|gpu|blocks|batch|auto] [--algo E] [--full] [--metrics-out m.json]
//!                [--shards N] [--shard-dir DIR]
//! bulkgcd scan   corpus.arena --arena [--chunk-limbs N]
//! bulkgcd check  corpus.txt <modulus-hex>
//! bulkgcd gcd    <x-hex> <y-hex> [--algo A|B|C|D|E|lehmer] [--stats]
//! ```
//!
//! Corpus files hold one hexadecimal modulus per line; `#` starts a comment.

use bulk_gcd::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::process::ExitCode;

fn algo_from_flag(s: &str) -> Option<Algorithm> {
    match s.to_ascii_uppercase().as_str() {
        "A" | "ORIGINAL" => Some(Algorithm::Original),
        "B" | "FAST" => Some(Algorithm::Fast),
        "C" | "BINARY" => Some(Algorithm::Binary),
        "D" | "FASTBINARY" | "FAST-BINARY" => Some(Algorithm::FastBinary),
        "E" | "APPROX" | "APPROXIMATE" => Some(Algorithm::Approximate),
        _ => None,
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                // A flag consumes the next token as its value unless the
                // next token is another flag or missing.
                let value = argv.get(i + 1).filter(|v| !v.starts_with("--"));
                if let Some(v) = value {
                    flags.push((name.to_string(), Some(v.clone())));
                    i += 2;
                } else {
                    flags.push((name.to_string(), None));
                    i += 1;
                }
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Args { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }
}

/// Stream the hex corpus at `path` line by line into the sanitizer: the
/// file is never materialized whole, and each accepted modulus is stored
/// exactly once (inside the sanitizer). `#` starts a comment.
fn read_corpus_streaming(path: &str, min_bits: u64) -> Result<(Vec<Nat>, IngestReport), String> {
    use std::io::BufRead;
    let file = std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let mut sanitizer = StreamingSanitizer::new(min_bits);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading {path}: {e}"))?;
        if read == 0 {
            break;
        }
        lineno += 1;
        let text = line.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let n = Nat::from_hex(text).map_err(|e| format!("{path}:{lineno}: {e}"))?;
        sanitizer.push(n);
    }
    Ok(sanitizer.finish())
}

/// Quarantine malformed moduli instead of aborting: zero, even, undersized
/// (below `--min-bits`, default 0 = no floor) and duplicate inputs are
/// reported on stderr and dropped. Returns the scannable moduli plus the
/// ingest report whose rank/select acceptance index maps scanned rows back
/// to raw corpus lines in O(1).
fn sanitized_corpus(args: &Args, path: &str) -> Result<(Vec<Nat>, IngestReport), String> {
    let min_bits: u64 = args.get_parse("min-bits", 0)?;
    let (moduli, report) = read_corpus_streaming(path, min_bits)?;
    if !report.rejected.is_empty() {
        eprintln!("{}", report.summary());
        for r in &report.rejected {
            eprintln!("  quarantined modulus #{}: {}", r.index, r.reason);
        }
    }
    Ok((moduli, report))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let keys: usize = args.get_parse("keys", 64)?;
    let bits: u64 = args.get_parse("bits", 512)?;
    let weak_pairs: usize = args.get_parse("weak-pairs", 2)?;
    let seed: u64 = args.get_parse("seed", 42)?;
    if 2 * weak_pairs > keys {
        return Err("--weak-pairs must be at most keys/2".into());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    eprintln!("generating {keys} keys of {bits} bits with {weak_pairs} weak pairs ...");
    let corpus = build_corpus(&mut rng, keys, bits, weak_pairs);
    let mut out: Box<dyn Write> = match args.get("out") {
        Some(path) => {
            Box::new(std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?)
        }
        None => Box::new(std::io::stdout().lock()),
    };
    writeln!(
        out,
        "# bulkgcd corpus: {keys} keys, {bits} bits, seed {seed}"
    )
    .unwrap();
    for k in &corpus.keys {
        writeln!(out, "{}", k.public.n.to_hex()).unwrap();
    }
    if let Some(path) = args.get("truth") {
        let mut t = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        writeln!(t, "# i j shared-prime-hex").unwrap();
        for (i, j, p) in &corpus.shared {
            writeln!(t, "{i} {j} {}", p.to_hex()).unwrap();
        }
        eprintln!("ground truth written to {path}");
    }
    eprintln!(
        "done; {} vulnerable keys among {}",
        corpus.vulnerable_indices().len(),
        keys
    );
    Ok(())
}

/// Configure the pipeline's backend from an `--engine` flag. Shared by the
/// text-corpus and compiled-arena scan paths.
fn apply_engine<'a>(
    mut pipeline: ScanPipeline<'a>,
    engine: &str,
    algo: Algorithm,
) -> Result<ScanPipeline<'a>, String> {
    match engine {
        "cpu" => {}
        "gpu" => {
            pipeline = pipeline.backend(GpuSimBackend {
                device: DeviceConfig::gtx_780_ti(),
                cost: CostModel::default(),
            });
        }
        "lockstep" => {
            if algo != Algorithm::Approximate {
                return Err(format!(
                    "--engine lockstep executes the Approximate variant only, not {algo:?} \
                     (drop --algo or use --algo E)"
                ));
            }
            pipeline = pipeline
                .backend(LockstepBackend::new(32).with_compaction(CompactionConfig::default()));
        }
        "batch" => {
            pipeline = pipeline.backend(ProductTreeBackend { parallel: true });
        }
        "auto" => {
            // AutoBackend (not Backend::Auto) so a --metrics-out report
            // names the resolved choice as "auto:<backend>".
            pipeline = pipeline.backend(AutoBackend::new(32));
        }
        other => return Err(format!("unknown engine {other:?}")),
    }
    Ok(pipeline)
}

/// Print the scan's clock line: simulated device seconds for launch-priced
/// backends, host wall clock otherwise.
fn report_timing(engine: &str, scan: &ScanReport) {
    match scan.simulated() {
        Ok(sim) => eprintln!(
            "simulated GPU scan: {sim:.6} s simulated ({:.3} us/GCD)",
            sim * 1e6 / scan.pairs_scanned.max(1) as f64
        ),
        Err(_) => eprintln!(
            "{engine} scan: {:.3} s ({:.2} us/GCD)",
            scan.elapsed.as_secs_f64(),
            scan.elapsed.as_secs_f64() * 1e6 / scan.pairs_scanned.max(1) as f64
        ),
    }
}

/// Report findings in the raw corpus's numbering — `select1` over the
/// acceptance bitmap maps each compacted row to its raw line in O(1) — so
/// output lines match the operator's key list.
fn print_findings(findings: &[Finding], acceptance: &RankSelect) {
    if findings.is_empty() {
        println!("no shared factors found");
    }
    for f in findings {
        let i = acceptance
            .select1(f.i)
            .expect("finding row within accepted corpus");
        let j = acceptance
            .select1(f.j)
            .expect("finding row within accepted corpus");
        println!("{i} {j} {}", f.factor.to_hex());
    }
}

fn cmd_scan(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: bulkgcd scan <corpus-file> [--engine cpu|lockstep|gpu|blocks|batch|auto]")?;
    if args.has("arena") {
        return cmd_scan_arena(args, path);
    }
    let (moduli, report) = sanitized_corpus(args, path)?;
    if moduli.len() < 2 {
        // Quarantine may leave fewer than two scannable moduli; that is a
        // trivially clean corpus, not an error.
        println!("no shared factors found");
        return Ok(());
    }
    let algo = match args.get("algo") {
        None => Algorithm::Approximate,
        Some(s) => algo_from_flag(s).ok_or_else(|| format!("unknown algorithm {s:?}"))?,
    };
    let early = !args.has("full");
    let engine = args.get("engine").unwrap_or("cpu");
    eprintln!(
        "scanning {} moduli ({} pairs) with {} [{engine}] ...",
        moduli.len(),
        moduli.len() * moduli.len().saturating_sub(1) / 2,
        algo.name()
    );
    let metrics_out = args.get("metrics-out");
    let shards: usize = args.get_parse("shards", 0)?;
    if shards > 0 {
        if engine == "blocks" || engine == "batch" || engine == "auto" {
            return Err(format!(
                "--shards requires a per-launch engine (cpu, gpu, or lockstep), not {engine:?}"
            ));
        }
        let arena = ModuliArena::try_from_moduli(&moduli).map_err(|e| e.to_string())?;
        return cmd_scan_sharded(
            args,
            &arena,
            &report.acceptance,
            algo,
            early,
            engine,
            shards,
        );
    }
    let findings: Vec<Finding> = if engine == "blocks" {
        // The §VII block-shaped launch has its own report type and is not a
        // pipeline backend; metrics come from its GpuReport instead.
        if metrics_out.is_some() {
            return Err("--metrics-out is not supported with --engine blocks".into());
        }
        let r = group_size_for(moduli.len());
        let rep = scan_gpu_blocks(
            &moduli,
            algo,
            early,
            &DeviceConfig::gtx_780_ti(),
            &CostModel::default(),
            r,
        );
        eprintln!(
            "simulated GPU block launch (r = {r}, {} blocks): {:.6} s simulated, SIMT eff {:.1}%",
            rep.blocks,
            rep.gpu.seconds,
            rep.gpu.mean_simt_efficiency * 100.0
        );
        rep.findings
    } else {
        let arena = ModuliArena::try_from_moduli(&moduli).map_err(|e| e.to_string())?;
        let mut pipeline = ScanPipeline::new(&arena).algorithm(algo).early(early);
        pipeline = apply_engine(pipeline, engine, algo)?;
        if metrics_out.is_some() {
            pipeline = pipeline.metrics();
        }
        let rep = pipeline.run().map_err(|e| e.to_string())?;
        report_timing(engine, &rep.scan);
        report_duplicates(&rep.scan);
        if let Some(path) = metrics_out {
            let metrics = rep
                .metrics
                .as_ref()
                .expect("metrics layer was enabled for --metrics-out");
            std::fs::write(path, metrics.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {} launch metrics ({} backend) to {path}",
                metrics.total_launches, metrics.backend
            );
        }
        rep.scan.findings
    };
    print_findings(&findings, &report.acceptance);
    Ok(())
}

/// `bulkgcd scan <file> --arena`: scan a compiled arena produced by
/// `bulkgcd ingest`, skipping hex parsing and re-sanitization. With
/// `--chunk-limbs N` the corpus streams through a bounded window of ~`N`
/// limbs per side (the larger-than-RAM path, scalar engine); otherwise the
/// arena is loaded whole and runs through the normal pipeline engines
/// (including `--shards`). Findings are identical either way.
fn cmd_scan_arena(args: &Args, path: &str) -> Result<(), String> {
    let algo = match args.get("algo") {
        None => Algorithm::Approximate,
        Some(s) => algo_from_flag(s).ok_or_else(|| format!("unknown algorithm {s:?}"))?,
    };
    let early = !args.has("full");
    let engine = args.get("engine").unwrap_or("cpu");
    let mut source = ArenaSource::open(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    let header = *source.header();
    eprintln!(
        "arena: {} moduli (stride {} limbs, {} raw inputs, fp {:016x})",
        header.m, header.stride, header.raw_len, header.fingerprint
    );
    let chunk_limbs: usize = args.get_parse("chunk-limbs", 0)?;
    let shards: usize = args.get_parse("shards", 0)?;
    let scan = if chunk_limbs > 0 {
        if engine != "cpu" {
            return Err(format!(
                "--chunk-limbs streams through the scalar engine; --engine {engine} needs the \
                 corpus resident (drop --chunk-limbs)"
            ));
        }
        if shards > 0 {
            return Err("--chunk-limbs does not combine with --shards".into());
        }
        let rows = (chunk_limbs / header.stride.max(1)).max(1);
        eprintln!("streaming scan: {rows} rows per window ({chunk_limbs} limb budget)");
        source
            .scan_chunked(algo, early, chunk_limbs)
            .map_err(|e| e.to_string())?
    } else {
        let arena = source.load_arena().map_err(|e| e.to_string())?;
        if shards > 0 {
            if engine == "blocks" || engine == "batch" || engine == "auto" {
                return Err(format!(
                    "--shards requires a per-launch engine (cpu, gpu, or lockstep), not {engine:?}"
                ));
            }
            return cmd_scan_sharded(
                args,
                &arena,
                source.acceptance(),
                algo,
                early,
                engine,
                shards,
            );
        }
        let mut pipeline = ScanPipeline::new(&arena).algorithm(algo).early(early);
        pipeline = apply_engine(pipeline, engine, algo)?;
        pipeline.run().map_err(|e| e.to_string())?.scan
    };
    report_timing(engine, &scan);
    report_duplicates(&scan);
    print_findings(&scan.findings, source.acceptance());
    Ok(())
}

/// `bulkgcd scan --shards N`: partition the launch sequence into N tiles
/// and run them through the shard coordinator (lease ledger, per-shard
/// journals, deterministic merge). With `--shard-dir DIR` the ledger and
/// journals persist, so a killed scan resumes from the completed tiles.
fn cmd_scan_sharded(
    args: &Args,
    arena: &ModuliArena,
    acceptance: &RankSelect,
    algo: Algorithm,
    early: bool,
    engine: &str,
    shards: usize,
) -> Result<(), String> {
    if engine == "lockstep" && algo != Algorithm::Approximate {
        return Err(format!(
            "--engine lockstep executes the Approximate variant only, not {algo:?} \
             (drop --algo or use --algo E)"
        ));
    }
    let metrics_out = args.get("metrics-out");
    let mut config = ShardConfig::new(shards, DEFAULT_LAUNCH_PAIRS);
    config.algo = algo;
    config.early = early;
    config.collect_metrics = metrics_out.is_some();
    config.dir = args.get("shard-dir").map(std::path::PathBuf::from);

    let report = match engine {
        "cpu" => run_sharded(arena, &config, &ShardFaultPlan::none(), || ScalarBackend),
        "gpu" => run_sharded(arena, &config, &ShardFaultPlan::none(), || GpuSimBackend {
            device: DeviceConfig::gtx_780_ti(),
            cost: CostModel::default(),
        }),
        "lockstep" => run_sharded(arena, &config, &ShardFaultPlan::none(), || {
            LockstepBackend::new(32).with_compaction(CompactionConfig::default())
        }),
        other => return Err(format!("unknown engine {other:?}")),
    }
    .map_err(|e| e.to_string())?;

    eprintln!(
        "sharded scan: {} tiles, {} worker attempts, {} launches executed, {} resumed",
        report.stats.tiles,
        report.stats.worker_attempts,
        report.stats.executed_launches,
        report.stats.resumed_launches,
    );
    report_timing(engine, &report.scan);
    report_duplicates(&report.scan);
    if let Some(path) = metrics_out {
        let metrics = report
            .metrics
            .as_ref()
            .expect("metrics were collected for --metrics-out");
        std::fs::write(path, metrics.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} launch metrics ({} backend) to {path}",
            metrics.total_launches, metrics.backend
        );
    }
    print_findings(&report.scan.findings, acceptance);
    Ok(())
}

fn report_duplicates(rep: &ScanReport) {
    if rep.duplicate_pairs > 0 {
        eprintln!(
            "note: {} finding(s) are duplicate moduli (gcd = n); GCD cannot factor those pairs",
            rep.duplicate_pairs
        );
    }
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: bulkgcd check <corpus-file> <modulus-hex>")?;
    let hex = args
        .positional
        .get(2)
        .ok_or("usage: bulkgcd check <corpus-file> <modulus-hex>")?;
    let n = Nat::from_hex(hex).map_err(|e| e.to_string())?;
    let (moduli, _) = sanitized_corpus(args, path)?;
    let idx = CorpusIndex::from_moduli(&moduli).map_err(|e| e.to_string())?;
    let g = idx.shared_factor(&n).map_err(|e| e.to_string())?;
    if g.is_one() {
        println!(
            "clean: no factor shared with the {} indexed moduli",
            idx.len()
        );
    } else {
        println!("WEAK: shares factor {}", g.to_hex());
        return Ok(());
    }
    Ok(())
}

fn cmd_break(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: bulkgcd break <corpus-file> [--exponent E]")?;
    let (moduli, ingest) = sanitized_corpus(args, path)?;
    if moduli.len() < 2 {
        println!("no keys broken");
        return Ok(());
    }
    let e_val: u64 = match args.get("exponent") {
        None => 65_537,
        Some(v) => v.parse().map_err(|_| format!("invalid --exponent {v:?}"))?,
    };
    let e = Nat::from_u64(e_val);
    let keys: Vec<PublicKey> = moduli
        .iter()
        .map(|n| PublicKey {
            n: n.clone(),
            e: e.clone(),
        })
        .collect();
    let report = break_weak_keys(&keys, Algorithm::Approximate).map_err(|e| e.to_string())?;
    eprintln!(
        "scanned {} pairs in {:.3} s; {} shared-factor pairs; {} keys broken",
        report.scan.pairs_scanned,
        report.scan.elapsed.as_secs_f64(),
        report.scan.findings.len(),
        report.broken.len()
    );
    if report.broken.is_empty() {
        println!("no keys broken");
    }
    for b in &report.broken {
        println!(
            "{} {} {}",
            ingest.raw_index(b.index),
            b.factor.to_hex(),
            b.private.d.to_hex()
        );
    }
    Ok(())
}

/// `bulkgcd ingest`: sanitize a raw hex corpus once and compile it to the
/// on-disk arena format, so later `scan --arena` runs skip parsing and
/// quarantine and can stream the corpus through a bounded memory window.
fn cmd_ingest(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: bulkgcd ingest <corpus-file> --out <arena-file> [--min-bits B]")?;
    let out = args
        .get("out")
        .ok_or("ingest requires --out <arena-file>")?;
    let min_bits: u64 = args.get_parse("min-bits", 0)?;
    let (moduli, report) = sanitized_corpus(args, path)?;
    if moduli.is_empty() {
        return Err("no scannable moduli survived sanitization".into());
    }
    let arena = ModuliArena::try_from_moduli(&moduli).map_err(|e| e.to_string())?;
    let header = write_arena(
        std::path::Path::new(out),
        &arena,
        &report.acceptance,
        min_bits,
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "compiled {} moduli (stride {} limbs, {} raw inputs, fp {:016x}) to {out}",
        header.m, header.stride, header.raw_len, header.fingerprint
    );
    Ok(())
}

fn cmd_gcd(args: &Args) -> Result<(), String> {
    let x = args
        .positional
        .get(1)
        .ok_or("usage: bulkgcd gcd <x-hex> <y-hex>")?;
    let y = args
        .positional
        .get(2)
        .ok_or("usage: bulkgcd gcd <x-hex> <y-hex>")?;
    let x = Nat::from_hex(x).map_err(|e| format!("x: {e}"))?;
    let y = Nat::from_hex(y).map_err(|e| format!("y: {e}"))?;
    let algo_flag = args.get("algo").unwrap_or("E");
    let g = if algo_flag.eq_ignore_ascii_case("lehmer") {
        lehmer_gcd_nat(&x, &y)
    } else {
        let algo =
            algo_from_flag(algo_flag).ok_or_else(|| format!("unknown algorithm {algo_flag:?}"))?;
        if args.has("stats") && !x.is_zero() && !y.is_zero() {
            let (xo, _) = x.rshift();
            let (yo, _) = y.rshift();
            let mut pair = GcdPair::new(&xo, &yo);
            let mut probe = StatsProbe::default();
            run(algo, &mut pair, Termination::Full, &mut probe);
            eprintln!(
                "iterations: {}  beta>0: {}  mem-ops: {}  swaps: {}",
                probe.stats.iterations,
                probe.stats.beta_nonzero,
                probe.stats.mem_ops,
                probe.stats.swaps
            );
        }
        gcd_nat(algo, &x, &y)
    };
    println!("{}", g.to_hex());
    Ok(())
}

fn usage() -> String {
    "bulkgcd — weak-RSA-key scanner (reproduction of Fujita/Nakano/Ito, IPDPSW 2015)

USAGE:
  bulkgcd gen    [--keys N] [--bits B] [--weak-pairs W] [--seed S] [--out FILE] [--truth FILE]
  bulkgcd ingest <corpus-file> --out <arena-file> [--min-bits B]   # compile a sanitized on-disk arena
  bulkgcd scan   <corpus-file> [--engine cpu|lockstep|gpu|blocks|batch|auto] [--algo A..E] [--full] [--metrics-out FILE]
                 [--shards N] [--shard-dir DIR]   # tile-sharded scan with a resumable lease ledger
  bulkgcd scan   <arena-file> --arena [--chunk-limbs N]   # scan a compiled arena; with a chunk budget,
                 # stream it through a bounded window (corpora larger than RAM)
  bulkgcd check  <corpus-file> <modulus-hex>
  bulkgcd break  <corpus-file> [--exponent E]   # prints: index factor-hex d-hex
  bulkgcd gcd    <x-hex> <y-hex> [--algo A|B|C|D|E|lehmer] [--stats]

Corpus files: one hex modulus per line, '#' comments."
        .to_string()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv);
    let result = match args.positional.first().map(|s| s.as_str()) {
        Some("gen") => cmd_gen(&args),
        Some("ingest") => cmd_ingest(&args),
        Some("scan") => cmd_scan(&args),
        Some("check") => cmd_check(&args),
        Some("break") => cmd_break(&args),
        Some("gcd") => cmd_gcd(&args),
        Some("help") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
