//! `bulkgcd` — command-line weak-RSA-key scanner.
//!
//! ```text
//! bulkgcd gen   --keys 64 --bits 512 --weak-pairs 3 --out corpus.txt
//! bulkgcd scan  corpus.txt [--engine cpu|lockstep|gpu|blocks|batch|auto] [--algo E] [--full] [--metrics-out m.json]
//!               [--shards N] [--shard-dir DIR]
//! bulkgcd check corpus.txt <modulus-hex>
//! bulkgcd gcd   <x-hex> <y-hex> [--algo A|B|C|D|E|lehmer] [--stats]
//! ```
//!
//! Corpus files hold one hexadecimal modulus per line; `#` starts a comment.

use bulk_gcd::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::process::ExitCode;

fn algo_from_flag(s: &str) -> Option<Algorithm> {
    match s.to_ascii_uppercase().as_str() {
        "A" | "ORIGINAL" => Some(Algorithm::Original),
        "B" | "FAST" => Some(Algorithm::Fast),
        "C" | "BINARY" => Some(Algorithm::Binary),
        "D" | "FASTBINARY" | "FAST-BINARY" => Some(Algorithm::FastBinary),
        "E" | "APPROX" | "APPROXIMATE" => Some(Algorithm::Approximate),
        _ => None,
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                // A flag consumes the next token as its value unless the
                // next token is another flag or missing.
                let value = argv.get(i + 1).filter(|v| !v.starts_with("--"));
                if let Some(v) = value {
                    flags.push((name.to_string(), Some(v.clone())));
                    i += 2;
                } else {
                    flags.push((name.to_string(), None));
                    i += 1;
                }
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Args { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }
}

fn read_corpus(path: &str) -> Result<Vec<Nat>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut moduli = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let n = Nat::from_hex(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        moduli.push(n);
    }
    Ok(moduli)
}

/// Quarantine malformed moduli instead of aborting: zero, even, undersized
/// (below `--min-bits`, default 0 = no floor) and duplicate inputs are
/// reported on stderr and dropped. Returns the scannable moduli plus the
/// map from scanned indices back to the raw corpus lines.
fn sanitized_corpus(args: &Args, moduli: Vec<Nat>) -> Result<(Vec<Nat>, Vec<usize>), String> {
    let min_bits: u64 = args.get_parse("min-bits", 0)?;
    let report = sanitize_moduli(&moduli, min_bits);
    if !report.rejected.is_empty() {
        eprintln!("{}", report.summary());
        for r in &report.rejected {
            eprintln!("  quarantined modulus #{}: {}", r.index, r.reason);
        }
    }
    Ok((report.accepted, report.accepted_indices))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let keys: usize = args.get_parse("keys", 64)?;
    let bits: u64 = args.get_parse("bits", 512)?;
    let weak_pairs: usize = args.get_parse("weak-pairs", 2)?;
    let seed: u64 = args.get_parse("seed", 42)?;
    if 2 * weak_pairs > keys {
        return Err("--weak-pairs must be at most keys/2".into());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    eprintln!("generating {keys} keys of {bits} bits with {weak_pairs} weak pairs ...");
    let corpus = build_corpus(&mut rng, keys, bits, weak_pairs);
    let mut out: Box<dyn Write> = match args.get("out") {
        Some(path) => {
            Box::new(std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?)
        }
        None => Box::new(std::io::stdout().lock()),
    };
    writeln!(
        out,
        "# bulkgcd corpus: {keys} keys, {bits} bits, seed {seed}"
    )
    .unwrap();
    for k in &corpus.keys {
        writeln!(out, "{}", k.public.n.to_hex()).unwrap();
    }
    if let Some(path) = args.get("truth") {
        let mut t = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        writeln!(t, "# i j shared-prime-hex").unwrap();
        for (i, j, p) in &corpus.shared {
            writeln!(t, "{i} {j} {}", p.to_hex()).unwrap();
        }
        eprintln!("ground truth written to {path}");
    }
    eprintln!(
        "done; {} vulnerable keys among {}",
        corpus.vulnerable_indices().len(),
        keys
    );
    Ok(())
}

fn cmd_scan(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: bulkgcd scan <corpus-file> [--engine cpu|lockstep|gpu|blocks|batch|auto]")?;
    let (moduli, raw_indices) = sanitized_corpus(args, read_corpus(path)?)?;
    if moduli.len() < 2 {
        // Quarantine may leave fewer than two scannable moduli; that is a
        // trivially clean corpus, not an error.
        println!("no shared factors found");
        return Ok(());
    }
    let algo = match args.get("algo") {
        None => Algorithm::Approximate,
        Some(s) => algo_from_flag(s).ok_or_else(|| format!("unknown algorithm {s:?}"))?,
    };
    let early = !args.has("full");
    let engine = args.get("engine").unwrap_or("cpu");
    eprintln!(
        "scanning {} moduli ({} pairs) with {} [{engine}] ...",
        moduli.len(),
        moduli.len() * moduli.len().saturating_sub(1) / 2,
        algo.name()
    );
    let metrics_out = args.get("metrics-out");
    let shards: usize = args.get_parse("shards", 0)?;
    if shards > 0 {
        if engine == "blocks" || engine == "batch" || engine == "auto" {
            return Err(format!(
                "--shards requires a per-launch engine (cpu, gpu, or lockstep), not {engine:?}"
            ));
        }
        return cmd_scan_sharded(args, &moduli, &raw_indices, algo, early, engine, shards);
    }
    let findings: Vec<Finding> = if engine == "blocks" {
        // The §VII block-shaped launch has its own report type and is not a
        // pipeline backend; metrics come from its GpuReport instead.
        if metrics_out.is_some() {
            return Err("--metrics-out is not supported with --engine blocks".into());
        }
        let r = group_size_for(moduli.len());
        let rep = scan_gpu_blocks(
            &moduli,
            algo,
            early,
            &DeviceConfig::gtx_780_ti(),
            &CostModel::default(),
            r,
        );
        eprintln!(
            "simulated GPU block launch (r = {r}, {} blocks): {:.6} s simulated, SIMT eff {:.1}%",
            rep.blocks,
            rep.gpu.seconds,
            rep.gpu.mean_simt_efficiency * 100.0
        );
        rep.findings
    } else {
        let arena = ModuliArena::try_from_moduli(&moduli).map_err(|e| e.to_string())?;
        let mut pipeline = ScanPipeline::new(&arena).algorithm(algo).early(early);
        match engine {
            "cpu" => {}
            "gpu" => {
                pipeline = pipeline.backend(GpuSimBackend {
                    device: DeviceConfig::gtx_780_ti(),
                    cost: CostModel::default(),
                });
            }
            "lockstep" => {
                if algo != Algorithm::Approximate {
                    return Err(format!(
                        "--engine lockstep executes the Approximate variant only, not {algo:?} \
                         (drop --algo or use --algo E)"
                    ));
                }
                pipeline = pipeline
                    .backend(LockstepBackend::new(32).with_compaction(CompactionConfig::default()));
            }
            "batch" => {
                pipeline = pipeline.backend(ProductTreeBackend { parallel: true });
            }
            "auto" => {
                // AutoBackend (not Backend::Auto) so a --metrics-out report
                // names the resolved choice as "auto:<backend>".
                pipeline = pipeline.backend(AutoBackend::new(32));
            }
            other => return Err(format!("unknown engine {other:?}")),
        }
        if metrics_out.is_some() {
            pipeline = pipeline.metrics();
        }
        let rep = pipeline.run().map_err(|e| e.to_string())?;
        match rep.scan.simulated() {
            Ok(sim) => eprintln!(
                "simulated GPU scan: {sim:.6} s simulated ({:.3} us/GCD)",
                sim * 1e6 / rep.scan.pairs_scanned.max(1) as f64
            ),
            Err(_) => eprintln!(
                "{engine} scan: {:.3} s ({:.2} us/GCD)",
                rep.scan.elapsed.as_secs_f64(),
                rep.scan.elapsed.as_secs_f64() * 1e6 / rep.scan.pairs_scanned.max(1) as f64
            ),
        }
        report_duplicates(&rep.scan);
        if let Some(path) = metrics_out {
            let metrics = rep
                .metrics
                .as_ref()
                .expect("metrics layer was enabled for --metrics-out");
            std::fs::write(path, metrics.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {} launch metrics ({} backend) to {path}",
                metrics.total_launches, metrics.backend
            );
        }
        rep.scan.findings
    };
    if findings.is_empty() {
        println!("no shared factors found");
    }
    for f in &findings {
        // Report indices in the raw corpus's numbering, not the
        // sanitized one, so lines match the operator's key list.
        println!(
            "{} {} {}",
            raw_indices[f.i],
            raw_indices[f.j],
            f.factor.to_hex()
        );
    }
    Ok(())
}

/// `bulkgcd scan --shards N`: partition the launch sequence into N tiles
/// and run them through the shard coordinator (lease ledger, per-shard
/// journals, deterministic merge). With `--shard-dir DIR` the ledger and
/// journals persist, so a killed scan resumes from the completed tiles.
fn cmd_scan_sharded(
    args: &Args,
    moduli: &[Nat],
    raw_indices: &[usize],
    algo: Algorithm,
    early: bool,
    engine: &str,
    shards: usize,
) -> Result<(), String> {
    if engine == "lockstep" && algo != Algorithm::Approximate {
        return Err(format!(
            "--engine lockstep executes the Approximate variant only, not {algo:?} \
             (drop --algo or use --algo E)"
        ));
    }
    let arena = ModuliArena::try_from_moduli(moduli).map_err(|e| e.to_string())?;
    let metrics_out = args.get("metrics-out");
    let mut config = ShardConfig::new(shards, DEFAULT_LAUNCH_PAIRS);
    config.algo = algo;
    config.early = early;
    config.collect_metrics = metrics_out.is_some();
    config.dir = args.get("shard-dir").map(std::path::PathBuf::from);

    let report = match engine {
        "cpu" => run_sharded(&arena, &config, &ShardFaultPlan::none(), || ScalarBackend),
        "gpu" => run_sharded(&arena, &config, &ShardFaultPlan::none(), || GpuSimBackend {
            device: DeviceConfig::gtx_780_ti(),
            cost: CostModel::default(),
        }),
        "lockstep" => run_sharded(&arena, &config, &ShardFaultPlan::none(), || {
            LockstepBackend::new(32).with_compaction(CompactionConfig::default())
        }),
        other => return Err(format!("unknown engine {other:?}")),
    }
    .map_err(|e| e.to_string())?;

    eprintln!(
        "sharded scan: {} tiles, {} worker attempts, {} launches executed, {} resumed",
        report.stats.tiles,
        report.stats.worker_attempts,
        report.stats.executed_launches,
        report.stats.resumed_launches,
    );
    match report.scan.simulated() {
        Ok(sim) => eprintln!(
            "simulated GPU scan: {sim:.6} s simulated ({:.3} us/GCD)",
            sim * 1e6 / report.scan.pairs_scanned.max(1) as f64
        ),
        Err(_) => eprintln!(
            "{engine} scan: {:.3} s ({:.2} us/GCD)",
            report.scan.elapsed.as_secs_f64(),
            report.scan.elapsed.as_secs_f64() * 1e6 / report.scan.pairs_scanned.max(1) as f64
        ),
    }
    report_duplicates(&report.scan);
    if let Some(path) = metrics_out {
        let metrics = report
            .metrics
            .as_ref()
            .expect("metrics were collected for --metrics-out");
        std::fs::write(path, metrics.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} launch metrics ({} backend) to {path}",
            metrics.total_launches, metrics.backend
        );
    }
    if report.scan.findings.is_empty() {
        println!("no shared factors found");
    }
    for f in &report.scan.findings {
        println!(
            "{} {} {}",
            raw_indices[f.i],
            raw_indices[f.j],
            f.factor.to_hex()
        );
    }
    Ok(())
}

fn report_duplicates(rep: &ScanReport) {
    if rep.duplicate_pairs > 0 {
        eprintln!(
            "note: {} finding(s) are duplicate moduli (gcd = n); GCD cannot factor those pairs",
            rep.duplicate_pairs
        );
    }
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: bulkgcd check <corpus-file> <modulus-hex>")?;
    let hex = args
        .positional
        .get(2)
        .ok_or("usage: bulkgcd check <corpus-file> <modulus-hex>")?;
    let n = Nat::from_hex(hex).map_err(|e| e.to_string())?;
    let (moduli, _) = sanitized_corpus(args, read_corpus(path)?)?;
    let idx = CorpusIndex::from_moduli(&moduli).map_err(|e| e.to_string())?;
    let g = idx.shared_factor(&n).map_err(|e| e.to_string())?;
    if g.is_one() {
        println!(
            "clean: no factor shared with the {} indexed moduli",
            idx.len()
        );
    } else {
        println!("WEAK: shares factor {}", g.to_hex());
        return Ok(());
    }
    Ok(())
}

fn cmd_break(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: bulkgcd break <corpus-file> [--exponent E]")?;
    let (moduli, raw_indices) = sanitized_corpus(args, read_corpus(path)?)?;
    if moduli.len() < 2 {
        println!("no keys broken");
        return Ok(());
    }
    let e_val: u64 = match args.get("exponent") {
        None => 65_537,
        Some(v) => v.parse().map_err(|_| format!("invalid --exponent {v:?}"))?,
    };
    let e = Nat::from_u64(e_val);
    let keys: Vec<PublicKey> = moduli
        .iter()
        .map(|n| PublicKey {
            n: n.clone(),
            e: e.clone(),
        })
        .collect();
    let report = break_weak_keys(&keys, Algorithm::Approximate).map_err(|e| e.to_string())?;
    eprintln!(
        "scanned {} pairs in {:.3} s; {} shared-factor pairs; {} keys broken",
        report.scan.pairs_scanned,
        report.scan.elapsed.as_secs_f64(),
        report.scan.findings.len(),
        report.broken.len()
    );
    if report.broken.is_empty() {
        println!("no keys broken");
    }
    for b in &report.broken {
        println!(
            "{} {} {}",
            raw_indices[b.index],
            b.factor.to_hex(),
            b.private.d.to_hex()
        );
    }
    Ok(())
}

fn cmd_gcd(args: &Args) -> Result<(), String> {
    let x = args
        .positional
        .get(1)
        .ok_or("usage: bulkgcd gcd <x-hex> <y-hex>")?;
    let y = args
        .positional
        .get(2)
        .ok_or("usage: bulkgcd gcd <x-hex> <y-hex>")?;
    let x = Nat::from_hex(x).map_err(|e| format!("x: {e}"))?;
    let y = Nat::from_hex(y).map_err(|e| format!("y: {e}"))?;
    let algo_flag = args.get("algo").unwrap_or("E");
    let g = if algo_flag.eq_ignore_ascii_case("lehmer") {
        lehmer_gcd_nat(&x, &y)
    } else {
        let algo =
            algo_from_flag(algo_flag).ok_or_else(|| format!("unknown algorithm {algo_flag:?}"))?;
        if args.has("stats") && !x.is_zero() && !y.is_zero() {
            let (xo, _) = x.rshift();
            let (yo, _) = y.rshift();
            let mut pair = GcdPair::new(&xo, &yo);
            let mut probe = StatsProbe::default();
            run(algo, &mut pair, Termination::Full, &mut probe);
            eprintln!(
                "iterations: {}  beta>0: {}  mem-ops: {}  swaps: {}",
                probe.stats.iterations,
                probe.stats.beta_nonzero,
                probe.stats.mem_ops,
                probe.stats.swaps
            );
        }
        gcd_nat(algo, &x, &y)
    };
    println!("{}", g.to_hex());
    Ok(())
}

fn usage() -> String {
    "bulkgcd — weak-RSA-key scanner (reproduction of Fujita/Nakano/Ito, IPDPSW 2015)

USAGE:
  bulkgcd gen   [--keys N] [--bits B] [--weak-pairs W] [--seed S] [--out FILE] [--truth FILE]
  bulkgcd scan  <corpus-file> [--engine cpu|lockstep|gpu|blocks|batch|auto] [--algo A..E] [--full] [--metrics-out FILE]
                [--shards N] [--shard-dir DIR]   # tile-sharded scan with a resumable lease ledger
  bulkgcd check <corpus-file> <modulus-hex>
  bulkgcd break <corpus-file> [--exponent E]   # prints: index factor-hex d-hex
  bulkgcd gcd   <x-hex> <y-hex> [--algo A|B|C|D|E|lehmer] [--stats]

Corpus files: one hex modulus per line, '#' comments."
        .to_string()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv);
    let result = match args.positional.first().map(|s| s.as_str()) {
        Some("gen") => cmd_gen(&args),
        Some("scan") => cmd_scan(&args),
        Some("check") => cmd_check(&args),
        Some("break") => cmd_break(&args),
        Some("gcd") => cmd_gcd(&args),
        Some("help") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
