//! # bulk-gcd
//!
//! A from-scratch Rust reproduction of *"Bulk GCD Computation Using a GPU
//! to Break Weak RSA Keys"* (Toru Fujita, Koji Nakano, Yasuaki Ito;
//! IPDPSW 2015, DOI 10.1109/IPDPSW.2015.54).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`bigint`] | `bulkgcd-bigint` | 32-bit-limb multiword arithmetic, Montgomery modpow, Miller–Rabin (the GMP/OpenSSL stand-in) |
//! | [`core`] | `bulkgcd-core` | the **Approximate Euclidean algorithm** and the four comparison variants on fixed operand buffers |
//! | [`umm`] | `bulkgcd-umm` | the Unified Memory Machine model: coalescing, Theorem 1, obliviousness analysis |
//! | [`gpu`] | `bulkgcd-gpu` | SIMT GPU simulator calibrated to the paper's GTX 780 Ti |
//! | [`rsa`] | `bulkgcd-rsa` | textbook RSA, weak-key generators, synthetic corpora, key recovery |
//! | [`bulk`] | `bulkgcd-bulk` | §VI all-pairs decomposition, CPU/GPU-sim scans, batch-GCD baseline, attack pipeline |
//!
//! ## Quickstart
//!
//! ```
//! use bulk_gcd::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Two 128-bit RSA keys that share a prime (a weak pair).
//! let mut rng = StdRng::seed_from_u64(42);
//! let corpus = build_corpus(&mut rng, 4, 128, 1);
//!
//! // Scan all pairs with the paper's Approximate Euclidean algorithm.
//! let publics: Vec<_> = corpus.keys.iter().map(|k| k.public.clone()).collect();
//! let report = break_weak_keys(&publics, Algorithm::Approximate).unwrap();
//!
//! assert_eq!(report.broken.len(), 2); // both endpoints of the weak pair
//! ```

pub use bulkgcd_bigint as bigint;
pub use bulkgcd_bulk as bulk;
pub use bulkgcd_core as core;
pub use bulkgcd_gpu as gpu;
pub use bulkgcd_rsa as rsa;
pub use bulkgcd_umm as umm;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use bulkgcd_bigint::{Barrett, Montgomery, Nat};
    pub use bulkgcd_bulk::{
        batch_gcd, batch_gcd_parallel, break_weak_keys, estimate_full_scan, group_size_for,
        merge_tiles, run_sharded, scan_gpu_blocks, tile_fingerprint, write_arena, ArenaError,
        ArenaHeader, ArenaSource, AutoBackend, Backend, BreakReport, CheckpointLayer,
        CompactionConfig, Coordinator, CorpusIndex, FaultLayer, FaultPlan, FaultSpec, FaultStats,
        Finding, FindingKind, GpuSimBackend, GroupedPairs, JournalError, JournalHeader,
        LaunchMetrics, LaunchRecord, LockstepBackend, LockstepEngine, MergeError, MetricsLayer,
        ModuliArena, NoSimulatedClock, PipelineReport, ProductTreeBackend, ResumableReport,
        RetryLayer, ScalarBackend, ScanBackend, ScanError, ScanJournal, ScanMetrics, ScanPipeline,
        ScanReport, ShardConfig, ShardError, ShardFaultPlan, ShardFaultSpec, ShardStats,
        ShardWorker, ShardedReport, StoreError, Tile, TilePlan, ZeroModulus, ARENA_MAGIC,
        DEFAULT_LAUNCH_PAIRS,
    };
    #[allow(deprecated)]
    pub use bulkgcd_bulk::{
        scan_cpu, scan_cpu_arena, scan_gpu_sim, scan_gpu_sim_arena, scan_gpu_sim_resumable,
        scan_gpu_sim_serial, scan_lockstep, scan_lockstep_arena,
    };
    pub use bulkgcd_core::{
        gcd_nat, lehmer_gcd_nat, run, Algorithm, GcdOutcome, GcdPair, NoProbe, RankSelect,
        RankSelectBuilder, StatsProbe, Termination, TraceProbe,
    };
    pub use bulkgcd_gpu::{
        simulate_bulk_gcd, simulate_bulk_gcd_pairs, simulate_bulk_gcd_retry, CostModel,
        DeviceConfig, FaultInjector, LaunchError, LaunchFault, NoFaults, RetryPolicy,
    };
    pub use bulkgcd_rsa::{
        build_corpus, decrypt, encrypt, fingerprint_limbs, fingerprint_modulus, generate_keypair,
        recover_private_key, sanitize_moduli, Corpus, CrtPrivateKey, IngestReport, KeyPair,
        PublicKey, RejectReason, Rejected, StreamingSanitizer, WeakKeygen,
    };
    pub use bulkgcd_umm::{analyze, simulate, simulate_dmm, Layout, UmmConfig};
}
